//! Driving Wayfinder from a YAML job file (§3.1, §3.4, §3.5): the job
//! pins security-critical parameters (ASLR stays on) and the session
//! honors the constraint.
//!
//! ```sh
//! cargo run --release --example job_file
//! ```

use wayfinder::prelude::*;

const JOB: &str = r#"
# Specialize Linux 4.19 for Redis throughput, without ever touching ASLR.
name: redis-secure-tuning
os: linux-4.19
app: redis
metric: throughput
direction: maximize
algorithm: deeptune
seed: 99
workers: 4
budget:
  iterations: 32
pinned:
  - name: kernel.randomize_va_space
    value: 2
"#;

fn main() {
    let job = Job::parse(JOB).expect("job file parses");
    println!(
        "job {:?}: {} on {}, {:?} iterations",
        job.name,
        job.app.as_deref().unwrap_or("<target default>"),
        job.os,
        job.budget.iterations
    );

    let mut session = SessionBuilder::from_job(&job)
        .expect("job maps onto a session")
        .runtime_params(96)
        .build()
        .expect("valid session");

    // §3.5: the pinned parameter is fixed in the search space.
    {
        let space = session.platform().space();
        let idx = space
            .index_of("kernel.randomize_va_space")
            .expect("parameter exists");
        assert!(space.spec(idx).fixed, "pin was applied");
        println!(
            "kernel.randomize_va_space pinned to {}",
            space.spec(idx).default
        );
    }

    let outcome = session.run();
    println!(
        "best: {:.0} req/s after {} iterations (crash rate {:.0}%)",
        outcome.summary.best_metric.unwrap_or(0.0),
        outcome.summary.iterations,
        outcome.summary.crash_rate * 100.0
    );
    println!(
        "pool: {} workers, {} waves — {:.1} VM-hours of compute in {:.1} wall hours ({:.1}x overlap), mean occupancy {:.0}%",
        outcome.summary.workers,
        outcome.summary.waves,
        outcome.summary.compute_s / 3600.0,
        outcome.summary.elapsed_s / 3600.0,
        outcome.summary.compute_s / outcome.summary.elapsed_s.max(1e-9),
        outcome.summary.mean_occupancy * 100.0,
    );

    // Every configuration explored kept ASLR at its pinned value.
    let space = session.platform().space();
    let pinned_value = space
        .default_config()
        .by_name(space, "kernel.randomize_va_space");
    for r in session.platform().history().records() {
        assert_eq!(
            r.config.by_name(space, "kernel.randomize_va_space"),
            pinned_value
        );
    }
    println!("verified: ASLR never varied across the whole exploration");
}
