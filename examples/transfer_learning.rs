//! §3.3 transfer learning: train a DeepTune model on Redis, checkpoint it
//! (to the versioned text format), and reuse it to accelerate the Nginx
//! search — lower crash rates from the first iteration.
//!
//! ```sh
//! cargo run --release --example transfer_learning
//! ```

use wayfinder::deeptune::Checkpoint;
use wayfinder::prelude::*;

fn main() {
    let iterations = 50;

    // 1. Train on Redis.
    println!("training DeepTune on Redis ({iterations} iterations) ...");
    let mut donor = SessionBuilder::new()
        .os(OsFlavor::Linux419)
        .app(AppId::Redis)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(96)
        .iterations(iterations)
        .seed(11)
        .build()
        .expect("valid donor session");
    let donor_outcome = donor.run();
    println!(
        "  redis: best {:.0} req/s, crash rate {:.0}%",
        donor_outcome.summary.best_metric.unwrap_or(0.0),
        donor_outcome.summary.crash_rate * 100.0
    );

    // 2. Checkpoint through the text format (what a real deployment would
    //    store between runs).
    let checkpoint = donor.transfer_checkpoint().expect("trained model");
    let text = checkpoint.to_text();
    println!("  checkpoint: {} bytes of text", text.len());
    let restored = Checkpoint::from_text(&text).expect("round-trips");

    // 3. Apply to Nginx, against cold-start DeepTune and random baselines.
    let mut results = Vec::new();
    for (label, algorithm) in [
        ("random", AlgorithmChoice::Random),
        ("deeptune (cold)", AlgorithmChoice::DeepTune),
        (
            "deeptune + TL",
            AlgorithmChoice::DeepTuneTransfer(restored.clone()),
        ),
    ] {
        let mut session = SessionBuilder::new()
            .os(OsFlavor::Linux419)
            .app(AppId::Nginx)
            .algorithm(algorithm)
            .runtime_params(96)
            .iterations(iterations)
            .seed(13)
            .build()
            .expect("valid session");
        let outcome = session.run();
        results.push((label, outcome.summary));
    }

    println!("\nNginx after {iterations} iterations:");
    println!(
        "{:<18} {:>12} {:>12}",
        "algorithm", "best req/s", "crash rate"
    );
    for (label, s) in &results {
        println!(
            "{:<18} {:>12.0} {:>11.0}%",
            label,
            s.best_metric.unwrap_or(0.0),
            s.crash_rate * 100.0
        );
    }
    println!(
        "\n(§3.3/§4.2: crash knowledge is OS-level, so the transferred model \
         avoids crash regions from the start — the paper reports <10% crash \
         rates and up to 4.5x faster time-to-find with TL)"
    );
}
