//! §4.1's "High-Impact Configuration Parameters" analysis: train DeepTune
//! on Nginx, then query the model for the parameters it learned to matter
//! — positively (somaxconn, rmem, keepalive, stat_interval, ...) and
//! negatively (printk, printk_delay, block_dump).
//!
//! ```sh
//! cargo run --release --example high_impact_params
//! ```

use wayfinder::deeptune::{top_negative, top_positive};
use wayfinder::prelude::*;

fn main() {
    let mut session = SessionBuilder::new()
        .os(OsFlavor::Linux419)
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(96)
        .iterations(60)
        .seed(7)
        .build()
        .expect("valid session");
    println!("training DeepTune on Nginx ({} iterations) ...", 60);
    let _ = session.run();

    let impacts = session.parameter_impacts().expect("trained DeepTune model");

    println!("\ntop parameters the model predicts to IMPROVE Nginx when tuned:");
    for p in top_positive(&impacts, 8) {
        println!("  {:<40} +{:.3}", p.name, p.best_delta);
    }
    println!("\ntop parameters the model predicts to DEGRADE Nginx when mis-tuned:");
    for p in top_negative(&impacts, 8) {
        println!("  {:<40} {:.3}", p.name, p.worst_delta);
    }
    println!(
        "\n(paper §4.1: positive examples include net.core.somaxconn, \
         net.core.rmem_default, net.ipv4.tcp_keepalive_time, vm.stat_interval; \
         negative ones kernel.printk, kernel.printk_delay, vm.block_dump)"
    );
}
