//! Fig. 10's metric in miniature: minimize the boot memory footprint of a
//! RISC-V Linux image by exploring compile-time options.
//!
//! ```sh
//! cargo run --release --example memory_footprint
//! ```

use wayfinder::prelude::*;

fn main() {
    // Compile-time spaces are explored by perturbing the default (a fresh
    // uniform sample of hundreds of options rarely builds); the builder
    // wires that policy for the RISC-V target.
    let budget_s = 3_600.0;
    let mut session = SessionBuilder::new()
        .os(OsFlavor::LinuxRiscv)
        .objective(Objective::MemoryMb)
        .algorithm(AlgorithmChoice::DeepTune)
        .time_budget_s(budget_s)
        .seed(5)
        .build()
        .expect("valid session");

    println!(
        "minimizing RISC-V image footprint over {} compile-time options ({budget_s:.0}s virtual budget) ...",
        session.platform().space().len()
    );
    let outcome = session.run();
    let s = &outcome.summary;
    println!(
        "{} builds in {:.1} virtual hours; {} crashed (build/boot/run)",
        s.iterations,
        s.elapsed_s / 3600.0,
        (s.crash_rate * s.iterations as f64).round() as usize,
    );
    let best_mb = s.best_objective.expect("something booted");
    println!(
        "default 210.0 MB -> best {:.1} MB ({:.1}% reduction; paper: 8.5% in 3h)",
        best_mb,
        (1.0 - best_mb / 210.0) * 100.0
    );

    // Which heavyweight options did the search turn off?
    if let Some((config, _)) = outcome.best {
        let space = session.platform().space();
        let default = space.default_config();
        let mut flips: Vec<String> = config
            .diff_indices(&default)
            .into_iter()
            .filter(|&i| {
                // Only report the curated, recognizable symbols.
                !space.spec(i).name.contains(char::is_numeric)
            })
            .map(|i| format!("  {} = {}", space.spec(i).name, config.get(i)))
            .collect();
        flips.truncate(12);
        println!("notable changes vs the default configuration:");
        for f in flips {
            println!("{f}");
        }
    }
}
