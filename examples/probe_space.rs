//! The §3.4 exploration-space inference heuristic, end to end: boot a
//! simulated kernel, list its writable sysctl files, infer types from the
//! defaults, and estimate ranges by x10 scaling probes.
//!
//! ```sh
//! cargo run --release --example probe_space
//! ```

use wayfinder::ossim::{first_crash, SysctlTree};
use wayfinder::platform::probe_runtime_space;
use wf_configspace::{NamedConfig, Value};
use wf_kconfig::LinuxVersion;

fn main() {
    // "Boot" the kernel: materialize its runtime tree.
    let os = wayfinder::ossim::SimOs::linux_runtime(LinuxVersion::V4_19, 96);
    let mut tree = SysctlTree::from_space(&os.space);
    // Real trees also expose read-only files the heuristic must skip.
    tree.add_readonly(
        "kernel.osrelease",
        Value::Int(419),
        wf_configspace::ParamKind::int(0, 10_000),
    );
    println!("writable sysctl files: {}", tree.list_writable().len());

    // Probe writes can crash the probe VM; the ground-truth crash rules
    // decide (e.g. vm.nr_hugepages too large OOMs the probe kernel).
    let rules = os.crash_rules.clone();
    let defaults = os.defaults_view.clone();
    let mut crash_probe = |name: &str, value: &str| {
        let mut view = NamedConfig::empty();
        if let Ok(v) = value.parse::<i64>() {
            view.set(name.to_string(), Value::Int(v));
        }
        first_crash(&rules, &view, &defaults).is_some()
    };

    let report = probe_runtime_space(&mut tree, &mut crash_probe);
    println!(
        "probed {} parameters with {} writes ({} probe crashes, {} non-numeric skipped)",
        report.specs.len(),
        report.writes_attempted,
        report.probe_crashes,
        report.skipped_non_numeric.len()
    );

    println!("\nsample of the inferred space:");
    for spec in report.specs.iter().take(12) {
        println!(
            "  {:<42} {:?}  (path {})",
            spec.name,
            spec.kind,
            SysctlTree::path_of(&spec.name)
        );
    }
    println!("\nskipped (left to manual exploration, per §3.4):");
    for name in report.skipped_non_numeric.iter().take(5) {
        println!("  {name}");
    }
}
