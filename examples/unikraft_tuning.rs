//! §4.4's Unikraft experiment in miniature: tune the 33-parameter
//! Unikraft+Nginx image (search space ≈ 3.7e13) and watch DeepTune find
//! the coherent configuration that unlocks the unikernel's ~5x headroom.
//!
//! ```sh
//! cargo run --release --example unikraft_tuning
//! ```

use wayfinder::prelude::*;

fn main() {
    let budget_s = 3_600.0;
    let mut session = SessionBuilder::new()
        .os(OsFlavor::Unikraft)
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .time_budget_s(budget_s)
        .seed(3)
        .build()
        .expect("valid session");

    let space_size = session.platform().space().log10_cardinality();
    println!(
        "tuning Unikraft+Nginx: 33 parameters, 10^{space_size:.1} permutations, {budget_s:.0}s budget"
    );

    // Step manually to print the exploration-vs-exploitation phases the
    // paper describes for Fig. 9.
    let mut last_report = 0.0;
    while !session.done() {
        let record = session.step();
        let t = record.finished_at_s;
        if t - last_report > 600.0 {
            last_report = t;
            let best = session
                .platform()
                .history()
                .best(session.platform().direction())
                .and_then(|r| r.metric)
                .unwrap_or(0.0);
            println!("  t={:>5.0}s  best so far {:>7.0} req/s", t, best);
        }
    }
    let summary = session.platform().summary();
    println!(
        "done: best {:.0} req/s (default ~9800; paper reaches ~5x), crash rate {:.0}%",
        summary.best_metric.unwrap_or(0.0),
        summary.crash_rate * 100.0
    );
}
