//! Registering and running a downstream target: the open target layer
//! end to end.
//!
//! `linux-6.0-net` (a network-tuned Linux 6.0 running a memcached-style
//! cache) is defined entirely in `wayfinder::scenarios` — outside
//! `wf-platform`'s pipeline and `wayfinder-core`'s session internals —
//! and reaches the session through one `register()` call. This example
//! drives it twice: through the fluent builder and through a job file,
//! exactly like a built-in target.
//!
//! ```sh
//! cargo run --release --example custom_target
//! ```

use wayfinder::prelude::*;

fn main() {
    // The registry: the five paper targets plus the downstream scenario.
    let registry = wayfinder::scenarios::registry();
    println!("registered targets:");
    for factory in registry.factories() {
        println!("  {:<16} {}", factory.keyword(), factory.summary());
    }

    // 1) Fluent builder: address the scenario by its registry keyword.
    let mut session = SessionBuilder::new()
        .registry(registry.clone())
        .target("linux-6.0-net")
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(200)
        .iterations(60)
        .seed(7)
        .build()
        .expect("scenario resolves like a built-in");
    let descriptor = session.platform().descriptor().clone();
    println!(
        "\nsearching {} for {} ({} parameters) ...",
        descriptor.name,
        descriptor.app,
        session.platform().space().len(),
    );
    let outcome = session.run();
    let (config, best) = outcome.best.expect("a survivor");
    println!(
        "best {}: {:.0} {} over {:.0} {} baseline, crash rate {:.0}%",
        descriptor.metric,
        best,
        descriptor.unit,
        812_000.0,
        descriptor.unit,
        outcome.summary.crash_rate * 100.0,
    );
    let space = session.platform().space();
    let default = space.default_config();
    println!("non-default network parameters:");
    for idx in config.diff_indices(&default).into_iter().take(8) {
        println!("  {} = {}", space.spec(idx).name, config.get(idx));
    }

    // 2) Job file: the same scenario through the `os:` keyword.
    let job = Job::parse(
        "name: memcached-net\nos: linux-6.0-net\napp: memcached\nmetric: throughput\nalgorithm: random\nseed: 11\nbudget:\n  iterations: 20\n",
    )
    .expect("job parses");
    let mut session = SessionBuilder::from_job(&job)
        .expect("job maps to a builder")
        .registry(registry)
        .build()
        .expect("job resolves through the registry");
    let outcome = session.run();
    println!(
        "\njob file run: {} iterations, best {:?} ops/s",
        outcome.summary.iterations, outcome.summary.best_metric,
    );
}
