//! Continuous specialization over a drifting workload.
//!
//! A one-shot session optimizes a fixed workload; this example runs a
//! *continuous* one: the simulated Nginx traffic mix shifts permanently
//! at ~900 virtual seconds (the `step` scenario), a windowed mean-shift
//! detector watches the deployed configuration's telemetry, and on the
//! confirmed drift the session closes its epoch and re-seeds the search
//! from the trained model (the same transfer path cross-target transfer
//! uses) — then keeps optimizing the post-shift surface.
//!
//! ```sh
//! cargo run --release --example continuous_drift
//! ```

use wayfinder::prelude::*;

fn main() {
    let mut session = SessionBuilder::new()
        .name("continuous-drift-demo")
        .os(OsFlavor::Linux419)
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(56)
        .iterations(60)
        .seed(29)
        .workers(2)
        .continuous(DriftSpec::default())
        .build()
        .expect("continuous sessions build on the simulated target");

    println!("== continuous specialization: nginx under a step shift");
    for event in session.drive() {
        match event {
            SessionEvent::EpochStarted {
                epoch,
                at_s,
                phase,
                oracle_metric,
                transfer,
                ..
            } => println!(
                "  t={at_s:>5.0}s  epoch {epoch} opens under phase {phase:?} \
                 (oracle {oracle_metric:.0} req/s, {} search)",
                if transfer { "transfer-seeded" } else { "cold" }
            ),
            SessionEvent::DriftDetected {
                at_iteration,
                at_s,
                detector,
                baseline,
                signal,
                ..
            } => println!(
                "  t={at_s:>5.0}s  iteration {at_iteration}: {detector} confirms the shift \
                 ({baseline:.0} -> {signal:.0} req/s on the deployed config)"
            ),
            SessionEvent::NewBest {
                iteration,
                objective,
            } => {
                println!("  iteration {iteration:>2}: new best {objective:.0} req/s");
            }
            _ => {}
        }
    }

    let summary = session.platform().summary();
    println!(
        "== done: {} epoch(s), best {:.0} req/s",
        session.platform().epoch() + 1,
        summary.best_metric.unwrap_or(f64::NAN),
    );
}
