//! Quickstart: specialize simulated Linux 4.19 for Nginx throughput with
//! DeepTune, then print what was found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wayfinder::prelude::*;

fn main() {
    // The §4.1 setup, scaled down: Linux 4.19, runtime-focused space,
    // Nginx + wrk, maximize throughput.
    let mut session = SessionBuilder::new()
        .os(OsFlavor::Linux419)
        .app(AppId::Nginx)
        .algorithm(AlgorithmChoice::DeepTune)
        .runtime_params(96)
        .iterations(40)
        .seed(42)
        .build()
        .expect("valid session");

    println!("exploring {} runtime parameters ...", 96);
    let outcome = session.run();

    let summary = &outcome.summary;
    println!(
        "ran {} iterations in {:.1} virtual hours (crash rate {:.0}%)",
        summary.iterations,
        summary.elapsed_s / 3600.0,
        summary.crash_rate * 100.0
    );
    let (config, value) = outcome.best.expect("at least one configuration succeeded");
    println!("best configuration: {value:.0} req/s");

    // Show the non-default runtime parameters of the winner.
    let space = session.platform().space();
    let default = space.default_config();
    println!("non-default parameters of the best configuration:");
    for idx in config.diff_indices(&default) {
        let spec = space.spec(idx);
        println!(
            "  {} = {} (default {})",
            spec.name,
            config.get(idx),
            spec.default
        );
    }
}
