//! Streaming session events and deterministic resume from a session
//! store.
//!
//! A long specialization campaign should never lose paid compute: this
//! example runs a campaign while persisting every event to a store
//! directory, "crashes" it halfway, resumes from disk without
//! re-evaluating a single candidate, and shows the resumed campaign is
//! indistinguishable from an uninterrupted one.
//!
//! ```sh
//! cargo run --release --example session_resume
//! ```

use wayfinder::platform::SessionStore;
use wayfinder::prelude::*;

const ITERATIONS: usize = 16;

fn build() -> SpecializationSession {
    SessionBuilder::new()
        .name("resume-demo")
        .os(OsFlavor::Linux419)
        .app(AppId::Redis)
        .algorithm(AlgorithmChoice::Bayesian)
        .runtime_params(64)
        .iterations(ITERATIONS)
        .seed(7)
        .workers(2)
        .build()
        .expect("valid session")
}

fn main() {
    let dir = std::env::temp_dir().join("wayfinder-session-resume-demo");
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: the same campaign, uninterrupted.
    let mut reference = build();
    let reference_outcome = reference.run();

    // 1. Run the campaign *streamed*: every event is observable live
    //    (here via the drive() iterator) while a JsonlSink persists it.
    println!("== segment 1: run to the halfway point, persisting a store");
    let mut session = build();
    let store = SessionStore::create(&dir, session.resolved_job()).expect("fresh store");
    {
        let mut sink = store.sink().expect("event log");
        while session.platform().history().len() < ITERATIONS / 2 {
            for record in session.platform_mut().step_wave_with(&mut sink) {
                println!(
                    "  t={:>5.0}s  iteration {:>2}  {}",
                    record.finished_at_s,
                    record.iteration,
                    match record.metric {
                        Some(m) => format!("{m:.0} ops/s"),
                        None => format!("crashed ({:?})", record.crash_phase.unwrap()),
                    }
                );
            }
        }
    }
    println!(
        "  ... crash! (process gone, store survives at {})",
        dir.display()
    );
    drop(session);

    // 2. Resume: the manifest rebuilds the session, the event log replays
    //    into it (algorithm state, RNG streams, clocks, cache), and the
    //    campaign continues from the next candidate index.
    println!("== segment 2: resume from disk and finish");
    let mut resumed = SessionBuilder::resume(&dir).expect("store resumes");
    println!(
        "  replayed {} evaluation(s) — zero re-evaluations",
        resumed.platform().history().len()
    );
    let outcome = {
        let mut sink = store.sink().expect("append");
        resumed.run_with(&mut sink)
    };

    // 3. Interrupted-then-resumed ≡ uninterrupted, bit for bit.
    let (best_cfg, best) = outcome.best.expect("a survivor");
    let (ref_cfg, ref_best) = reference_outcome.best.expect("a survivor");
    assert_eq!(best_cfg.fingerprint(), ref_cfg.fingerprint());
    assert_eq!(best.to_bits(), ref_best.to_bits());
    assert_eq!(
        outcome.summary.compute_s.to_bits(),
        reference_outcome.summary.compute_s.to_bits()
    );
    println!("== equivalence: resumed best == uninterrupted best == {best:.0} ops/s");

    // 4. The store now renders a full report offline (wfctl report DIR).
    let loaded = SessionStore::open(&dir)
        .expect("open")
        .load()
        .expect("load");
    println!(
        "== store: {} evaluation(s), {} wave(s), {} checkpoint(s), finished: {}",
        loaded.records.len(),
        loaded.wave_sizes.len(),
        loaded.checkpoints,
        loaded.finished
    );
    let _ = std::fs::remove_dir_all(&dir);
}
