//! Property tests for the session-store serialization: the JSON encoder
//! parses what it emits (escaped strings, round-trip floats, deep
//! documents), and whole event logs written by [`JsonlSink`] reload into
//! the exact records that were stored.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use wf_configspace::{Configuration, Tristate, Value};
use wf_jobfile::Job;
use wf_ossim::Phase;
use wf_platform::store::JsonValue;
use wf_platform::{EventSink, Record, SessionEvent, SessionStore, WaveStats};

// ---------------------------------------------------------------------------
// JSON documents: parse-what-we-emit.
// ---------------------------------------------------------------------------

/// Strings exercising every escape class the encoder knows: quotes,
/// backslashes, ASCII control characters, and multi-byte UTF-8 (including
/// astral-plane characters).
fn string_strategy() -> impl Strategy<Value = String> {
    let chars = prop_oneof![
        Just('"'),
        Just('\\'),
        Just('\n'),
        Just('\r'),
        Just('\t'),
        Just('\u{0}'),
        Just('\u{1}'),
        Just('\u{1f}'),
        Just('/'),
        Just(' '),
        Just('a'),
        Just('Z'),
        Just('9'),
        Just('é'),
        Just('ß'),
        Just('中'),
        Just('\u{1F600}'), // astral plane: a surrogate pair in \u form
    ];
    proptest::collection::vec(chars, 0..24).prop_map(|cs| cs.into_iter().collect())
}

/// Finite floats across magnitudes, signs, and the denormal edge — the
/// store never emits NaN or infinities (they encode as `null`).
fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(1.0),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
        Just(5e-324), // smallest denormal
        -1e9f64..1e9,
        -1e300f64..1e300,
        1e-300f64..1e-290,
    ]
}

fn json_leaf() -> impl Strategy<Value = JsonValue> {
    prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<i64>().prop_map(JsonValue::Int),
        finite_f64().prop_map(JsonValue::Num),
        string_strategy().prop_map(JsonValue::Str),
    ]
}

fn json_value() -> impl Strategy<Value = JsonValue> {
    json_leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Arr),
            proptest::collection::vec((string_strategy(), inner), 0..4).prop_map(JsonValue::Obj),
        ]
    })
}

/// Float equality up to bit identity (NaN never occurs), treating the
/// `-0.0`/`0.0` pair as the IEEE-equal values they are.
fn json_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Num(x), JsonValue::Num(y)) => x == y,
        (JsonValue::Arr(xs), JsonValue::Arr(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| json_eq(x, y))
        }
        (JsonValue::Obj(xs), JsonValue::Obj(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && json_eq(va, vb))
        }
        _ => a == b,
    }
}

// ---------------------------------------------------------------------------
// Whole event logs: written waves reload bit-exact.
// ---------------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        prop_oneof![
            Just(Tristate::No),
            Just(Tristate::Module),
            Just(Tristate::Yes)
        ]
        .prop_map(Value::Tristate),
        any::<i64>().prop_map(Value::Int),
        (0usize..32).prop_map(Value::Choice),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        (
            proptest::collection::vec(value_strategy(), 1..12),
            prop_oneof![
                Just(None),
                Just(Some(Phase::Build)),
                Just(Some(Phase::Boot)),
                Just(Some(Phase::Run)),
            ],
        ),
        (
            finite_f64(),
            finite_f64(),
            (0.0f64..1e6),
            any::<bool>(),
            (0usize..1 << 40),
        ),
    )
        .prop_map(
            |((values, crash_phase), (metric, memory_mb, duration_s, build_skipped, bytes))| {
                let crashed = crash_phase.is_some();
                Record {
                    iteration: 0, // assigned when grouped into waves
                    config: Configuration::from_values(values),
                    objective: (!crashed).then_some(metric),
                    metric: (!crashed).then_some(metric),
                    memory_mb: (!crashed).then_some(memory_mb),
                    crash_phase,
                    build_skipped,
                    duration_s,
                    finished_at_s: 0.0,
                    algo_seconds: duration_s * 0.01,
                    algo_memory_bytes: bytes,
                }
            },
        )
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "wf-store-props-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline: any document the encoder can emit, the parser reads
    /// back identically — escaped strings, astral-plane characters,
    /// denormal floats, i64 extremes, deep nesting.
    #[test]
    fn json_documents_parse_what_we_emit(doc in json_value()) {
        let text = doc.encode();
        let back = JsonValue::parse(&text)
            .unwrap_or_else(|e| panic!("emitted JSON must parse: {e}\n{text}"));
        prop_assert!(json_eq(&back, &doc), "round-trip changed the document:\n{}", text);
        // Encoding is a fixed point after one round trip.
        prop_assert_eq!(back.encode(), text);
    }

    /// A whole event log — waves of candidate records plus their
    /// wave-completed markers — reloads into the exact same records.
    #[test]
    fn event_logs_reload_bit_exact(
        waves in proptest::collection::vec(
            proptest::collection::vec(record_strategy(), 1..5),
            1..4,
        ),
    ) {
        let dir = case_dir();
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut written: Vec<Record> = Vec::new();
        {
            let mut sink = store.sink().unwrap();
            let mut finished_at = 0.0;
            for (w, wave) in waves.iter().enumerate() {
                finished_at += wave.iter().map(|r| r.duration_s).fold(0.0, f64::max);
                let mut size = 0;
                for r in wave {
                    let mut record = r.clone();
                    record.iteration = written.len();
                    record.finished_at_s = finished_at;
                    sink.on_event(&SessionEvent::CandidateEvaluated(record.clone()));
                    written.push(record);
                    size += 1;
                }
                sink.on_event(&SessionEvent::WaveCompleted(WaveStats {
                    wave: w,
                    size,
                    wall_s: finished_at,
                    busy_s: wave.iter().map(|r| r.duration_s).sum(),
                    cache_hits: w as u64,
                    cache_misses: size as u64,
                }));
            }
            prop_assert!(sink.error().is_none());
        }

        let loaded = store.load().unwrap();
        prop_assert_eq!(loaded.records.len(), written.len());
        prop_assert_eq!(
            &loaded.wave_sizes,
            &waves.iter().map(Vec::len).collect::<Vec<_>>()
        );
        for (a, b) in loaded.records.iter().zip(&written) {
            prop_assert_eq!(a.iteration, b.iteration);
            prop_assert_eq!(&a.config, &b.config);
            prop_assert_eq!(a.objective.map(f64::to_bits), b.objective.map(f64::to_bits));
            prop_assert_eq!(a.metric.map(f64::to_bits), b.metric.map(f64::to_bits));
            prop_assert_eq!(
                a.memory_mb.map(f64::to_bits),
                b.memory_mb.map(f64::to_bits)
            );
            prop_assert_eq!(a.crash_phase, b.crash_phase);
            prop_assert_eq!(a.build_skipped, b.build_skipped);
            prop_assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
            prop_assert_eq!(a.finished_at_s.to_bits(), b.finished_at_s.to_bits());
            prop_assert_eq!(a.algo_seconds.to_bits(), b.algo_seconds.to_bits());
            prop_assert_eq!(a.algo_memory_bytes, b.algo_memory_bytes);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    // Fewer cases: each one spawns a writer thread and loops a reader
    // against it.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Readers racing an active writer never see a parse error: every
    /// visible snapshot of `events.jsonl` is a prefix of the final log
    /// (appends only grow the file), so `load` returns a consistent,
    /// chain-verified prefix — at worst dropping a torn tail or an
    /// incomplete final wave — and the record count only moves forward.
    #[test]
    fn concurrent_readers_always_load_a_consistent_prefix(
        waves in proptest::collection::vec(
            proptest::collection::vec(record_strategy(), 1..4),
            4..8,
        ),
    ) {
        let dir = case_dir();
        SessionStore::create(&dir, &Job::default()).unwrap();
        let total: usize = waves.iter().map(Vec::len).sum();
        std::thread::scope(|scope| {
            let writer_dir = dir.clone();
            let writer = scope.spawn(move || {
                let store = SessionStore::open(&writer_dir).unwrap();
                let mut sink = store.sink().unwrap();
                let mut iteration = 0;
                for (w, wave) in waves.iter().enumerate() {
                    for r in wave {
                        let mut record = r.clone();
                        record.iteration = iteration;
                        iteration += 1;
                        sink.on_event(&SessionEvent::CandidateEvaluated(record));
                    }
                    sink.on_event(&SessionEvent::WaveCompleted(WaveStats {
                        wave: w,
                        size: wave.len(),
                        wall_s: w as f64,
                        busy_s: 0.0,
                        cache_hits: 0,
                        cache_misses: 0,
                    }));
                }
                assert!(sink.error().is_none());
            });
            let reader = SessionStore::open(&dir).unwrap();
            let mut last = 0;
            while !writer.is_finished() {
                let loaded = reader.load().expect("a mid-append load never errors");
                assert!(
                    loaded.records.len() >= last,
                    "visible record count went backwards"
                );
                last = loaded.records.len();
            }
            writer.join().unwrap();
        });
        let store = SessionStore::open(&dir).unwrap();
        let loaded = store.load().unwrap();
        prop_assert_eq!(loaded.records.len(), total);
        prop_assert!(store.verify_chain().unwrap() > 0, "final chain verifies");
        std::fs::remove_dir_all(&dir).ok();
    }
}
