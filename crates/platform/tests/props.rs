//! Property tests for the multi-worker pipeline's determinism guarantees
//! and the metric post-processing invariants the figures rely on.

use proptest::prelude::*;
use std::os::unix::net::UnixStream;
use wf_drift::MeanShift;
use wf_jobfile::Budget;
use wf_kconfig::LinuxVersion;
use wf_ossim::{App, AppId, DriftScenario, DriftSchedule, SimOs};
use wf_platform::{
    min_max_normalize, rolling_crash_rate, serve, throughput_memory_score, DriftConfig,
    EvalBackend, InProcessBackend, RecordingSink, RemoteBackend, Series, Session, SessionEvent,
    SessionSpec, SimTarget, SpawnBackend,
};
use wf_search::RandomSearch;

/// A compact fingerprint of everything the determinism guarantee covers:
/// the evaluation history in candidate order (configuration, outcome,
/// per-candidate virtual cost), the best configuration, and the
/// worker-count-invariant compute clock.
#[derive(Debug, PartialEq)]
struct SessionTrace {
    history: Vec<(u64, Option<u64>, bool, u64)>,
    best_config: Option<u64>,
    best_metric: Option<f64>,
    compute_s: f64,
    elapsed_s: f64,
}

fn fixture_target() -> SimTarget {
    SimTarget::new(
        SimOs::linux_runtime(LinuxVersion::V4_19, 56),
        App::by_id(AppId::Nginx),
    )
}

/// The three backend families the determinism contract quantifies over.
/// "Remote" is the real wire protocol: one `serve` loop per lane on the
/// far side of a socketpair, each materializing the fixture target the
/// way a `wf-evald` process would.
#[derive(Clone, Copy, Debug)]
enum BackendKind {
    Spawn,
    InProcess,
    Remote,
}

fn make_backend(kind: BackendKind, workers: usize) -> Box<dyn EvalBackend> {
    match kind {
        BackendKind::Spawn => Box::new(SpawnBackend::new()),
        BackendKind::InProcess => Box::new(InProcessBackend::new(workers)),
        BackendKind::Remote => {
            let mut streams = Vec::new();
            for lane in 0..workers {
                let (ours, theirs) = UnixStream::pair().expect("socketpair");
                std::thread::spawn(move || {
                    let target = fixture_target();
                    let _ = serve(theirs, lane, &target);
                });
                streams.push(ours);
            }
            Box::new(RemoteBackend::from_streams(streams).expect("remote handshake"))
        }
    }
}

fn fixture_spec(seed: u64, workers: usize, iterations: usize) -> SessionSpec {
    SessionSpec {
        budget: Budget {
            iterations: Some(iterations),
            time_seconds: None,
        },
        seed,
        workers,
        repetitions: 2,
        ..SessionSpec::default()
    }
}

fn trace(mut session: Session) -> SessionTrace {
    let summary = session.run();
    SessionTrace {
        history: session
            .history()
            .records()
            .iter()
            .map(|r| {
                (
                    r.config.fingerprint(),
                    r.metric.map(f64::to_bits),
                    r.crashed(),
                    r.duration_s.to_bits(),
                )
            })
            .collect(),
        best_config: summary.best_config.as_ref().map(|c| c.fingerprint()),
        best_metric: summary.best_metric,
        compute_s: summary.compute_s,
        elapsed_s: summary.elapsed_s,
    }
}

fn run_traced(seed: u64, workers: usize, iterations: usize) -> SessionTrace {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 56);
    let app = App::by_id(AppId::Nginx);
    trace(Session::new(
        os,
        app,
        Box::new(RandomSearch::new()),
        fixture_spec(seed, workers, iterations),
    ))
}

fn run_traced_on(kind: BackendKind, seed: u64, workers: usize, iterations: usize) -> SessionTrace {
    trace(Session::with_backend(
        Box::new(fixture_target()),
        Box::new(RandomSearch::new()),
        fixture_spec(seed, workers, iterations),
        make_backend(kind, workers),
    ))
}

proptest! {
    // The archetype headline: 64 cases of seed × worker counts 1–8.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed, any worker count in {1, 2, 4, 8}: identical evaluation
    /// history (configs, outcomes, per-candidate costs, in candidate
    /// order), identical best configuration, and an identical virtual
    /// compute clock — while the wall clock only ever shrinks as the
    /// pool widens.
    #[test]
    fn sessions_are_worker_count_invariant(seed in any::<u64>(), iters in 6usize..14) {
        let reference = run_traced(seed, 1, iters);
        prop_assert_eq!(reference.history.len(), iters);
        // One worker has nothing to overlap: wall == compute.
        prop_assert!((reference.elapsed_s - reference.compute_s).abs() < 1e-9);
        for workers in [2usize, 4, 8] {
            let t = run_traced(seed, workers, iters);
            prop_assert_eq!(&t.history, &reference.history, "history diverged at {} workers", workers);
            prop_assert_eq!(t.best_config, reference.best_config);
            prop_assert_eq!(t.best_metric, reference.best_metric);
            // Per-record durations are bit-identical (checked above); the
            // clock itself is a float sum whose grouping follows the wave
            // shape, so compare to within rounding.
            prop_assert!((t.compute_s - reference.compute_s).abs() < 1e-6 * reference.compute_s.max(1.0));
            // Overlapping evaluations can only shorten the wall clock.
            prop_assert!(t.elapsed_s <= reference.elapsed_s + 1e-9);
        }
    }
}

proptest! {
    // Each case runs 12 full sessions (3 backends × 4 widths), the
    // remote ones over the real wire protocol, so fewer cases than the
    // worker-count test keep the suite fast while still sweeping seeds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The backend choice is not allowed to exist, observably: spawned
    /// threads, the persistent in-process pool, and remote workers
    /// behind the `wf-evald` socket protocol all produce the identical
    /// history, best configuration, and compute clock as a 1-worker
    /// reference, at every pool width.
    #[test]
    fn sessions_are_backend_invariant(seed in any::<u64>(), iters in 6usize..12) {
        let reference = run_traced(seed, 1, iters);
        for kind in [BackendKind::Spawn, BackendKind::InProcess, BackendKind::Remote] {
            for workers in [1usize, 2, 4, 8] {
                let t = run_traced_on(kind, seed, workers, iters);
                prop_assert_eq!(
                    &t.history, &reference.history,
                    "history diverged on {:?} at {} workers", kind, workers
                );
                prop_assert_eq!(t.best_config, reference.best_config);
                prop_assert_eq!(t.best_metric, reference.best_metric);
                prop_assert!((t.compute_s - reference.compute_s).abs() < 1e-6 * reference.compute_s.max(1.0));
                prop_assert!(t.elapsed_s <= reference.elapsed_s + 1e-9);
            }
        }
    }
}

/// Runs a continuous (drift-enabled) session and fingerprints every
/// detector decision: each confirmed drift and each epoch transition,
/// with the float fields down to the bit.
fn drift_decisions(
    kind: Option<BackendKind>,
    seed: u64,
    workers: usize,
    iterations: usize,
) -> Vec<String> {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 56);
    let app = App::by_id(AppId::Nginx);
    let schedule = DriftSchedule::scenario(DriftScenario::Step, &os, &app, 600.0);
    let spec = fixture_spec(seed, workers, iterations);
    let algorithm = Box::new(RandomSearch::new());
    let mut session = match kind {
        None => Session::new(os, app, algorithm, spec),
        Some(k) => Session::with_backend(
            Box::new(fixture_target()),
            algorithm,
            spec,
            make_backend(k, workers),
        ),
    };
    session.enable_drift(DriftConfig {
        schedule,
        detector: Box::new(MeanShift::new(4, 0.12)),
        min_epoch: 6,
        transfer: false,
    });
    let mut sink = RecordingSink::new();
    let _ = session.run_with(&mut sink);
    sink.events
        .iter()
        .filter_map(|event| match event {
            SessionEvent::DriftDetected {
                epoch,
                at_iteration,
                at_s,
                detector,
                signal,
                baseline,
            } => Some(format!(
                "drift {epoch} {at_iteration} {} {detector} {} {}",
                at_s.to_bits(),
                signal.to_bits(),
                baseline.to_bits()
            )),
            SessionEvent::EpochStarted {
                epoch,
                first_iteration,
                at_s,
                transfer,
                phase,
                oracle_metric,
            } => Some(format!(
                "epoch {epoch} {first_iteration} {} {transfer} {phase} {}",
                at_s.to_bits(),
                oracle_metric.to_bits()
            )),
            _ => None,
        })
        .collect()
}

proptest! {
    // Each case runs 6 continuous sessions (widths 1/2/4 plus the three
    // backend families at width 2) on the step scenario.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Continuous mode inherits the determinism contract: the drift
    /// detector sees the deployed reference's telemetry in iteration
    /// order on a per-candidate virtual clock, so the *first* confirmed
    /// detection — which iteration, at which virtual time, every
    /// recorded float — is bit-identical at every worker count (epoch
    /// boundaries align to wave boundaries, so later epochs may
    /// legitimately differ with the wave shape); and at a fixed width
    /// the backend choice must not be observable at all, down to the
    /// full decision sequence.
    #[test]
    fn drift_decisions_are_worker_and_backend_invariant(seed in any::<u64>(), iters in 18usize..30) {
        let first = |d: &[String]| d.iter().find(|l| l.starts_with("drift")).cloned();
        let reference = drift_decisions(None, seed, 1, iters);
        for workers in [2usize, 4] {
            let t = drift_decisions(None, seed, workers, iters);
            prop_assert_eq!(first(&t), first(&reference), "first detection diverged at {} workers", workers);
        }
        let two = drift_decisions(None, seed, 2, iters);
        for kind in [BackendKind::Spawn, BackendKind::InProcess, BackendKind::Remote] {
            let t = drift_decisions(Some(kind), seed, 2, iters);
            prop_assert_eq!(&t, &two, "decisions diverged on {:?}", kind);
        }
    }
}

fn series_strategy() -> impl Strategy<Value = Series> {
    proptest::collection::vec((-1e6f64..1e6, 0.0f64..100.0), 1..40).prop_map(|pairs| {
        let mut s = Series::new();
        let mut t = 0.0;
        for (y, dt) in pairs {
            t += dt;
            s.push(t, y);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn smoothing_preserves_length_and_bounds(s in series_strategy(), w in 1usize..12) {
        let sm = s.smoothed(w);
        prop_assert_eq!(sm.len(), s.len());
        let lo = s.y.iter().cloned().fold(f64::MAX, f64::min);
        let hi = s.y.iter().cloned().fold(f64::MIN, f64::max);
        for y in &sm.y {
            prop_assert!(*y >= lo - 1e-9 && *y <= hi + 1e-9);
        }
    }

    #[test]
    fn best_so_far_is_monotone(s in series_strategy()) {
        let up = s.best_so_far(true);
        prop_assert!(up.y.windows(2).all(|w| w[0] <= w[1]));
        let down = s.best_so_far(false);
        prop_assert!(down.y.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn resample_holds_values_from_the_source(s in series_strategy(), k in 2usize..40) {
        let t_end = s.t.last().unwrap() + 1.0;
        let r = s.resample(t_end, k);
        prop_assert_eq!(r.len(), k);
        // Every resampled value occurs in the source series.
        for y in &r.y {
            prop_assert!(s.y.iter().any(|v| v == y));
        }
        // Time axis is evenly spaced and ends at t_end.
        prop_assert!((r.t.last().unwrap() - t_end).abs() < 1e-9);
    }

    #[test]
    fn min_max_lands_in_unit_interval(values in proptest::collection::vec(-1e9f64..1e9, 1..50)) {
        let n = min_max_normalize(&values);
        prop_assert_eq!(n.len(), values.len());
        for v in &n {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn eq4_score_is_bounded(
        thr in proptest::collection::vec(0.0f64..1e6, 1..30),
        seed in any::<u64>(),
    ) {
        // Memory vector of the same length derived deterministically.
        let mem: Vec<f64> = thr
            .iter()
            .enumerate()
            .map(|(i, t)| (t * 0.01 + (seed % 97) as f64 + i as f64).abs())
            .collect();
        let scores = throughput_memory_score(&thr, &mem);
        for v in &scores {
            prop_assert!((-1.0..=1.0).contains(v), "score {v}");
        }
    }

    #[test]
    fn crash_rate_is_a_probability(
        flags in proptest::collection::vec(any::<bool>(), 1..60),
        window in 1usize..20,
    ) {
        let t: Vec<f64> = (0..flags.len()).map(|i| i as f64).collect();
        let s = rolling_crash_rate(&t, &flags, window);
        prop_assert_eq!(s.len(), flags.len());
        for y in &s.y {
            prop_assert!((0.0..=1.0).contains(y));
        }
    }
}
