//! Property tests for the metric post-processing invariants the figures
//! rely on.

use proptest::prelude::*;
use wf_platform::{min_max_normalize, rolling_crash_rate, throughput_memory_score, Series};

fn series_strategy() -> impl Strategy<Value = Series> {
    proptest::collection::vec((-1e6f64..1e6, 0.0f64..100.0), 1..40).prop_map(|pairs| {
        let mut s = Series::new();
        let mut t = 0.0;
        for (y, dt) in pairs {
            t += dt;
            s.push(t, y);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn smoothing_preserves_length_and_bounds(s in series_strategy(), w in 1usize..12) {
        let sm = s.smoothed(w);
        prop_assert_eq!(sm.len(), s.len());
        let lo = s.y.iter().cloned().fold(f64::MAX, f64::min);
        let hi = s.y.iter().cloned().fold(f64::MIN, f64::max);
        for y in &sm.y {
            prop_assert!(*y >= lo - 1e-9 && *y <= hi + 1e-9);
        }
    }

    #[test]
    fn best_so_far_is_monotone(s in series_strategy()) {
        let up = s.best_so_far(true);
        prop_assert!(up.y.windows(2).all(|w| w[0] <= w[1]));
        let down = s.best_so_far(false);
        prop_assert!(down.y.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn resample_holds_values_from_the_source(s in series_strategy(), k in 2usize..40) {
        let t_end = s.t.last().unwrap() + 1.0;
        let r = s.resample(t_end, k);
        prop_assert_eq!(r.len(), k);
        // Every resampled value occurs in the source series.
        for y in &r.y {
            prop_assert!(s.y.iter().any(|v| v == y));
        }
        // Time axis is evenly spaced and ends at t_end.
        prop_assert!((r.t.last().unwrap() - t_end).abs() < 1e-9);
    }

    #[test]
    fn min_max_lands_in_unit_interval(values in proptest::collection::vec(-1e9f64..1e9, 1..50)) {
        let n = min_max_normalize(&values);
        prop_assert_eq!(n.len(), values.len());
        for v in &n {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn eq4_score_is_bounded(
        thr in proptest::collection::vec(0.0f64..1e6, 1..30),
        seed in any::<u64>(),
    ) {
        // Memory vector of the same length derived deterministically.
        let mem: Vec<f64> = thr
            .iter()
            .enumerate()
            .map(|(i, t)| (t * 0.01 + (seed % 97) as f64 + i as f64).abs())
            .collect();
        let scores = throughput_memory_score(&thr, &mem);
        for v in &scores {
            prop_assert!((-1.0..=1.0).contains(v), "score {v}");
        }
    }

    #[test]
    fn crash_rate_is_a_probability(
        flags in proptest::collection::vec(any::<bool>(), 1..60),
        window in 1usize..20,
    ) {
        let t: Vec<f64> = (0..flags.len()).map(|i| i as f64).collect();
        let s = rolling_crash_rate(&t, &flags, window);
        prop_assert_eq!(s.len(), flags.len());
        for y in &s.y {
            prop_assert!((0.0..=1.0).contains(y));
        }
    }
}
