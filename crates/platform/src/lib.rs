//! `wf-platform`: the automated benchmarking pipeline (§3.1 of the paper).
//!
//! The platform builds, boots, and benchmarks OS images, drives a
//! pluggable search algorithm, and records the exploration history:
//!
//! * [`clock`] — the virtual clock all budgets are charged against;
//! * [`cache`] — the kernel-image cache behind §3.1's rebuild-skip;
//! * [`workers`] — crossbeam-parallel benchmark repetitions;
//! * [`history`] — per-iteration records plus Table 2's summary stats;
//! * [`metrics`] — smoothing, best-so-far, crash-rate series, and the
//!   Eq. 4 throughput–memory score;
//! * [`prober`] — the §3.4 runtime-space inference heuristic;
//! * [`pipeline`] — [`Session`]: the propose → build/boot/bench → observe
//!   loop with iteration/time budgets.

pub mod cache;
pub mod clock;
pub mod history;
pub mod metrics;
pub mod pipeline;
pub mod prober;
pub mod workers;

pub use cache::ImageCache;
pub use clock::VirtualClock;
pub use history::{History, Record};
pub use metrics::{min_max_normalize, rolling_crash_rate, throughput_memory_score, Series};
pub use pipeline::{Objective, Session, SessionSpec, SessionSummary};
pub use prober::{probe_runtime_space, ProbeReport};
