//! `wf-platform`: the automated benchmarking pipeline (§3.1 of the paper).
//!
//! The platform builds, boots, and benchmarks OS images, drives a
//! pluggable search algorithm, and records the exploration history:
//!
//! * [`clock`] — the virtual clock all budgets are charged against;
//! * [`cache`] — the kernel-image cache behind §3.1's rebuild-skip, and
//!   its lock-shared multi-worker form;
//! * [`workers`] — per-candidate evaluation ([`workers::evaluate_candidate`])
//!   plus the legacy scoped-thread [`workers::Pool`] and crossbeam-parallel
//!   benchmark repetitions;
//! * [`backend`] — the [`backend::EvalBackend`] trait and its persistent
//!   [`backend::InProcessBackend`] / legacy [`backend::SpawnBackend`]
//!   implementations (where waves execute);
//! * [`remote`] — [`remote::RemoteBackend`]: workers behind a
//!   process/socket boundary speaking the length-prefixed `wf-evald`
//!   protocol;
//! * [`router`] — performance-aware slot → lane assignment
//!   ([`router::Router`]: `random | fastest | round-robin | preferred`)
//!   with retry and lane health-gating;
//! * [`history`] — per-iteration records plus Table 2's summary stats;
//! * [`metrics`] — smoothing, best-so-far, crash-rate series, per-wave
//!   scheduling stats, and the Eq. 4 throughput–memory score;
//! * [`prober`] — the §3.4 runtime-space inference heuristic;
//! * [`target`] — the open [`EvalTarget`] abstraction (space + build /
//!   boot / bench) every session runs against, with [`SimTarget`] (a
//!   `wf_ossim::SimOs` + `App` pair) as the reference implementation;
//! * [`pipeline`] — [`Session`]: the batch ask → build/boot/bench across
//!   the pool → tell loop with iteration/time budgets;
//! * [`events`] — the typed [`SessionEvent`] stream and [`EventSink`]
//!   observer interface (`run_with`/`step_wave_with` emit through it);
//! * [`store`] — on-disk session stores: a job-file manifest plus an
//!   append-only, hash-chained `events.jsonl`, written by
//!   [`store::JsonlSink`] and reloaded by [`store::SessionStore`] for
//!   offline reports and deterministic resume ([`Session::replay`]);
//! * [`daemon`] — the `wfd` multi-tenant session daemon: a Unix-socket
//!   API over a state root with one supervised thread and store per
//!   session;
//! * [`signal`] — the cooperative SIGINT/SIGTERM flag drive loops check
//!   at wave boundaries so interrupts never tear the ledger;
//! * [`epoch`] — continuous specialization: drifting workloads
//!   ([`wf_ossim::DriftSchedule`]) measured per candidate, deployed-
//!   reference telemetry fed to a `wf_drift` detector, and epoch-based
//!   re-specialization on confirmed drift ([`Session::enable_drift`]).

pub mod backend;
pub mod cache;
pub mod clock;
pub mod daemon;
pub mod epoch;
pub mod events;
pub mod history;
pub mod metrics;
pub mod pipeline;
pub mod prober;
pub mod remote;
pub mod router;
pub mod signal;
pub mod store;
pub mod sync;
pub mod target;
pub mod workers;

pub use backend::{EvalBackend, InProcessBackend, LaneError, SpawnBackend, WorkItem, WorkResult};
pub use cache::{ImageCache, SharedImageCache};
pub use clock::VirtualClock;
pub use daemon::{
    Daemon, SessionControl, SessionEntry, SessionLauncher, SessionStatus, SocketSink,
};
pub use epoch::DriftConfig;
pub use events::{EventSink, NullSink, RecordingSink, SessionEvent, Tee};
pub use history::{History, Record};
pub use metrics::{
    mean_occupancy, min_max_normalize, rolling_crash_rate, throughput_memory_score, Series,
    WaveStats,
};
pub use pipeline::{default_workers, Objective, ReplayError, Session, SessionSpec, SessionSummary};
pub use prober::{probe_runtime_space, ProbeReport};
pub use remote::{serve, RemoteBackend, RemoteSpec};
pub use router::{dispatch_wave, LaneStats, Router, RoutingStrategy};
pub use store::{JsonlSink, SessionStore, StoreError, StoredDrift, StoredEpoch, StoredSession};
pub use sync::lock_recover;
pub use target::{EvalTarget, SimTarget, TargetDescriptor};
pub use workers::{derive_seed, Pool};
