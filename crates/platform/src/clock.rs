//! The virtual clock.
//!
//! All experiment budgets in the paper are wall-clock budgets on the
//! testbed (3-hour sessions, 60–80 s evaluations). The simulator charges
//! those durations to a virtual clock instead of sleeping, so a 3-hour
//! search session replays in seconds of real time while preserving every
//! time-dependent comparison (Fig. 6, 9, 10, 11 all plot against seconds).

/// A monotonically advancing virtual clock.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advances the clock by `seconds`.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite durations — charging negative time
    /// would silently corrupt every time-series figure.
    pub fn advance(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid duration {seconds}"
        );
        self.now_s += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance(60.5);
        c.advance(0.0);
        assert!((c.now_s() - 60.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_negative_time() {
        let mut c = VirtualClock::new();
        c.advance(-1.0);
    }
}
