//! The core exploration loop (§3.1), batched across a VM-worker pool.
//!
//! "1) build and boot an OS image based on a given configuration in a VM;
//! 2) benchmark the target application running on that OS image; and
//! 3) determine the next configuration to consider" — iterated until the
//! iteration or time budget runs out, after which the best configuration
//! found is returned.
//!
//! The loop advances in *waves*: each wave asks the search algorithm for
//! up to `workers` candidates ([`wf_search::SearchAlgorithm::propose_batch`]),
//! dispatches them through a routed [`crate::backend::EvalBackend`]
//! ([`crate::router::dispatch_wave`]: the [`crate::router::Router`]
//! assigns each slot a lane, failed lanes are health-gated and their
//! slots retried), and tells the algorithm every outcome at once
//! ([`wf_search::SearchAlgorithm::observe_batch`]). The backend is a
//! deployment knob ([`wf_jobfile::BackendChoice`]): persistent in-process
//! worker threads by default, `wf-evald` worker processes for
//! [`crate::remote::RemoteBackend`], or the legacy per-wave
//! scoped-thread spawn.
//!
//! # The two virtual clocks
//!
//! * **Wall clock** ([`Session::now_s`], `elapsed_s`): each wave charges
//!   the *slowest* worker lane — what a human waits for. More workers →
//!   lower wall clock. Time budgets cut against this clock.
//! * **Compute clock** (`compute_s`): each wave charges the *sum* of the
//!   candidates' durations — total VM-seconds burned. Every candidate's
//!   cost derives from a per-candidate RNG (`workers::derive_seed`),
//!   never from a shared stream.
//!
//! # Worker-count invariance, precisely
//!
//! On **runtime targets** (fixed image, no build phase) with **random
//! search**, the evaluation history, best configuration, and compute
//! clock are identical at every worker count for a fixed seed — the
//! property `tests/props.rs` proves. The other knobs each break it for a
//! stated reason:
//!
//! * model-based algorithms (bayes, causal, DeepTune) see less feedback
//!   per decision at larger batch sizes, so they legitimately propose
//!   different waves — the classic batch-optimization trade-off;
//! * grid's wave dedup intentionally skips the repeated default point
//!   that a sequential sweep re-evaluates once per axis, so its batched
//!   history is a strict subsequence-reordering of the sequential one;
//! * compile targets give each worker lane its own working tree, so
//!   incremental-rebuild *durations* depend on the lane's previous
//!   build; and cache reuse is wave-granular (the deterministic
//!   two-phase protocol in [`crate::workers::Pool::run_wave`] probes
//!   before dispatch and publishes after), so two same-image candidates
//!   in one wave both build where a sequential sweep builds once.
//!   Build/boot/bench draw from separate per-candidate RNG streams, so
//!   measured *outcomes* (metrics, crashes) stay fixed either way —
//!   and within a fixed worker count every cache effect is a pure
//!   function of (seed, candidate order), which is what makes stores
//!   replayable bit-for-bit.

use crate::backend::{EvalBackend, InProcessBackend, SpawnBackend};
use crate::cache::SharedImageCache;
use crate::clock::VirtualClock;
use crate::epoch::{DriftConfig, DriftState};
use crate::events::{EventSink, NullSink, SessionEvent};
use crate::history::{History, Record};
use crate::metrics::{mean_occupancy, WaveStats};
use crate::remote::{RemoteBackend, RemoteSpec};
use crate::router::{dispatch_wave, Router};
use crate::target::{EvalTarget, SimTarget, TargetDescriptor};
use crate::workers::{self, derive_seed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;
use wf_configspace::{ConfigSpace, Configuration, Encoder};
use wf_jobfile::{BackendChoice, Budget, Direction, RoutingStrategy};
use wf_ossim::{App, Phase, SimOs};
use wf_search::host_clock::HostTimer;
use wf_search::{Observation, SamplePolicy, SearchAlgorithm, SearchContext};

/// What the session optimizes (the user-provided metric of Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// The application's primary metric (throughput, latency, Mop/s).
    Metric,
    /// Resident memory in MB (Fig. 10).
    MemoryMb,
    /// Eq. 4: min–max normalized throughput minus normalized memory
    /// (Fig. 11, Table 4). Always maximized.
    ThroughputMemoryScore,
}

/// The default worker count: `WF_WORKERS` from the environment (clamped
/// to `1..=64`), else 1.
pub fn default_workers() -> usize {
    // wf-lint: allow(host-env-read, reason = "config-load: WF_WORKERS picks the pool width once at session construction; results are worker-count invariant (DETERMINISM.md)")
    std::env::var("WF_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, 64))
        .unwrap_or(1)
}

/// Session parameters.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Objective to optimize.
    pub objective: Objective,
    /// Optimization direction for [`Objective::Metric`] /
    /// [`Objective::MemoryMb`]; ignored for the score (always maximized).
    pub direction: Direction,
    /// Candidate sampling policy (§3.5 focus).
    pub policy: SamplePolicy,
    /// Iteration / virtual-time budget.
    pub budget: Budget,
    /// Benchmark repetitions per configuration.
    pub repetitions: usize,
    /// RNG seed for the whole session.
    pub seed: u64,
    /// Simulated VM workers evaluating candidates concurrently (wave
    /// width). Defaults to [`default_workers`].
    pub workers: usize,
    /// Where candidate evaluations execute (see
    /// [`crate::backend::EvalBackend`]). Defaults to the persistent
    /// in-process pool.
    pub backend: BackendChoice,
    /// How wave slots map onto evaluator lanes (see
    /// [`crate::router::Router`]). Defaults to round-robin, which is the
    /// identity assignment on full-width healthy waves.
    pub routing: RoutingStrategy,
    /// Worker launch spec for [`BackendChoice::Remote`] (the `wf-evald`
    /// command plus its target-resolution arguments). Required when
    /// `backend` is `Remote`, ignored otherwise.
    pub remote: Option<RemoteSpec>,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            objective: Objective::Metric,
            direction: Direction::Maximize,
            policy: SamplePolicy::Uniform,
            budget: Budget {
                iterations: Some(100),
                time_seconds: None,
            },
            repetitions: 1,
            seed: 1,
            workers: default_workers(),
            backend: BackendChoice::default(),
            routing: RoutingStrategy::default(),
            remote: None,
        }
    }
}

/// Summary returned when a session completes.
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// Best objective value found (None if everything crashed).
    pub best_objective: Option<f64>,
    /// Best raw metric.
    pub best_metric: Option<f64>,
    /// The best configuration.
    pub best_config: Option<Configuration>,
    /// Iterations executed.
    pub iterations: usize,
    /// Overall crash rate.
    pub crash_rate: f64,
    /// Virtual wall seconds consumed (slowest lane per wave).
    pub elapsed_s: f64,
    /// Total virtual compute seconds (summed candidate durations);
    /// worker-count invariant.
    pub compute_s: f64,
    /// Worker count the session ran with.
    pub workers: usize,
    /// Number of evaluation waves dispatched.
    pub waves: usize,
    /// Mean pool occupancy over all waves.
    pub mean_occupancy: f64,
    /// Image-cache (hits, misses).
    pub cache_stats: (u64, u64),
}

/// Why a persisted history could not be replayed into a session
/// ([`Session::replay`]). Every variant means the store and the freshly
/// built session disagree — replaying never papers over divergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The session already has history; replay needs a fresh one.
    NotFresh {
        /// Iterations already recorded.
        iterations: usize,
    },
    /// The stored wave sizes do not cover the stored records.
    BadWaveShape {
        /// Stored record count.
        records: usize,
        /// Sum of the stored wave sizes.
        covered: usize,
    },
    /// A stored wave is empty or wider than this session's worker pool
    /// (e.g. the worker count was overridden on resume).
    WaveTooWide {
        /// Zero-based wave index.
        wave: usize,
        /// Stored wave size.
        size: usize,
        /// This session's pool width.
        workers: usize,
    },
    /// A stored configuration has a different parameter count than the
    /// session's space — the target was rebuilt differently.
    SpaceMismatch {
        /// Iteration of the offending record.
        iteration: usize,
        /// Stored configuration length.
        config_len: usize,
        /// Session space length.
        space_len: usize,
    },
    /// The re-asked algorithm proposed a different candidate than the
    /// store recorded — wrong seed, algorithm, policy, or space.
    ConfigMismatch {
        /// Iteration where the proposals diverged.
        iteration: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::NotFresh { iterations } => write!(
                f,
                "cannot replay into a session that already ran {iterations} iteration(s)"
            ),
            ReplayError::BadWaveShape { records, covered } => write!(
                f,
                "stored wave sizes cover {covered} record(s) but the store holds {records}"
            ),
            ReplayError::WaveTooWide {
                wave,
                size,
                workers,
            } => write!(
                f,
                "stored wave {wave} has {size} candidate(s) but the pool is {workers} wide \
                 (worker counts cannot change across a resume)"
            ),
            ReplayError::SpaceMismatch {
                iteration,
                config_len,
                space_len,
            } => write!(
                f,
                "iteration {iteration}: stored configuration has {config_len} parameter(s), \
                 the rebuilt space has {space_len}"
            ),
            ReplayError::ConfigMismatch { iteration } => write!(
                f,
                "iteration {iteration}: the re-asked algorithm proposed a different candidate \
                 than the store recorded (seed, algorithm, or space mismatch)"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// A running specialization session: one [`EvalTarget`], one algorithm,
/// one budget, one routed evaluation backend.
pub struct Session {
    target: Arc<dyn EvalTarget>,
    algorithm: Box<dyn SearchAlgorithm>,
    spec: SessionSpec,
    encoder: Encoder,
    /// Wall time: the slowest lane of each wave.
    clock: VirtualClock,
    /// Compute time: every candidate's duration.
    compute: VirtualClock,
    cache: SharedImageCache,
    history: History,
    rng: StdRng,
    /// Where candidate evaluations execute.
    backend: Box<dyn EvalBackend>,
    /// Slot → lane assignment plus per-lane latency/failure stats.
    router: Router,
    /// Per-lane "working trees": the configuration each lane last built
    /// (enables incremental-rebuild timing on compile targets).
    lanes: Vec<Option<Configuration>>,
    /// Per-wave scheduling metrics.
    waves: Vec<WaveStats>,
    /// Running bounds for the Eq. 4 score.
    metric_bounds: (f64, f64),
    memory_bounds: (f64, f64),
    /// Continuous-mode state ([`Session::enable_drift`]); `None` for the
    /// classic one-shot session.
    drift: Option<DriftState>,
}

impl Session {
    /// Creates a session over the simulated testbed: a [`SimOs`] paired
    /// with an [`App`] (convenience wrapper over [`Session::with_target`]).
    pub fn new(
        os: SimOs,
        app: App,
        algorithm: Box<dyn SearchAlgorithm>,
        spec: SessionSpec,
    ) -> Self {
        Session::with_target(Box::new(SimTarget::new(os, app)), algorithm, spec)
    }

    /// Creates a session over any [`EvalTarget`], constructing the
    /// evaluation backend from `spec.backend`.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot be constructed; callers that need to
    /// report the failure instead use [`Session::try_with_target`].
    pub fn with_target(
        target: Box<dyn EvalTarget>,
        algorithm: Box<dyn SearchAlgorithm>,
        spec: SessionSpec,
    ) -> Self {
        match Session::try_with_target(target, algorithm, spec) {
            Ok(session) => session,
            Err(message) => panic!("{message}"),
        }
    }

    /// Fallible [`Session::with_target`]: a [`BackendChoice::Remote`]
    /// spec with no launch command, or remote workers that fail to come
    /// up, is an `Err` instead of a panic.
    pub fn try_with_target(
        target: Box<dyn EvalTarget>,
        algorithm: Box<dyn SearchAlgorithm>,
        spec: SessionSpec,
    ) -> Result<Self, String> {
        let workers = spec.workers.max(1);
        let backend: Box<dyn EvalBackend> = match spec.backend {
            BackendChoice::Spawn => Box::new(SpawnBackend::new()),
            BackendChoice::InProcess => Box::new(InProcessBackend::new(workers)),
            BackendChoice::Remote => {
                let remote = spec.remote.as_ref().ok_or_else(|| {
                    "the remote backend needs a worker launch spec (spec.remote)".to_string()
                })?;
                Box::new(
                    RemoteBackend::spawn(workers, remote)
                        .map_err(|e| format!("cannot launch remote workers: {e}"))?,
                )
            }
        };
        Ok(Session::with_backend(target, algorithm, spec, backend))
    }

    /// Creates a session over an explicit, already-constructed backend
    /// (tests inject protocol-level backends here; `spec.backend` is kept
    /// as documentation but not consulted).
    pub fn with_backend(
        target: Box<dyn EvalTarget>,
        algorithm: Box<dyn SearchAlgorithm>,
        spec: SessionSpec,
        backend: Box<dyn EvalBackend>,
    ) -> Self {
        let encoder = Encoder::new(target.space());
        let rng = StdRng::seed_from_u64(spec.seed);
        let workers = spec.workers.max(1);
        Session {
            target: Arc::from(target),
            algorithm,
            encoder,
            clock: VirtualClock::new(),
            compute: VirtualClock::new(),
            cache: SharedImageCache::new(32),
            history: History::new(),
            rng,
            backend,
            router: Router::new(spec.routing, workers),
            lanes: vec![None; workers],
            waves: Vec::new(),
            metric_bounds: (f64::MAX, f64::MIN),
            memory_bounds: (f64::MAX, f64::MIN),
            drift: None,
            spec,
        }
    }

    /// Switches this session to continuous mode: candidates are measured
    /// against `config.schedule`'s phase at their own virtual compute
    /// time, the deployed reference's telemetry feeds `config.detector`,
    /// and confirmed drifts close the epoch and re-seed the search (see
    /// [`crate::epoch`]).
    ///
    /// Must be called before the session runs (or replays): the drift
    /// axis is the compute clock, which starts at the first wave.
    ///
    /// # Panics
    ///
    /// Panics if the session already has history.
    pub fn enable_drift(&mut self, config: DriftConfig) {
        assert!(
            self.history.is_empty(),
            "enable_drift on a session that already ran"
        );
        self.drift = Some(DriftState::new(config));
    }

    /// Whether this session runs in continuous mode.
    pub fn drift_enabled(&self) -> bool {
        self.drift.is_some()
    }

    /// Current epoch index (0 for one-shot sessions).
    pub fn epoch(&self) -> usize {
        self.drift.as_ref().map_or(0, |d| d.epoch)
    }

    /// History index where the current epoch began (0 for one-shot
    /// sessions).
    pub fn epoch_start(&self) -> usize {
        self.drift.as_ref().map_or(0, |d| d.epoch_start)
    }

    /// The drifting workload, when continuous mode is on.
    pub fn drift_schedule(&self) -> Option<&wf_ossim::DriftSchedule> {
        self.drift.as_ref().map(|d| &d.config.schedule)
    }

    /// The session's wave width (lane count).
    pub fn workers(&self) -> usize {
        self.router.width()
    }

    /// Per-lane routing statistics (latency EWMA, samples, failures,
    /// health), indexed by lane.
    pub fn lane_stats(&self) -> &[crate::router::LaneStats] {
        self.router.stats()
    }

    /// The effective optimization direction (the score is always
    /// maximized).
    pub fn direction(&self) -> Direction {
        match self.spec.objective {
            Objective::ThroughputMemoryScore => Direction::Maximize,
            _ => self.spec.direction,
        }
    }

    /// Whether the budget is exhausted.
    pub fn done(&self) -> bool {
        if let Some(max_iters) = self.spec.budget.iterations {
            if self.history.len() >= max_iters {
                return true;
            }
        }
        if let Some(max_s) = self.spec.budget.time_seconds {
            if self.clock.now_s() >= max_s {
                return true;
            }
        }
        false
    }

    /// Runs one wave of the core loop: ask for up to `workers`
    /// candidates, evaluate them across the pool, tell the algorithm
    /// every outcome. Returns the records appended, in candidate order.
    ///
    /// Iteration budgets truncate the final wave exactly. Time budgets
    /// gate *dispatch* only: a wave launched with budget remaining runs
    /// to completion, so a time-budgeted session can finish up to
    /// `workers - 1` evaluations past the cutoff (in-flight VMs do not
    /// vanish when the clock expires — more workers burn more VM-seconds
    /// inside the same wall budget, which is the point of the fleet).
    /// Comparisons that need the sequential overshoot-by-one semantics
    /// should pin `workers: 1`, as the figure regenerations do.
    pub fn step_wave(&mut self) -> &[Record] {
        self.step_wave_with(&mut NullSink)
    }

    /// [`Session::step_wave`], emitting [`SessionEvent`]s through `sink`
    /// as the wave progresses: `WaveDispatched` once the candidates are
    /// proposed, then one `CandidateEvaluated` per finalized record
    /// (interleaved with `NewBest` whenever the best-so-far objective
    /// improves), then `WaveCompleted`. The sink only observes — the
    /// evaluated candidates, outcomes, and clocks are byte-for-byte those
    /// of the sink-less wave.
    pub fn step_wave_with(&mut self, sink: &mut dyn EventSink) -> &[Record] {
        let start = self.history.len();
        let wave_index = self.waves.len();
        let remaining = self
            .spec
            .budget
            .iterations
            .map(|max| max.saturating_sub(start).max(1))
            .unwrap_or(usize::MAX);
        let n = self.workers().min(remaining);

        // Continuous sessions restart the algorithm's visible history at
        // each epoch boundary: the model was re-seeded there, and stale
        // pre-drift observations would poison it. `ctx.iteration` stays
        // global — it is the store's iteration axis.
        let epoch_start = self.drift.as_ref().map_or(0, |d| d.epoch_start);
        let observations = &self.history.observations()[epoch_start..];
        let direction = self.direction();

        // Ask.
        let t_ask = HostTimer::start();
        let configs = {
            let ctx = SearchContext {
                space: self.target.space(),
                encoder: &self.encoder,
                direction,
                policy: &self.spec.policy,
                history: observations,
                iteration: start,
            };
            self.algorithm.propose_batch(n, &ctx, &mut self.rng)
        };
        let mut algo_seconds = t_ask.seconds();
        assert_eq!(configs.len(), n, "propose_batch must return n candidates");
        sink.on_event(&SessionEvent::WaveDispatched {
            wave: wave_index,
            first_iteration: start,
            size: n,
        });

        // Evaluate through the routed backend.
        let (hits_before, misses_before) = self.cache.stats();
        let evals = dispatch_wave(
            self.backend.as_mut(),
            &mut self.router,
            &self.target,
            &configs,
            start,
            self.spec.seed,
            wave_index as u64,
            self.spec.repetitions,
            &self.cache,
            &mut self.lanes,
        );
        let (hits_after, misses_after) = self.cache.stats();

        // Charge the clocks: the wave's wall time is its slowest lane,
        // its compute time the sum of every candidate.
        let busy_s: f64 = evals.iter().map(|e| e.duration_s).sum();
        let wall_s = evals.iter().map(|e| e.duration_s).fold(0.0, f64::max);
        self.clock.advance(wall_s);
        self.compute.advance(busy_s);
        let finished_at_s = self.clock.now_s();

        // A candidate's position on the drift axis: the drift clock
        // before the wave plus the per-candidate prefix sum of durations
        // in iteration order — worker-count invariant to the bit. The
        // clock itself advances in `drift_epilogue`, which re-derives
        // the same sums.
        let drift_times: Vec<f64> = match &self.drift {
            Some(d) => {
                let mut t = d.now_s;
                evals
                    .iter()
                    .map(|e| {
                        t += e.duration_s;
                        t
                    })
                    .collect()
            }
            None => Vec::new(),
        };

        // Record in candidate order (iteration order == proposal order,
        // regardless of which worker finished first). Evaluations come
        // back positionally, so each proposed configuration moves into
        // its record without a clone.
        let mut records: Vec<Record> = Vec::with_capacity(n);
        for (offset, (config, eval)) in configs.into_iter().zip(evals).enumerate() {
            let mut record = Record {
                iteration: start + offset,
                config,
                objective: None,
                metric: None,
                memory_mb: None,
                crash_phase: None,
                build_skipped: eval.build_skipped,
                duration_s: eval.duration_s,
                finished_at_s,
                algo_seconds: 0.0,
                algo_memory_bytes: 0,
            };
            match eval.outcome {
                Err(crash) => record.crash_phase = Some(crash.phase),
                Ok(r) => {
                    // Continuous mode re-draws the metric against the
                    // phase active at the candidate's own virtual time;
                    // the drifted value is what gets stored, so replay
                    // (which recomputes objectives from stored metrics)
                    // needs no drift model at all.
                    let metric = match &self.drift {
                        Some(drift) => drift.drifted_metric(
                            self.spec.seed,
                            start + offset,
                            drift_times[offset],
                            &record.config.named(self.target.space()),
                        ),
                        None => r.metric,
                    };
                    record.metric = Some(metric);
                    record.memory_mb = Some(r.memory_mb);
                    record.objective = Some(Self::objective_of(
                        self.spec.objective,
                        &mut self.metric_bounds,
                        &mut self.memory_bounds,
                        metric,
                        r.memory_mb,
                    ));
                }
            }
            records.push(record);
        }

        // Tell.
        let wave_obs: Vec<Observation> = records.iter().map(Record::observation).collect();
        let t_tell = HostTimer::start();
        {
            let ctx = SearchContext {
                space: self.target.space(),
                encoder: &self.encoder,
                direction,
                policy: &self.spec.policy,
                history: observations,
                iteration: start,
            };
            self.algorithm.observe_batch(&ctx, &wave_obs);
        }
        algo_seconds += t_tell.seconds();
        let stats = self.algorithm.stats();
        let algo_seconds = algo_seconds.max(stats.last_update_seconds);
        // The wave's decision cost is shared evenly across its records
        // (Fig. 8 plots per-iteration algorithm time).
        let per_record = algo_seconds / n as f64;
        let mut best = self.history.best(direction).and_then(|r| r.objective);
        for mut record in records {
            record.algo_seconds = per_record;
            record.algo_memory_bytes = stats.memory_bytes;
            sink.on_event(&SessionEvent::CandidateEvaluated(record.clone()));
            if let Some(objective) = record.objective {
                if best.is_none_or(|b| direction.better(objective, b)) {
                    best = Some(objective);
                    sink.on_event(&SessionEvent::NewBest {
                        iteration: record.iteration,
                        objective,
                    });
                }
            }
            self.history.push(record);
        }

        // Continuous mode: scan the wave's telemetry and, on a confirmed
        // drift, close the epoch. The events land *inside* the wave —
        // before `WaveCompleted` — so the store's wave-atomic write
        // covers them and a torn tail drops them with the wave.
        for event in self.drift_epilogue(start) {
            sink.on_event(&event);
        }

        let wave_stats = WaveStats {
            wave: wave_index,
            size: n,
            wall_s,
            busy_s,
            cache_hits: hits_after - hits_before,
            cache_misses: misses_after - misses_before,
        };
        self.waves.push(wave_stats);
        sink.on_event(&SessionEvent::WaveCompleted(wave_stats));
        &self.history.records()[start..]
    }

    /// The continuous-mode wave epilogue, shared verbatim by the live
    /// and replay paths: feeds the detector one deployed-telemetry
    /// sample per candidate of the wave starting at `start`, and on the
    /// first confirmed verdict closes the epoch — resets the detector,
    /// re-seeds the search ([`wf_search::SearchAlgorithm::begin_epoch`]),
    /// and moves the deployed reference to the closed epoch's best.
    /// Returns the events the live path must emit; replay discards them
    /// (the store already holds them).
    fn drift_epilogue(&mut self, start: usize) -> Vec<SessionEvent> {
        if self.drift.is_none() {
            return Vec::new();
        }
        let seed = self.spec.seed;
        let detection = {
            let drift = self.drift.as_mut().expect("checked above");
            let mut t = drift.now_s;
            let mut detection = None;
            // Every sample is fed even after a verdict latched: the
            // detector resets below either way, and a fixed feed order
            // keeps the scan identical between live and replay.
            for r in &self.history.records()[start..] {
                t += r.duration_s;
                let value = drift.signal_sample(seed, r.iteration, t);
                let d = drift.observe(r.iteration, t, value);
                if detection.is_none() {
                    detection = d;
                }
            }
            drift.now_s = t;
            detection
        };
        let Some(det) = detection else {
            return Vec::new();
        };

        // The closing epoch's best deployment becomes the telemetry
        // reference of the next one (kept if the whole epoch crashed).
        let direction = self.direction();
        let epoch_start = self.drift.as_ref().expect("checked above").epoch_start;
        let mut best: Option<&Record> = None;
        for r in &self.history.records()[epoch_start..] {
            let Some(objective) = r.objective else {
                continue;
            };
            if best
                .and_then(|b| b.objective)
                .is_none_or(|b| direction.better(objective, b))
            {
                best = Some(r);
            }
        }
        let reference = best.map(|r| r.config.named(self.target.space()));

        let next_start = self.history.len();
        let drift = self.drift.as_mut().expect("checked above");
        let at_s = drift.now_s;
        let transfer = drift.config.transfer;
        let detected = SessionEvent::DriftDetected {
            epoch: drift.epoch,
            at_iteration: det.at_iteration,
            at_s: det.at_s,
            detector: drift.config.detector.name().into(),
            signal: det.snapshot.current,
            baseline: det.snapshot.baseline,
        };
        drift.close_epoch(next_start, reference);
        self.algorithm.begin_epoch(transfer);
        let drift = self.drift.as_ref().expect("checked above");
        let started = SessionEvent::EpochStarted {
            epoch: drift.epoch,
            first_iteration: next_start,
            at_s,
            transfer,
            phase: drift.config.schedule.phase_at(at_s).name.clone(),
            oracle_metric: drift.config.schedule.oracle_metric_at(at_s),
        };
        vec![detected, started]
    }

    /// Runs one wave and returns its last record (compatibility shim for
    /// single-record stepping loops; `workers = 1` makes this exactly the
    /// classic one-candidate iteration).
    pub fn step(&mut self) -> &Record {
        self.step_wave().last().expect("a wave evaluates >= 1")
    }

    /// Runs until the budget is exhausted and summarizes.
    pub fn run(&mut self) -> SessionSummary {
        self.run_with(&mut NullSink)
    }

    /// Runs until the budget is exhausted, emitting the full
    /// [`SessionEvent`] stream through `sink`: `SessionStarted`, every
    /// wave's events, then `SessionFinished`. Outcomes are byte-for-byte
    /// identical to [`Session::run`] — sinks observe, never steer.
    pub fn run_with(&mut self, sink: &mut dyn EventSink) -> SessionSummary {
        self.run_with_until(sink, &mut || false).0
    }

    /// Like [`Session::run_with`], but checks `should_stop` at every wave
    /// boundary — the only points where the store is consistent — and
    /// returns early when it answers `true`. Returns the summary plus
    /// whether the budget actually ran to exhaustion; `SessionFinished`
    /// is only emitted on completion, so an interrupted store stays
    /// resumable. This is what `wfctl`'s SIGINT handling and the `wfd`
    /// daemon's stop requests drive.
    pub fn run_with_until(
        &mut self,
        sink: &mut dyn EventSink,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> (SessionSummary, bool) {
        sink.on_event(&self.start_event());
        // A fresh continuous session opens epoch 0 explicitly; a resumed
        // one replays past the stored epoch events instead.
        if self.history.is_empty() {
            if let Some(event) = self.epoch_zero_event() {
                sink.on_event(&event);
            }
        }
        while !self.done() {
            if should_stop() {
                return (self.summary(), false);
            }
            self.step_wave_with(sink);
        }
        let summary = self.summary();
        sink.on_event(&SessionEvent::SessionFinished(summary.clone()));
        (summary, true)
    }

    /// The `EpochStarted` event a fresh continuous session opens with
    /// (`None` for one-shot sessions).
    pub fn epoch_zero_event(&self) -> Option<SessionEvent> {
        let drift = self.drift.as_ref()?;
        Some(SessionEvent::EpochStarted {
            epoch: 0,
            first_iteration: 0,
            at_s: 0.0,
            transfer: false,
            phase: drift.config.schedule.phase_at(0.0).name.clone(),
            oracle_metric: drift.config.schedule.oracle_metric_at(0.0),
        })
    }

    /// The `SessionStarted` event describing this session right now
    /// (`first_iteration` is the current history length, so a resumed
    /// session announces where it picks up).
    pub fn start_event(&self) -> SessionEvent {
        SessionEvent::SessionStarted {
            descriptor: self.target.descriptor().clone(),
            seed: self.spec.seed,
            workers: self.workers(),
            first_iteration: self.history.len(),
        }
    }

    /// Replays a persisted history into this freshly built session
    /// without re-evaluating a single candidate, leaving every piece of
    /// live state — search-algorithm model, session RNG, virtual clocks,
    /// image cache, per-lane working trees, score-normalization bounds —
    /// exactly as it stood when the original session finished its last
    /// complete wave. `records` must be the stored records in iteration
    /// order and `wave_sizes` the stored wave shapes covering them.
    ///
    /// For every wave the session re-asks the algorithm
    /// ([`wf_search::SearchAlgorithm::propose_batch`] is pure computation
    /// — no build, boot, or benchmark runs) and cross-checks the proposed
    /// candidates against the stored ones, so a store replayed against
    /// the wrong target, seed, algorithm, or budget fails loudly with
    /// [`ReplayError::ConfigMismatch`] instead of silently forking the
    /// campaign. Cache and lane state are rebuilt from each record's
    /// deterministic build metadata (the simulated build is re-derived
    /// from the per-candidate RNG stream; measured outcomes and durations
    /// come from the store).
    ///
    /// After a successful replay, continuing with
    /// [`Session::step_wave_with`] / [`Session::run_with`] produces the
    /// same history, best configuration, and compute clock as the
    /// uninterrupted session — the resume guarantee the end-to-end tests
    /// assert for every registered target and algorithm.
    pub fn replay(&mut self, records: &[Record], wave_sizes: &[usize]) -> Result<(), ReplayError> {
        if !self.history.is_empty() {
            return Err(ReplayError::NotFresh {
                iterations: self.history.len(),
            });
        }
        let covered: usize = wave_sizes.iter().sum();
        if covered != records.len() {
            return Err(ReplayError::BadWaveShape {
                records: records.len(),
                covered,
            });
        }
        let mut offset = 0;
        for &n in wave_sizes {
            self.replay_wave(&records[offset..offset + n])?;
            offset += n;
        }
        Ok(())
    }

    /// Replays one stored wave: re-ask, verify, rebuild cache/lane state,
    /// charge the stored durations, re-tell.
    fn replay_wave(&mut self, stored: &[Record]) -> Result<(), ReplayError> {
        let start = self.history.len();
        let wave_index = self.waves.len();
        let n = stored.len();
        if n == 0 || n > self.workers() {
            return Err(ReplayError::WaveTooWide {
                wave: wave_index,
                size: n,
                workers: self.workers(),
            });
        }
        let space_len = self.target.space().len();
        for r in stored {
            if r.config.len() != space_len {
                return Err(ReplayError::SpaceMismatch {
                    iteration: r.iteration,
                    config_len: r.config.len(),
                    space_len,
                });
            }
        }

        // Epoch-local history, exactly as the live wave sliced it.
        let epoch_start = self.drift.as_ref().map_or(0, |d| d.epoch_start);
        let observations = &self.history.observations()[epoch_start..];
        let direction = self.direction();

        // Re-ask: advances the session RNG and the algorithm's internal
        // proposal state exactly as the live wave did.
        let configs = {
            let ctx = SearchContext {
                space: self.target.space(),
                encoder: &self.encoder,
                direction,
                policy: &self.spec.policy,
                history: observations,
                iteration: start,
            };
            self.algorithm.propose_batch(n, &ctx, &mut self.rng)
        };
        assert_eq!(configs.len(), n, "propose_batch must return n candidates");
        for (offset, (proposed, r)) in configs.iter().zip(stored).enumerate() {
            if *proposed != r.config {
                return Err(ReplayError::ConfigMismatch {
                    iteration: start + offset,
                });
            }
        }

        // Re-run the router: lane assignment is a deterministic function
        // of (strategy state, seed, wave index), so replay re-derives the
        // same slot → lane map the live wave used — replay assumes an
        // all-healthy fleet, which matches any failure-free live run (a
        // transport failure is a host-level event outside the
        // determinism contract; see `docs/DETERMINISM.md`).
        let assigned = self.router.assign(n, self.spec.seed, wave_index as u64);

        // Rebuild cache and lane state from deterministic build metadata,
        // mirroring the live wave's two-phase cache protocol exactly:
        // probe every fingerprint in candidate order, re-derive each
        // build from the candidate's own RNG stream
        // (`derive_seed(candidate, STREAM_BUILD)`), then publish the
        // images in candidate order. No boot or benchmark runs and no
        // shared stream shifts.
        let (hits_before, misses_before) = self.cache.stats();
        let reuses: Vec<_> = stored
            .iter()
            .map(|r| self.cache.get(self.target.image_fingerprint(&r.config)))
            .collect();
        // Builds see the *pre-wave* working trees (live items carry a
        // snapshot taken at dispatch), and tree updates land afterwards
        // in candidate order — so replay agrees with the live wave even
        // when several slots share a lane.
        let trees_in = self.lanes.clone();
        let mut built_images: Vec<Option<wf_ossim::KernelImage>> = Vec::with_capacity(n);
        for (j, r) in stored.iter().enumerate() {
            let lane = assigned[j];
            // The live wave fed the router each evaluation's virtual
            // duration in candidate order; replay feeds the stored ones
            // so post-resume routing decisions match.
            self.router.observe(lane, r.duration_s);
            if r.crash_phase == Some(Phase::Build) {
                // The live evaluation probed the cache (a miss — a hit
                // implies build_skipped, which cannot build-crash) and
                // then crashed: no image, no lane update, but the probe
                // is counted either way so cache stats replay too.
                built_images.push(None);
                continue;
            }
            let candidate_seed = derive_seed(self.spec.seed, (start + j) as u64);
            let mut build_rng =
                StdRng::seed_from_u64(derive_seed(candidate_seed, workers::STREAM_BUILD));
            let (built, _build_s) = self.target.build(
                &r.config,
                reuses[j].as_ref(),
                trees_in[lane].as_ref(),
                &mut build_rng,
            );
            match built {
                Ok(image) => {
                    self.lanes[lane] = Some(r.config.clone());
                    built_images.push(Some(image));
                }
                Err(_) => built_images.push(None),
            }
        }
        for image in built_images.into_iter().flatten() {
            self.cache.insert(image);
        }
        let (hits_after, misses_after) = self.cache.stats();

        // Charge the clocks from the stored durations.
        let busy_s: f64 = stored.iter().map(|r| r.duration_s).sum();
        let wall_s = stored.iter().map(|r| r.duration_s).fold(0.0, f64::max);
        self.clock.advance(wall_s);
        self.compute.advance(busy_s);
        let finished_at_s = self.clock.now_s();

        // Rebuild the records. Objectives are recomputed through
        // `objective_of` so the running Eq. 4 normalization bounds evolve
        // exactly as they did live.
        let mut records: Vec<Record> = Vec::with_capacity(n);
        for (offset, r) in stored.iter().enumerate() {
            let objective = match (r.metric, r.memory_mb) {
                (Some(metric), Some(memory_mb)) => Some(Self::objective_of(
                    self.spec.objective,
                    &mut self.metric_bounds,
                    &mut self.memory_bounds,
                    metric,
                    memory_mb,
                )),
                _ => None,
            };
            records.push(Record {
                iteration: start + offset,
                config: r.config.clone(),
                objective,
                metric: r.metric,
                memory_mb: r.memory_mb,
                crash_phase: r.crash_phase,
                build_skipped: r.build_skipped,
                duration_s: r.duration_s,
                finished_at_s,
                algo_seconds: r.algo_seconds,
                algo_memory_bytes: r.algo_memory_bytes,
            });
        }

        // Re-tell: rebuilds the algorithm's learned state.
        let wave_obs: Vec<Observation> = records.iter().map(Record::observation).collect();
        {
            let ctx = SearchContext {
                space: self.target.space(),
                encoder: &self.encoder,
                direction,
                policy: &self.spec.policy,
                history: observations,
                iteration: start,
            };
            self.algorithm.observe_batch(&ctx, &wave_obs);
        }
        for record in records {
            self.history.push(record);
        }

        // Re-run the continuous-mode epilogue: the telemetry scan is a
        // pure function of (seed, stored durations, reference), so the
        // same epoch boundaries re-close and the detector, algorithm,
        // and reference end exactly where the live run left them. The
        // events are discarded — the store already holds them.
        let _ = self.drift_epilogue(start);

        self.waves.push(WaveStats {
            wave: wave_index,
            size: n,
            wall_s,
            busy_s,
            cache_hits: hits_after - hits_before,
            cache_misses: misses_after - misses_before,
        });
        Ok(())
    }

    /// The summary of the session so far.
    pub fn summary(&self) -> SessionSummary {
        let best = self.history.best(self.direction());
        SessionSummary {
            best_objective: best.and_then(|r| r.objective),
            best_metric: best.and_then(|r| r.metric),
            best_config: best.map(|r| r.config.clone()),
            iterations: self.history.len(),
            crash_rate: self.history.crash_rate(),
            elapsed_s: self.clock.now_s(),
            compute_s: self.compute.now_s(),
            workers: self.workers(),
            waves: self.waves.len(),
            mean_occupancy: mean_occupancy(&self.waves, self.workers()),
            cache_stats: self.cache.stats(),
        }
    }

    /// The exploration history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Per-wave scheduling metrics, oldest first.
    pub fn waves(&self) -> &[WaveStats] {
        &self.waves
    }

    /// The target under specialization.
    pub fn target(&self) -> &dyn EvalTarget {
        self.target.as_ref()
    }

    /// The target's searchable configuration space.
    pub fn space(&self) -> &ConfigSpace {
        self.target.space()
    }

    /// The target's typed identity (name, app, metric, unit, direction).
    pub fn descriptor(&self) -> &TargetDescriptor {
        self.target.descriptor()
    }

    /// Current virtual wall time.
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// Total virtual compute time across all workers.
    pub fn compute_s(&self) -> f64 {
        self.compute.now_s()
    }

    /// The search algorithm (for post-hoc queries, e.g. §4.1's
    /// high-impact-parameter analysis).
    pub fn algorithm(&self) -> &dyn SearchAlgorithm {
        self.algorithm.as_ref()
    }

    /// Mutable algorithm access (e.g. to extract a trained model for
    /// transfer learning, §3.3).
    pub fn algorithm_mut(&mut self) -> &mut dyn SearchAlgorithm {
        self.algorithm.as_mut()
    }

    /// Maps a (metric, memory) pair onto the session objective. Takes the
    /// running Eq. 4 bounds as explicit fields so callers can hold the
    /// history's observation slice borrowed at the same time.
    fn objective_of(
        objective: Objective,
        metric_bounds: &mut (f64, f64),
        memory_bounds: &mut (f64, f64),
        metric: f64,
        memory_mb: f64,
    ) -> f64 {
        match objective {
            Objective::Metric => metric,
            Objective::MemoryMb => memory_mb,
            Objective::ThroughputMemoryScore => {
                metric_bounds.0 = metric_bounds.0.min(metric);
                metric_bounds.1 = metric_bounds.1.max(metric);
                memory_bounds.0 = memory_bounds.0.min(memory_mb);
                memory_bounds.1 = memory_bounds.1.max(memory_mb);
                let tn = normalized(metric, *metric_bounds);
                let mn = normalized(memory_mb, *memory_bounds);
                tn - mn
            }
        }
    }
}

fn normalized(v: f64, (lo, hi): (f64, f64)) -> f64 {
    if (hi - lo).abs() < 1e-12 {
        0.5
    } else {
        (v - lo) / (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RecordingSink;
    use wf_drift::MeanShift;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::{AppId, DriftScenario, DriftSchedule};
    use wf_search::RandomSearch;

    fn session_with_workers(iters: usize, seed: u64, workers: usize) -> Session {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Nginx);
        Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(iters),
                    time_seconds: None,
                },
                seed,
                workers,
                ..SessionSpec::default()
            },
        )
    }

    fn quick_session(iters: usize, seed: u64) -> Session {
        session_with_workers(iters, seed, 1)
    }

    #[test]
    fn session_runs_to_iteration_budget() {
        let mut s = quick_session(12, 3);
        let summary = s.run();
        assert_eq!(summary.iterations, 12);
        assert!(
            summary.compute_s > 12.0 * 30.0,
            "time charged per iteration"
        );
        assert!(summary.best_metric.is_some());
    }

    #[test]
    fn time_budget_stops_the_session() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Redis);
        let mut s = Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: None,
                    time_seconds: Some(400.0),
                },
                seed: 5,
                workers: 1,
                ..SessionSpec::default()
            },
        );
        let summary = s.run();
        assert!(summary.elapsed_s >= 400.0);
        // ~60 s per iteration: the 400 s budget admits only a handful.
        assert!(summary.iterations <= 12, "{}", summary.iterations);
    }

    #[test]
    fn runtime_sessions_never_build() {
        let mut s = quick_session(8, 7);
        let _ = s.run();
        for r in s.history().records() {
            assert!(r.duration_s < 120.0);
        }
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let mut a = quick_session(10, 11);
        let mut b = quick_session(10, 11);
        let sa = a.run();
        let sb = b.run();
        assert_eq!(sa.best_metric, sb.best_metric);
        assert_eq!(sa.crash_rate, sb.crash_rate);
        assert!((sa.elapsed_s - sb.elapsed_s).abs() < 1e-9);
    }

    #[test]
    fn crashes_are_recorded_with_phase() {
        let mut s = quick_session(40, 13);
        let summary = s.run();
        // Random search over this space crashes roughly a third of the
        // time; with 40 iterations at least one crash is near-certain.
        assert!(summary.crash_rate > 0.05, "rate={}", summary.crash_rate);
        assert!(s
            .history()
            .records()
            .iter()
            .any(|r| r.crash_phase.is_some()));
    }

    #[test]
    fn score_objective_combines_metric_and_memory() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Nginx);
        let mut s = Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                objective: Objective::ThroughputMemoryScore,
                budget: Budget {
                    iterations: Some(15),
                    time_seconds: None,
                },
                seed: 17,
                workers: 1,
                ..SessionSpec::default()
            },
        );
        let summary = s.run();
        let best = summary.best_objective.unwrap();
        assert!((-1.0..=1.0).contains(&best), "score {best} out of range");
        assert_eq!(s.direction(), Direction::Maximize);
    }

    #[test]
    fn compile_target_uses_image_cache() {
        let os = SimOs::unikraft_nginx();
        let app = wf_ossim::unikraft::nginx_app();
        let mut s = Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(6),
                    time_seconds: None,
                },
                seed: 19,
                workers: 1,
                ..SessionSpec::default()
            },
        );
        let _ = s.run();
        let (hits, misses) = s.summary().cache_stats;
        assert!(misses > 0, "fresh configs must build");
        // Unique random configs rarely share fingerprints; hits may be 0.
        assert!(hits + misses >= 6);
    }

    #[test]
    fn waves_fill_the_pool_and_cut_wall_clock() {
        let mut wide = session_with_workers(16, 23, 4);
        let wide_summary = wide.run();
        assert_eq!(wide_summary.iterations, 16);
        assert_eq!(wide_summary.waves, 4, "16 candidates in waves of 4");
        for w in wide.waves() {
            assert_eq!(w.size, 4);
            assert!(w.wall_s <= w.busy_s);
            assert!(w.occupancy(4) > 0.0 && w.occupancy(4) <= 1.0);
        }

        let mut narrow = session_with_workers(16, 23, 1);
        let narrow_summary = narrow.run();
        // Same candidates, same total compute, much less wall time.
        assert_eq!(narrow_summary.iterations, 16);
        assert!((wide_summary.compute_s - narrow_summary.compute_s).abs() < 1e-9);
        assert!(wide_summary.elapsed_s < narrow_summary.elapsed_s / 2.0);
        // Narrow sessions have wall == compute by construction.
        assert!((narrow_summary.elapsed_s - narrow_summary.compute_s).abs() < 1e-9);
    }

    #[test]
    fn tail_wave_is_truncated_to_the_budget() {
        let mut s = session_with_workers(10, 29, 4);
        let summary = s.run();
        assert_eq!(summary.iterations, 10, "budget is exact, not rounded up");
        let sizes: Vec<usize> = s.waves().iter().map(|w| w.size).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert!(summary.mean_occupancy > 0.0 && summary.mean_occupancy <= 1.0);
    }

    #[test]
    fn step_returns_the_last_record_of_a_wave() {
        let mut s = session_with_workers(8, 31, 4);
        let r = s.step();
        assert_eq!(r.iteration, 3, "wave of 4 → last record is iteration 3");
        assert_eq!(s.history().len(), 4);
    }

    /// Everything the resume guarantee covers, bit-exact.
    fn trace(s: &Session) -> Vec<(u64, Option<u64>, bool, bool, u64, u64)> {
        s.history()
            .records()
            .iter()
            .map(|r| {
                (
                    r.config.fingerprint(),
                    r.metric.map(f64::to_bits),
                    r.crashed(),
                    r.build_skipped,
                    r.duration_s.to_bits(),
                    r.finished_at_s.to_bits(),
                )
            })
            .collect()
    }

    fn stored_prefix(s: &Session) -> (Vec<Record>, Vec<usize>) {
        (
            s.history().records().to_vec(),
            s.waves().iter().map(|w| w.size).collect(),
        )
    }

    #[test]
    fn replay_then_continue_matches_the_uninterrupted_run() {
        for workers in [1usize, 3] {
            let mut full = session_with_workers(10, 41, workers);
            let full_summary = full.run();

            let mut interrupted = session_with_workers(10, 41, workers);
            interrupted.step_wave();
            interrupted.step_wave();
            let (stored, wave_sizes) = stored_prefix(&interrupted);
            drop(interrupted); // the "crash"

            let mut resumed = session_with_workers(10, 41, workers);
            resumed.replay(&stored, &wave_sizes).expect("replay");
            let resumed_summary = resumed.run();

            assert_eq!(trace(&full), trace(&resumed), "workers={workers}");
            assert_eq!(
                full_summary.best_config.as_ref().map(|c| c.fingerprint()),
                resumed_summary
                    .best_config
                    .as_ref()
                    .map(|c| c.fingerprint())
            );
            assert_eq!(
                full_summary.compute_s.to_bits(),
                resumed_summary.compute_s.to_bits()
            );
            assert_eq!(
                full_summary.elapsed_s.to_bits(),
                resumed_summary.elapsed_s.to_bits()
            );
        }
    }

    #[test]
    fn replay_rebuilds_cache_and_lane_state_on_compile_targets() {
        // Compile targets are where replay earns its keep: future
        // build_skipped flags and incremental-rebuild durations depend on
        // the image cache and per-lane working trees, which replay must
        // reconstruct without re-benchmarking anything.
        let make = || {
            Session::new(
                SimOs::unikraft_nginx(),
                wf_ossim::unikraft::nginx_app(),
                Box::new(RandomSearch::new()),
                SessionSpec {
                    budget: Budget {
                        iterations: Some(8),
                        time_seconds: None,
                    },
                    seed: 23,
                    workers: 2,
                    ..SessionSpec::default()
                },
            )
        };
        let mut full = make();
        let _ = full.run();

        let mut interrupted = make();
        interrupted.step_wave();
        interrupted.step_wave();
        let (stored, wave_sizes) = stored_prefix(&interrupted);

        let mut resumed = make();
        resumed.replay(&stored, &wave_sizes).expect("replay");
        let _ = resumed.run();
        assert_eq!(trace(&full), trace(&resumed));
    }

    /// A continuous step-change session: shift early enough that a
    /// 60-iteration budget comfortably spans both phases.
    fn drift_session(iters: usize, seed: u64, workers: usize) -> Session {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 56);
        let app = App::by_id(AppId::Nginx);
        let schedule = DriftSchedule::scenario(DriftScenario::Step, &os, &app, 900.0);
        let mut s = Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(iters),
                    time_seconds: None,
                },
                seed,
                workers,
                ..SessionSpec::default()
            },
        );
        s.enable_drift(DriftConfig {
            schedule,
            detector: Box::new(MeanShift::new(6, 0.15)),
            min_epoch: 8,
            transfer: false,
        });
        s
    }

    #[test]
    fn continuous_session_detects_the_step_and_reopens() {
        let mut s = drift_session(60, 7, 2);
        let mut sink = RecordingSink::new();
        let _ = s.run_with(&mut sink);
        assert!(s.epoch() >= 1, "the step must close epoch 0");

        let detections: Vec<(usize, usize)> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::DriftDetected {
                    epoch,
                    at_iteration,
                    ..
                } => Some((*epoch, *at_iteration)),
                _ => None,
            })
            .collect();
        assert!(!detections.is_empty());
        assert_eq!(detections[0].0, 0, "the first detection closes epoch 0");
        assert!(detections[0].1 >= 8, "min_epoch gates the verdict");

        let epochs: Vec<usize> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::EpochStarted { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        assert!(epochs.len() >= 2, "epoch 0 plus at least one reopening");
        assert_eq!(epochs[0], 0);
        assert_eq!(epochs[1], 1);
    }

    #[test]
    fn drift_detection_is_worker_count_invariant() {
        // The drift axis is the compute clock, so the *first* detection
        // lands on the same candidate at the same virtual time no matter
        // how the waves were scheduled (epoch boundaries align to wave
        // boundaries, so later epochs may legitimately differ).
        let first = |workers: usize| -> (usize, u64) {
            let mut s = drift_session(60, 7, workers);
            let mut sink = RecordingSink::new();
            let _ = s.run_with(&mut sink);
            sink.events
                .iter()
                .find_map(|e| match e {
                    SessionEvent::DriftDetected {
                        at_iteration, at_s, ..
                    } => Some((*at_iteration, at_s.to_bits())),
                    _ => None,
                })
                .expect("a detection")
        };
        let one = first(1);
        assert_eq!(one, first(2));
        assert_eq!(one, first(4));
    }

    #[test]
    fn continuous_replay_then_continue_matches_uninterrupted() {
        // The resume guarantee across an epoch boundary: interrupt after
        // the drift fired, replay, continue — bit-exact.
        let mut full = drift_session(60, 11, 2);
        let _ = full.run();
        assert!(full.epoch() >= 1);

        let mut interrupted = drift_session(60, 11, 2);
        // Step until the epoch has advanced, then a couple more waves.
        while interrupted.epoch() == 0 {
            interrupted.step_wave();
        }
        interrupted.step_wave();
        let (stored, wave_sizes) = stored_prefix(&interrupted);
        drop(interrupted);

        let mut resumed = drift_session(60, 11, 2);
        resumed.replay(&stored, &wave_sizes).expect("replay");
        assert!(resumed.epoch() >= 1, "replay re-detects the drift");
        let _ = resumed.run();

        assert_eq!(trace(&full), trace(&resumed));
        assert_eq!(full.epoch(), resumed.epoch());
        assert_eq!(full.epoch_start(), resumed.epoch_start());
    }

    #[test]
    fn replay_rejects_a_diverging_store() {
        let mut donor = quick_session(6, 1);
        let _ = donor.run();
        let (stored, wave_sizes) = stored_prefix(&donor);

        // Wrong seed → the re-asked candidates differ at iteration 0.
        let mut wrong_seed = quick_session(6, 2);
        assert_eq!(
            wrong_seed.replay(&stored, &wave_sizes).unwrap_err(),
            ReplayError::ConfigMismatch { iteration: 0 }
        );

        // Replay needs a fresh session.
        let mut used = quick_session(6, 1);
        used.step_wave();
        assert!(matches!(
            used.replay(&stored, &wave_sizes).unwrap_err(),
            ReplayError::NotFresh { iterations: 1 }
        ));

        // Wave sizes must cover the records.
        let mut fresh = quick_session(6, 1);
        assert!(matches!(
            fresh.replay(&stored, &wave_sizes[1..]).unwrap_err(),
            ReplayError::BadWaveShape { .. }
        ));

        // A wave wider than the pool is rejected (workers cannot change).
        let mut narrow = quick_session(6, 1);
        let merged: Vec<usize> = vec![stored.len()];
        assert!(matches!(
            narrow.replay(&stored, &merged).unwrap_err(),
            ReplayError::WaveTooWide { .. }
        ));
    }
}
