//! The core exploration loop (§3.1).
//!
//! "1) build and boot an OS image based on a given configuration in a VM;
//! 2) benchmark the target application running on that OS image; and
//! 3) determine the next configuration to consider" — iterated until the
//! iteration or time budget runs out, after which the best configuration
//! found is returned.

use crate::cache::ImageCache;
use crate::clock::VirtualClock;
use crate::history::{History, Record};
use crate::workers;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use wf_configspace::{Configuration, Encoder};
use wf_jobfile::{Budget, Direction};
use wf_ossim::{App, SimOs};
use wf_search::{SamplePolicy, SearchAlgorithm, SearchContext};

/// What the session optimizes (the user-provided metric of Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// The application's primary metric (throughput, latency, Mop/s).
    Metric,
    /// Resident memory in MB (Fig. 10).
    MemoryMb,
    /// Eq. 4: min–max normalized throughput minus normalized memory
    /// (Fig. 11, Table 4). Always maximized.
    ThroughputMemoryScore,
}

/// Session parameters.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Objective to optimize.
    pub objective: Objective,
    /// Optimization direction for [`Objective::Metric`] /
    /// [`Objective::MemoryMb`]; ignored for the score (always maximized).
    pub direction: Direction,
    /// Candidate sampling policy (§3.5 focus).
    pub policy: SamplePolicy,
    /// Iteration / virtual-time budget.
    pub budget: Budget,
    /// Benchmark repetitions per configuration.
    pub repetitions: usize,
    /// RNG seed for the whole session.
    pub seed: u64,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            objective: Objective::Metric,
            direction: Direction::Maximize,
            policy: SamplePolicy::Uniform,
            budget: Budget {
                iterations: Some(100),
                time_seconds: None,
            },
            repetitions: 1,
            seed: 1,
        }
    }
}

/// Summary returned when a session completes.
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// Best objective value found (None if everything crashed).
    pub best_objective: Option<f64>,
    /// Best raw metric.
    pub best_metric: Option<f64>,
    /// The best configuration.
    pub best_config: Option<Configuration>,
    /// Iterations executed.
    pub iterations: usize,
    /// Overall crash rate.
    pub crash_rate: f64,
    /// Virtual seconds consumed.
    pub elapsed_s: f64,
    /// Image-cache (hits, misses).
    pub cache_stats: (u64, u64),
}

/// A running specialization session: one OS target, one application, one
/// algorithm, one budget.
pub struct Session {
    os: SimOs,
    app: App,
    algorithm: Box<dyn SearchAlgorithm>,
    spec: SessionSpec,
    encoder: Encoder,
    clock: VirtualClock,
    cache: ImageCache,
    history: History,
    rng: StdRng,
    /// The configuration most recently built in the "working tree"
    /// (enables incremental-rebuild timing).
    last_built: Option<Configuration>,
    /// Running bounds for the Eq. 4 score.
    metric_bounds: (f64, f64),
    memory_bounds: (f64, f64),
}

impl Session {
    /// Creates a session.
    pub fn new(
        os: SimOs,
        app: App,
        algorithm: Box<dyn SearchAlgorithm>,
        spec: SessionSpec,
    ) -> Self {
        let encoder = Encoder::new(&os.space);
        let rng = StdRng::seed_from_u64(spec.seed);
        Session {
            os,
            app,
            algorithm,
            spec,
            encoder,
            clock: VirtualClock::new(),
            cache: ImageCache::new(32),
            history: History::new(),
            rng,
            last_built: None,
            metric_bounds: (f64::MAX, f64::MIN),
            memory_bounds: (f64::MAX, f64::MIN),
        }
    }

    /// The effective optimization direction (the score is always
    /// maximized).
    pub fn direction(&self) -> Direction {
        match self.spec.objective {
            Objective::ThroughputMemoryScore => Direction::Maximize,
            _ => self.spec.direction,
        }
    }

    /// Whether the budget is exhausted.
    pub fn done(&self) -> bool {
        if let Some(max_iters) = self.spec.budget.iterations {
            if self.history.len() >= max_iters {
                return true;
            }
        }
        if let Some(max_s) = self.spec.budget.time_seconds {
            if self.clock.now_s() >= max_s {
                return true;
            }
        }
        false
    }

    /// Runs one iteration of the core loop: propose → build/boot/bench →
    /// observe.
    pub fn step(&mut self) -> &Record {
        let iteration = self.history.len();
        let observations = self.history.observations();
        let direction = self.direction();
        let t_algo = Instant::now();
        let config = {
            let ctx = SearchContext {
                space: &self.os.space,
                encoder: &self.encoder,
                direction,
                policy: &self.spec.policy,
                history: &observations,
                iteration,
            };
            self.algorithm.propose(&ctx, &mut self.rng)
        };
        let mut algo_seconds = t_algo.elapsed().as_secs_f64();

        // Build (or fetch from the image cache), boot, benchmark.
        let fingerprint = self.os.image_fingerprint(&config);
        let cached = self.cache.get(fingerprint);
        let build_skipped = cached.is_some();
        let (built, build_s) = self.os.build(
            &config,
            cached.as_ref(),
            self.last_built.as_ref(),
            &mut self.rng,
        );

        let mut record = Record {
            iteration,
            config: config.clone(),
            objective: None,
            metric: None,
            memory_mb: None,
            crash_phase: None,
            build_skipped,
            duration_s: build_s,
            finished_at_s: 0.0,
            algo_seconds: 0.0,
            algo_memory_bytes: 0,
        };

        match built {
            Err(crash) => {
                record.crash_phase = Some(crash.phase);
            }
            Ok(image) => {
                self.cache.insert(image.clone());
                self.last_built = Some(config.clone());
                let (booted, boot_s) = self.os.boot(&image, &config, &mut self.rng);
                record.duration_s += boot_s;
                match booted {
                    Err(crash) => record.crash_phase = Some(crash.phase),
                    Ok(()) => {
                        let outcomes = workers::run_repetitions(
                            &self.os,
                            &self.app,
                            &image,
                            &config,
                            self.spec.repetitions,
                            self.spec.seed.wrapping_add(iteration as u64 * 1013),
                        );
                        let (result, bench_s) = workers::aggregate(outcomes);
                        record.duration_s += bench_s;
                        match result {
                            Err(crash) => record.crash_phase = Some(crash.phase),
                            Ok(r) => {
                                record.metric = Some(r.metric);
                                record.memory_mb = Some(r.memory_mb);
                                record.objective = Some(self.objective_of(r.metric, r.memory_mb));
                            }
                        }
                    }
                }
            }
        }

        self.clock.advance(record.duration_s);
        record.finished_at_s = self.clock.now_s();

        // Let the algorithm learn from the outcome.
        let obs = record.observation();
        let t_obs = Instant::now();
        {
            let ctx = SearchContext {
                space: &self.os.space,
                encoder: &self.encoder,
                direction,
                policy: &self.spec.policy,
                history: &observations,
                iteration,
            };
            self.algorithm.observe(&ctx, &obs);
        }
        algo_seconds += t_obs.elapsed().as_secs_f64();
        let stats = self.algorithm.stats();
        record.algo_seconds = algo_seconds.max(stats.last_update_seconds);
        record.algo_memory_bytes = stats.memory_bytes;

        self.history.push(record);
        self.history.records().last().expect("just pushed")
    }

    /// Runs until the budget is exhausted and summarizes.
    pub fn run(&mut self) -> SessionSummary {
        while !self.done() {
            self.step();
        }
        self.summary()
    }

    /// The summary of the session so far.
    pub fn summary(&self) -> SessionSummary {
        let best = self.history.best(self.direction());
        SessionSummary {
            best_objective: best.and_then(|r| r.objective),
            best_metric: best.and_then(|r| r.metric),
            best_config: best.map(|r| r.config.clone()),
            iterations: self.history.len(),
            crash_rate: self.history.crash_rate(),
            elapsed_s: self.clock.now_s(),
            cache_stats: self.cache.stats(),
        }
    }

    /// The exploration history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The OS target under specialization.
    pub fn os(&self) -> &SimOs {
        &self.os
    }

    /// The application under test.
    pub fn app(&self) -> &App {
        &self.app
    }

    /// Current virtual time.
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// The search algorithm (for post-hoc queries, e.g. §4.1's
    /// high-impact-parameter analysis).
    pub fn algorithm(&self) -> &dyn SearchAlgorithm {
        self.algorithm.as_ref()
    }

    /// Mutable algorithm access (e.g. to extract a trained model for
    /// transfer learning, §3.3).
    pub fn algorithm_mut(&mut self) -> &mut dyn SearchAlgorithm {
        self.algorithm.as_mut()
    }

    /// Maps a (metric, memory) pair onto the session objective.
    fn objective_of(&mut self, metric: f64, memory_mb: f64) -> f64 {
        match self.spec.objective {
            Objective::Metric => metric,
            Objective::MemoryMb => memory_mb,
            Objective::ThroughputMemoryScore => {
                self.metric_bounds.0 = self.metric_bounds.0.min(metric);
                self.metric_bounds.1 = self.metric_bounds.1.max(metric);
                self.memory_bounds.0 = self.memory_bounds.0.min(memory_mb);
                self.memory_bounds.1 = self.memory_bounds.1.max(memory_mb);
                let tn = normalized(metric, self.metric_bounds);
                let mn = normalized(memory_mb, self.memory_bounds);
                tn - mn
            }
        }
    }
}

fn normalized(v: f64, (lo, hi): (f64, f64)) -> f64 {
    if (hi - lo).abs() < 1e-12 {
        0.5
    } else {
        (v - lo) / (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::AppId;
    use wf_search::RandomSearch;

    fn quick_session(iters: usize, seed: u64) -> Session {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Nginx);
        Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(iters),
                    time_seconds: None,
                },
                seed,
                ..SessionSpec::default()
            },
        )
    }

    #[test]
    fn session_runs_to_iteration_budget() {
        let mut s = quick_session(12, 3);
        let summary = s.run();
        assert_eq!(summary.iterations, 12);
        assert!(
            summary.elapsed_s > 12.0 * 30.0,
            "time charged per iteration"
        );
        assert!(summary.best_metric.is_some());
    }

    #[test]
    fn time_budget_stops_the_session() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Redis);
        let mut s = Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: None,
                    time_seconds: Some(400.0),
                },
                seed: 5,
                ..SessionSpec::default()
            },
        );
        let summary = s.run();
        assert!(summary.elapsed_s >= 400.0);
        // ~60 s per iteration: the 400 s budget admits only a handful.
        assert!(summary.iterations <= 12, "{}", summary.iterations);
    }

    #[test]
    fn runtime_sessions_never_build() {
        let mut s = quick_session(8, 7);
        let summary = s.run();
        for r in s.history().records() {
            assert!(r.duration_s < 120.0);
        }
        // No compile stage: every "build" is the fixed image.
        assert_eq!(summary.cache_stats.1, summary.cache_stats.1);
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let mut a = quick_session(10, 11);
        let mut b = quick_session(10, 11);
        let sa = a.run();
        let sb = b.run();
        assert_eq!(sa.best_metric, sb.best_metric);
        assert_eq!(sa.crash_rate, sb.crash_rate);
        assert!((sa.elapsed_s - sb.elapsed_s).abs() < 1e-9);
    }

    #[test]
    fn crashes_are_recorded_with_phase() {
        let mut s = quick_session(40, 13);
        let summary = s.run();
        // Random search over this space crashes roughly a third of the
        // time; with 40 iterations at least one crash is near-certain.
        assert!(summary.crash_rate > 0.05, "rate={}", summary.crash_rate);
        assert!(s
            .history()
            .records()
            .iter()
            .any(|r| r.crash_phase.is_some()));
    }

    #[test]
    fn score_objective_combines_metric_and_memory() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Nginx);
        let mut s = Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                objective: Objective::ThroughputMemoryScore,
                budget: Budget {
                    iterations: Some(15),
                    time_seconds: None,
                },
                seed: 17,
                ..SessionSpec::default()
            },
        );
        let summary = s.run();
        let best = summary.best_objective.unwrap();
        assert!((-1.0..=1.0).contains(&best), "score {best} out of range");
        assert_eq!(s.direction(), Direction::Maximize);
    }

    #[test]
    fn compile_target_uses_image_cache() {
        let os = SimOs::unikraft_nginx();
        let app = wf_ossim::unikraft::nginx_app();
        let mut s = Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(6),
                    time_seconds: None,
                },
                seed: 19,
                ..SessionSpec::default()
            },
        );
        let _ = s.run();
        let (hits, misses) = s.summary().cache_stats;
        assert!(misses > 0, "fresh configs must build");
        // Unique random configs rarely share fingerprints; hits may be 0.
        assert!(hits + misses >= 6);
    }
}
