//! `wfd`: the multi-tenant session daemon.
//!
//! The paper's sessions are one-shot processes; the service the ROADMAP
//! aims at runs many specialization sessions for many tenants at once.
//! This module is that supervisor: a Unix-socket API (reusing the
//! length-prefixed JSON framing of [`crate::remote`]) over a **state
//! root** directory, with one thread and one [`crate::SessionStore`]
//! directory per session — sessions share nothing but the target
//! registry, so N concurrent sessions stay bit-identical to N sequential
//! `wfctl run`s.
//!
//! ```text
//!   state root/
//!   ├── wfd.sock                     the daemon's listening socket
//!   └── sessions/
//!       ├── 0001-nginx-tuning/       one ordinary session store each:
//!       │   ├── manifest.yaml        resolved job
//!       │   └── events.jsonl         hash-chained event ledger
//!       └── 0002-redis-latency/
//! ```
//!
//! One request frame per connection; the reply is one frame, except
//! `watch`, which turns the connection into a live [`SessionEvent`]
//! stream (each event teed to the socket by the session's supervisor
//! while [`crate::JsonlSink`] persists it) closed by an `end` frame.
//!
//! | op | request | reply |
//! |---|---|---|
//! | `submit` | `{op, job: "<yaml>"}` | `{ok, id, name, dir}` |
//! | `sessions` | `{op}` | `{ok, sessions: [{id, name, dir, status, iterations, best, error?}]}` |
//! | `watch` | `{op, id}` | `{ok, …}` then event frames, then `{stream: "end", status}` |
//! | `stop` | `{op, id}` | `{ok, status}` — graceful: the session parks at the next wave boundary, resumable |
//! | `shutdown` | `{op}` | `{ok}` — stop every session at its boundary, then exit |
//! | `ping` | `{op}` | `{ok, root}` |
//!
//! Session *construction* needs the target registry, which lives above
//! this crate — the daemon therefore takes a [`SessionLauncher`] (the
//! `wfd`/`wfctl daemon` binaries inject one built on
//! `wayfinder_core::SessionBuilder`) and supervises: per-session thread,
//! status registry, live-event broadcast, panic containment (a panicking
//! launcher fails its session, never the daemon), and poison-recovering
//! locks throughout ([`lock_recover`]).

use crate::events::{EventSink, SessionEvent};
use crate::remote::{read_frame, write_frame};
use crate::store::{event_json, JsonValue};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wf_jobfile::Job;

/// The daemon's socket file name inside the state root.
pub const DAEMON_SOCKET: &str = "wfd.sock";
/// The per-session store parent directory inside the state root.
pub const SESSIONS_DIR: &str = "sessions";

/// How long a connection handler waits for the request frame before
/// giving up on a silent client.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);
/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

pub use crate::sync::lock_recover;

// ---------------------------------------------------------------------------
// SocketSink: one live event stream.
// ---------------------------------------------------------------------------

/// An [`EventSink`] forwarding every event as one length-prefixed JSON
/// frame over a Unix stream — the live half of the daemon's
/// `Tee(JsonlSink, SocketSink)`. Like [`crate::JsonlSink`], I/O errors
/// are sticky: the first failed write marks the sink dead and later
/// events are dropped (a watcher hanging up must not fail the session).
///
/// # Examples
///
/// ```
/// use std::os::unix::net::UnixStream;
/// use wf_platform::daemon::SocketSink;
/// use wf_platform::remote::read_frame;
/// use wf_platform::{EventSink, SessionEvent};
///
/// let (a, mut b) = UnixStream::pair().unwrap();
/// let mut sink = SocketSink::new(a);
/// sink.on_event(&SessionEvent::CheckpointWritten { iterations: 3 });
/// drop(sink);
/// let frame = read_frame(&mut b).unwrap().unwrap();
/// assert_eq!(frame.get("event").unwrap().as_str(), Some("checkpoint"));
/// assert_eq!(read_frame(&mut b).unwrap(), None); // EOF after drop
/// ```
pub struct SocketSink {
    stream: UnixStream,
    dead: bool,
}

impl SocketSink {
    /// Wraps `stream`; every event becomes one frame on it.
    pub fn new(stream: UnixStream) -> SocketSink {
        SocketSink {
            stream,
            dead: false,
        }
    }

    /// Whether a write has failed (the peer hung up); dead sinks drop
    /// all further events.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Sends a raw protocol frame (the daemon uses this for the final
    /// `end` frame, which is not a [`SessionEvent`]).
    pub fn send(&mut self, value: &JsonValue) {
        if self.dead {
            return;
        }
        if write_frame(&mut self.stream, value).is_err() {
            self.dead = true;
        }
    }
}

impl EventSink for SocketSink {
    fn on_event(&mut self, event: &SessionEvent) {
        let frame = event_json(event);
        self.send(&frame);
    }
}

// ---------------------------------------------------------------------------
// Session supervision.
// ---------------------------------------------------------------------------

/// Cooperative lifecycle control for one supervised session: the
/// launcher's wave loop checks [`SessionControl::stop_requested`] at
/// every wave boundary (via
/// [`crate::Session::run_with_until`]).
#[derive(Debug, Default)]
pub struct SessionControl {
    stop: AtomicBool,
}

impl SessionControl {
    /// Asks the session to park at its next wave boundary.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// Where a supervised session stands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// The session thread is driving waves.
    Running,
    /// Budget exhausted; the store holds a `session_finished` line.
    Finished,
    /// Parked at a wave boundary by a stop request; the store is
    /// resumable with zero lost waves.
    Stopped,
    /// The launcher returned an error (or panicked).
    Failed(String),
}

impl SessionStatus {
    /// The protocol spelling (`running | finished | stopped | failed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SessionStatus::Running => "running",
            SessionStatus::Finished => "finished",
            SessionStatus::Stopped => "stopped",
            SessionStatus::Failed(_) => "failed",
        }
    }

    /// Whether the session thread has exited.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, SessionStatus::Running)
    }
}

struct EntryInner {
    status: SessionStatus,
    best: Option<f64>,
    watchers: Vec<SocketSink>,
}

/// One supervised session: identity, store directory, live status, and
/// the watcher streams its events broadcast to.
pub struct SessionEntry {
    /// Daemon-assigned id (1-based, dense).
    pub id: u64,
    /// The job's name (slugged into the directory name).
    pub name: String,
    /// The session's store directory under the state root.
    pub dir: PathBuf,
    iterations: AtomicUsize,
    control: SessionControl,
    inner: Mutex<EntryInner>,
}

impl SessionEntry {
    fn new(id: u64, name: String, dir: PathBuf) -> SessionEntry {
        SessionEntry {
            id,
            name,
            dir,
            iterations: AtomicUsize::new(0),
            control: SessionControl::default(),
            inner: Mutex::new(EntryInner {
                status: SessionStatus::Running,
                best: None,
                watchers: Vec::new(),
            }),
        }
    }

    /// The session's lifecycle control.
    pub fn control(&self) -> &SessionControl {
        &self.control
    }

    /// Current status snapshot.
    pub fn status(&self) -> SessionStatus {
        lock_recover(&self.inner).status.clone()
    }

    /// Evaluations completed so far.
    pub fn iterations(&self) -> usize {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Best objective seen so far.
    pub fn best(&self) -> Option<f64> {
        lock_recover(&self.inner).best
    }

    /// Attaches a watcher stream. If the session already ended, the
    /// `end` frame is sent immediately and the stream dropped.
    pub fn add_watcher(&self, stream: UnixStream) {
        let mut sink = SocketSink::new(stream);
        let mut inner = lock_recover(&self.inner);
        if inner.status.is_terminal() {
            sink.send(&end_frame(&inner.status));
        } else {
            inner.watchers.push(sink);
        }
    }

    /// Broadcasts one event to every live watcher and folds it into the
    /// progress counters.
    fn broadcast(&self, event: &SessionEvent) {
        match event {
            SessionEvent::CandidateEvaluated(r) => {
                self.iterations.store(r.iteration + 1, Ordering::Relaxed);
            }
            SessionEvent::NewBest { objective, .. } => {
                lock_recover(&self.inner).best = Some(*objective);
            }
            _ => {}
        }
        let mut inner = lock_recover(&self.inner);
        for watcher in &mut inner.watchers {
            watcher.on_event(event);
        }
        inner.watchers.retain(|w| !w.is_dead());
    }

    /// Marks the session terminal and closes every watcher with an
    /// `end` frame.
    fn finish(&self, status: SessionStatus) {
        let mut inner = lock_recover(&self.inner);
        inner.status = status;
        let frame = end_frame(&inner.status);
        for mut watcher in inner.watchers.drain(..) {
            watcher.send(&frame);
        }
    }

    fn describe(&self) -> JsonValue {
        let inner = lock_recover(&self.inner);
        let mut pairs = vec![
            ("id".to_string(), JsonValue::Int(self.id as i64)),
            ("name".to_string(), JsonValue::Str(self.name.clone())),
            (
                "dir".to_string(),
                JsonValue::Str(self.dir.display().to_string()),
            ),
            (
                "status".to_string(),
                JsonValue::Str(inner.status.as_str().into()),
            ),
            (
                "iterations".to_string(),
                JsonValue::Int(self.iterations() as i64),
            ),
            (
                "best".to_string(),
                match inner.best {
                    Some(v) if v.is_finite() => JsonValue::Num(v),
                    _ => JsonValue::Null,
                },
            ),
        ];
        if let SessionStatus::Failed(message) = &inner.status {
            pairs.push(("error".to_string(), JsonValue::Str(message.clone())));
        }
        JsonValue::Obj(pairs)
    }
}

fn end_frame(status: &SessionStatus) -> JsonValue {
    let mut pairs = vec![
        ("stream".to_string(), JsonValue::Str("end".into())),
        ("status".to_string(), JsonValue::Str(status.as_str().into())),
    ];
    if let SessionStatus::Failed(message) = status {
        pairs.push(("error".to_string(), JsonValue::Str(message.clone())));
    }
    JsonValue::Obj(pairs)
}

/// The session-thread sink: broadcasts to watchers and updates the
/// entry's progress counters. The launcher tees this with its store's
/// [`crate::JsonlSink`].
struct EntrySink {
    entry: Arc<SessionEntry>,
}

impl EventSink for EntrySink {
    fn on_event(&mut self, event: &SessionEvent) {
        self.entry.broadcast(event);
    }
}

/// Builds and drives one session for the daemon. Implementations live
/// above this crate (they need the target registry): build the session
/// from `job`, create its store at `dir`, and run it with every event
/// teed through `sink`, checking `control` at wave boundaries. Return
/// `Ok(true)` on budget exhaustion, `Ok(false)` when parked by a stop
/// request, `Err` on any build/store failure.
pub trait SessionLauncher: Send + Sync {
    /// Runs one session to completion (or to a requested stop).
    fn launch(
        &self,
        job: &Job,
        dir: &Path,
        sink: &mut dyn EventSink,
        control: &SessionControl,
    ) -> Result<bool, String>;
}

impl<F> SessionLauncher for F
where
    F: Fn(&Job, &Path, &mut dyn EventSink, &SessionControl) -> Result<bool, String> + Send + Sync,
{
    fn launch(
        &self,
        job: &Job,
        dir: &Path,
        sink: &mut dyn EventSink,
        control: &SessionControl,
    ) -> Result<bool, String> {
        self(job, dir, sink, control)
    }
}

// ---------------------------------------------------------------------------
// The daemon.
// ---------------------------------------------------------------------------

struct DaemonState {
    root: PathBuf,
    sessions: Mutex<Vec<Arc<SessionEntry>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    launcher: Arc<dyn SessionLauncher>,
}

/// The `wfd` daemon: a Unix-socket listener over a state root, one
/// supervised thread per submitted session.
pub struct Daemon {
    listener: UnixListener,
    socket_path: PathBuf,
    state: Arc<DaemonState>,
}

impl Daemon {
    /// Creates the state root (and its `sessions/` directory), binds the
    /// socket at `<root>/wfd.sock` (replacing a stale socket file from a
    /// dead daemon), and returns the daemon ready to [`Daemon::run`].
    pub fn bind(root: impl AsRef<Path>, launcher: Arc<dyn SessionLauncher>) -> io::Result<Daemon> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join(SESSIONS_DIR))?;
        let socket_path = root.join(DAEMON_SOCKET);
        if socket_path.exists() {
            // A live daemon answers a ping; a dead one left a stale file.
            if let Ok(mut probe) = UnixStream::connect(&socket_path) {
                send_best_effort(&mut probe, &request("ping"));
                if matches!(read_frame(&mut probe), Ok(Some(_))) {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("a daemon is already serving {}", socket_path.display()),
                    ));
                }
            }
            std::fs::remove_file(&socket_path)?;
        }
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        Ok(Daemon {
            listener,
            socket_path,
            state: Arc::new(DaemonState {
                root,
                sessions: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
                launcher,
            }),
        })
    }

    /// The state root this daemon serves.
    pub fn root(&self) -> &Path {
        &self.state.root
    }

    /// The socket clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// Serves requests until `stop` is set (the binary's SIGINT flag) or
    /// a `shutdown` request arrives, then parks every running session at
    /// its next wave boundary, joins the session threads, and removes
    /// the socket. Stores of parked sessions resume with `wfctl resume`.
    pub fn run(&self, stop: &AtomicBool) -> io::Result<()> {
        while !stop.load(Ordering::SeqCst) && !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let _ = std::thread::Builder::new()
                        .name("wfd-conn".into())
                        .spawn(move || handle_connection(&state, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Graceful shutdown: park sessions at their wave boundaries.
        for entry in lock_recover(&self.state.sessions).iter() {
            entry.control().request_stop();
        }
        let threads: Vec<_> = lock_recover(&self.state.threads).drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
        Ok(())
    }
}

/// A session id that is unambiguous in directory listings: zero-padded
/// id plus the job name reduced to a filesystem-safe slug.
fn session_dir_name(id: u64, name: &str) -> String {
    let slug: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    let slug = slug.trim_matches('-');
    if slug.is_empty() {
        format!("{id:04}")
    } else {
        format!("{id:04}-{slug}")
    }
}

fn request(op: &str) -> JsonValue {
    JsonValue::Obj(vec![("op".to_string(), JsonValue::Str(op.into()))])
}

/// Sends a frame to a client without propagating transport errors: a
/// client that hangs up before its reply lands only loses its own
/// answer, and the daemon's session state is untouched either way.
fn send_best_effort(stream: &mut UnixStream, frame: &JsonValue) {
    // wf-lint: allow(swallowed-io-error, reason = "replies to daemon clients are best-effort by design: the peer may have disconnected, and dropping its reply affects no one else's session")
    let _ = write_frame(stream, frame);
}

fn ok_reply(mut rest: Vec<(String, JsonValue)>) -> JsonValue {
    let mut pairs = vec![("ok".to_string(), JsonValue::Bool(true))];
    pairs.append(&mut rest);
    JsonValue::Obj(pairs)
}

fn err_reply(message: impl Into<String>) -> JsonValue {
    JsonValue::Obj(vec![
        ("ok".to_string(), JsonValue::Bool(false)),
        ("error".to_string(), JsonValue::Str(message.into())),
    ])
}

fn handle_connection(state: &Arc<DaemonState>, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let req = match read_frame(&mut stream) {
        Ok(Some(req)) => req,
        _ => return, // silent or vanished client
    };
    let _ = stream.set_read_timeout(None);
    let op = req.get("op").and_then(JsonValue::as_str).unwrap_or("");
    match op {
        "ping" => {
            let reply = ok_reply(vec![(
                "root".to_string(),
                JsonValue::Str(state.root.display().to_string()),
            )]);
            send_best_effort(&mut stream, &reply);
        }
        "submit" => {
            let reply = match req.get("job").and_then(JsonValue::as_str) {
                None => err_reply("submit needs a job field (the job-file text)"),
                Some(yaml) => match submit(state, yaml) {
                    Ok(entry) => ok_reply(vec![
                        ("id".to_string(), JsonValue::Int(entry.id as i64)),
                        ("name".to_string(), JsonValue::Str(entry.name.clone())),
                        (
                            "dir".to_string(),
                            JsonValue::Str(entry.dir.display().to_string()),
                        ),
                    ]),
                    Err(message) => err_reply(message),
                },
            };
            send_best_effort(&mut stream, &reply);
        }
        "sessions" => {
            let sessions: Vec<JsonValue> = lock_recover(&state.sessions)
                .iter()
                .map(|e| e.describe())
                .collect();
            let reply = ok_reply(vec![("sessions".to_string(), JsonValue::Arr(sessions))]);
            send_best_effort(&mut stream, &reply);
        }
        "watch" => match find_session(state, &req) {
            Ok(entry) => {
                let ack = ok_reply(vec![
                    ("id".to_string(), JsonValue::Int(entry.id as i64)),
                    (
                        "status".to_string(),
                        JsonValue::Str(entry.status().as_str().into()),
                    ),
                ]);
                if write_frame(&mut stream, &ack).is_ok() {
                    entry.add_watcher(stream);
                }
            }
            Err(message) => {
                send_best_effort(&mut stream, &err_reply(message));
            }
        },
        "stop" => {
            let reply = match find_session(state, &req) {
                Ok(entry) => {
                    entry.control().request_stop();
                    ok_reply(vec![
                        ("id".to_string(), JsonValue::Int(entry.id as i64)),
                        (
                            "status".to_string(),
                            JsonValue::Str(entry.status().as_str().into()),
                        ),
                    ])
                }
                Err(message) => err_reply(message),
            };
            send_best_effort(&mut stream, &reply);
        }
        "shutdown" => {
            state.shutdown.store(true, Ordering::SeqCst);
            send_best_effort(&mut stream, &ok_reply(Vec::new()));
        }
        other => {
            send_best_effort(&mut stream, &err_reply(format!("unknown op {other:?}")));
        }
    }
}

fn find_session(state: &DaemonState, req: &JsonValue) -> Result<Arc<SessionEntry>, String> {
    let id = req
        .get("id")
        .and_then(JsonValue::as_u64)
        .ok_or("an integer id field is required")?;
    lock_recover(&state.sessions)
        .iter()
        .find(|e| e.id == id)
        .cloned()
        .ok_or_else(|| format!("no session {id}"))
}

fn submit(state: &Arc<DaemonState>, yaml: &str) -> Result<Arc<SessionEntry>, String> {
    if state.shutdown.load(Ordering::SeqCst) {
        return Err("daemon is shutting down".into());
    }
    let job = Job::parse(yaml).map_err(|e| format!("invalid job: {e}"))?;
    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    let dir = state
        .root
        .join(SESSIONS_DIR)
        .join(session_dir_name(id, &job.name));
    if dir.exists() {
        return Err(format!("{} already exists", dir.display()));
    }
    let entry = Arc::new(SessionEntry::new(id, job.name.clone(), dir));
    lock_recover(&state.sessions).push(Arc::clone(&entry));

    let launcher = Arc::clone(&state.launcher);
    let thread_entry = Arc::clone(&entry);
    let thread = std::thread::Builder::new()
        .name(format!("wfd-session-{id}"))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut sink = EntrySink {
                    entry: Arc::clone(&thread_entry),
                };
                launcher.launch(&job, &thread_entry.dir, &mut sink, thread_entry.control())
            }));
            let status = match result {
                Ok(Ok(true)) => SessionStatus::Finished,
                Ok(Ok(false)) => SessionStatus::Stopped,
                Ok(Err(message)) => SessionStatus::Failed(message),
                Err(_) => SessionStatus::Failed("session thread panicked".into()),
            };
            thread_entry.finish(status);
        })
        .map_err(|e| format!("cannot spawn session thread: {e}"))?;
    lock_recover(&state.threads).push(thread);
    Ok(entry)
}

// ---------------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------------

/// Connects to the daemon serving `root` (its `<root>/wfd.sock`).
pub fn connect(root: &Path) -> io::Result<UnixStream> {
    let path = root.join(DAEMON_SOCKET);
    UnixStream::connect(&path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("{}: {e} (is wfd running?)", path.display()),
        )
    })
}

/// Sends one request frame and reads one reply frame; a server-side
/// `{ok: false, error}` comes back as an [`io::Error`], so callers only
/// see successful replies.
pub fn round_trip(stream: &mut UnixStream, req: &JsonValue) -> io::Result<JsonValue> {
    write_frame(stream, req)?;
    let reply = read_frame(stream)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
    })?;
    if reply.get("ok").and_then(JsonValue::as_bool) == Some(false) {
        let message = reply
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("daemon refused the request");
        return Err(io::Error::other(message.to_string()));
    }
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NullSink;
    use crate::store::SessionStore;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wfd-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A launcher that records nothing and parks immediately when asked.
    fn noop_launcher() -> Arc<dyn SessionLauncher> {
        Arc::new(
            |job: &Job, dir: &Path, _sink: &mut dyn EventSink, control: &SessionControl| {
                SessionStore::create(dir, job).map_err(|e| e.to_string())?;
                Ok(!control.stop_requested())
            },
        )
    }

    fn spawn_daemon(root: &Path) -> (std::thread::JoinHandle<io::Result<()>>, Arc<AtomicBool>) {
        let daemon = Daemon::bind(root, noop_launcher()).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || daemon.run(&flag));
        // Wait for the socket to answer.
        let path = root.join(DAEMON_SOCKET);
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        (handle, stop)
    }

    #[test]
    fn session_dir_names_are_filesystem_safe() {
        assert_eq!(session_dir_name(3, "Nginx Tuning!"), "0003-nginx-tuning");
        assert_eq!(session_dir_name(12, "***"), "0012");
        assert_eq!(session_dir_name(1, "ok"), "0001-ok");
    }

    #[test]
    fn submit_sessions_stop_and_shutdown_round_trip() {
        let root = temp_root("protocol");
        let (handle, _stop) = spawn_daemon(&root);

        let mut c = connect(&root).unwrap();
        let reply = round_trip(&mut c, &request("ping")).unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));

        let mut c = connect(&root).unwrap();
        let submit = JsonValue::Obj(vec![
            ("op".to_string(), JsonValue::Str("submit".into())),
            (
                "job".to_string(),
                JsonValue::Str("name: proto\nbudget:\n  iterations: 2\n".into()),
            ),
        ]);
        let reply = round_trip(&mut c, &submit).unwrap();
        assert_eq!(reply.get("id").unwrap().as_u64(), Some(1));
        let dir = PathBuf::from(reply.get("dir").unwrap().as_str().unwrap());
        assert!(dir.starts_with(root.join(SESSIONS_DIR)));

        // The noop launcher finishes immediately; the list reflects it.
        for _ in 0..200 {
            let mut c = connect(&root).unwrap();
            let reply = round_trip(&mut c, &request("sessions")).unwrap();
            let sessions = reply.get("sessions").unwrap().as_arr().unwrap();
            assert_eq!(sessions.len(), 1);
            if sessions[0].get("status").unwrap().as_str() == Some("finished") {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(dir.join("manifest.yaml").exists());

        // Unknown ids are refused, not fatal.
        let mut c = connect(&root).unwrap();
        let stop_req = JsonValue::Obj(vec![
            ("op".to_string(), JsonValue::Str("stop".into())),
            ("id".to_string(), JsonValue::Int(99)),
        ]);
        assert!(round_trip(&mut c, &stop_req).is_err());

        let mut c = connect(&root).unwrap();
        round_trip(&mut c, &request("shutdown")).unwrap();
        handle.join().unwrap().unwrap();
        assert!(!root.join(DAEMON_SOCKET).exists(), "socket removed");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn watch_on_a_finished_session_gets_an_end_frame() {
        let root = temp_root("watch-end");
        let entry = Arc::new(SessionEntry::new(1, "x".into(), root.join("x")));
        entry.finish(SessionStatus::Finished);
        let (a, mut b) = UnixStream::pair().unwrap();
        entry.add_watcher(a);
        let frame = read_frame(&mut b).unwrap().unwrap();
        assert_eq!(frame.get("stream").unwrap().as_str(), Some("end"));
        assert_eq!(frame.get("status").unwrap().as_str(), Some("finished"));
    }

    #[test]
    fn broadcast_reaches_watchers_and_drops_dead_ones() {
        let root = temp_root("broadcast");
        let entry = Arc::new(SessionEntry::new(1, "x".into(), root.join("x")));
        let (a, mut b) = UnixStream::pair().unwrap();
        entry.add_watcher(a);
        let (dead_a, dead_b) = UnixStream::pair().unwrap();
        drop(dead_b);
        entry.add_watcher(dead_a);

        entry.broadcast(&SessionEvent::NewBest {
            iteration: 4,
            objective: 2.5,
        });
        entry.broadcast(&SessionEvent::CheckpointWritten { iterations: 5 });
        assert_eq!(entry.best(), Some(2.5));
        let frame = read_frame(&mut b).unwrap().unwrap();
        assert_eq!(frame.get("event").unwrap().as_str(), Some("new_best"));
        // The dead watcher was dropped without failing the broadcast.
        assert_eq!(lock_recover(&entry.inner).watchers.len(), 1);

        entry.finish(SessionStatus::Stopped);
        // Drain the checkpoint, then the end frame.
        let frame = read_frame(&mut b).unwrap().unwrap();
        assert_eq!(frame.get("event").unwrap().as_str(), Some("checkpoint"));
        let frame = read_frame(&mut b).unwrap().unwrap();
        assert_eq!(frame.get("stream").unwrap().as_str(), Some("end"));
        assert_eq!(frame.get("status").unwrap().as_str(), Some("stopped"));
    }

    #[test]
    fn a_panicking_launcher_fails_its_session_not_the_daemon() {
        let root = temp_root("panic");
        let launcher: Arc<dyn SessionLauncher> = Arc::new(
            |_job: &Job, _dir: &Path, _sink: &mut dyn EventSink, _control: &SessionControl| {
                panic!("boom");
            },
        );
        let daemon = Daemon::bind(&root, launcher).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let state_root = root.clone();
        let handle = std::thread::spawn(move || daemon.run(&flag));

        let mut c = connect(&state_root).unwrap();
        let submit = JsonValue::Obj(vec![
            ("op".to_string(), JsonValue::Str("submit".into())),
            ("job".to_string(), JsonValue::Str("name: boom\n".into())),
        ]);
        round_trip(&mut c, &submit).unwrap();
        let mut failed = false;
        for _ in 0..400 {
            let mut c = connect(&state_root).unwrap();
            let reply = round_trip(&mut c, &request("sessions")).unwrap();
            let sessions = reply.get("sessions").unwrap().as_arr().unwrap();
            if sessions[0].get("status").unwrap().as_str() == Some("failed") {
                failed = true;
                assert!(sessions[0]
                    .get("error")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .contains("panicked"));
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(failed, "the panicked session must surface as failed");

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn null_sink_satisfies_the_launcher_signature() {
        // Compile-time check that plain closures are launchers.
        let launcher: Arc<dyn SessionLauncher> = noop_launcher();
        let root = temp_root("sig");
        std::fs::create_dir_all(&root).unwrap();
        let control = SessionControl::default();
        let done = launcher
            .launch(&Job::default(), &root.join("s"), &mut NullSink, &control)
            .unwrap();
        assert!(done);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
