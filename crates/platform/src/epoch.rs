//! Continuous specialization: epochs over a drifting workload.
//!
//! A one-shot session optimizes a *fixed* response surface. In
//! continuous mode ([`crate::Session::enable_drift`]) the workload is a
//! [`DriftSchedule`] — a phase sequence over virtual compute time — and
//! the session watches its own deployment for change:
//!
//! 1. every successful candidate's metric is re-drawn against the phase
//!    active at the candidate's own virtual compute time, so the search
//!    genuinely races a moving optimum;
//! 2. alongside every candidate (crashed or not), one telemetry sample
//!    of the *deployed reference* configuration is measured from the
//!    candidate's own RNG stream and fed to a [`DriftDetector`];
//! 3. on a confirmed verdict at a wave boundary, the epoch closes: the
//!    detector resets, the search re-seeds
//!    ([`wf_search::SearchAlgorithm::begin_epoch`] — transfer-seeded
//!    from the closed epoch's model or restarted cold), the epoch's
//!    best becomes the new deployed reference, and
//!    `DriftDetected`/`EpochStarted` events land in the store.
//!
//! Everything is a pure function of the session seed and the recorded
//! durations, so [`crate::Session::replay`] re-derives the same epoch
//! boundaries offline, bit-for-bit, without emitting anything — the
//! resume guarantee extends across epoch boundaries unchanged.

use crate::workers::{self, derive_seed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::NamedConfig;
use wf_drift::{DetectorSnapshot, DriftDetector, SignalSample, Verdict};
use wf_ossim::DriftSchedule;

/// Continuous-mode parameters: what drifts and how change is confirmed.
pub struct DriftConfig {
    /// The drifting workload the session optimizes against.
    pub schedule: DriftSchedule,
    /// The change detector, fed one telemetry sample per candidate in
    /// iteration order.
    pub detector: Box<dyn DriftDetector>,
    /// Minimum candidates an epoch must run before a verdict may close
    /// it — absorbs the detector's warm-up on the fresh reference after
    /// each re-deployment.
    pub min_epoch: usize,
    /// Seed each new epoch's search from the closed epoch's model (the
    /// generalized `transfer_checkpoint` path) instead of restarting
    /// cold.
    pub transfer: bool,
}

/// One confirmed detection, extracted at a wave boundary.
pub(crate) struct Detection {
    /// Iteration whose sample triggered the verdict.
    pub(crate) at_iteration: usize,
    /// Virtual compute time of that sample.
    pub(crate) at_s: f64,
    /// The detector's estimates at the verdict.
    pub(crate) snapshot: DetectorSnapshot,
}

/// Live drift state carried by a continuous [`crate::Session`].
pub(crate) struct DriftState {
    pub(crate) config: DriftConfig,
    /// Current epoch index.
    pub(crate) epoch: usize,
    /// History index where the current epoch began (search algorithms
    /// see history from here; detector warm-up counts from here).
    pub(crate) epoch_start: usize,
    /// The deployed reference whose telemetry the detector watches: OS
    /// defaults for epoch 0, the best configuration of the closed epoch
    /// afterwards.
    pub(crate) reference: NamedConfig,
    /// The drift clock: candidate durations summed strictly one at a
    /// time in iteration order. Numerically identical at every worker
    /// count — unlike the session's compute clock, which adds per-wave
    /// subtotals and so drifts by ULPs as the wave shape changes.
    pub(crate) now_s: f64,
}

impl DriftState {
    pub(crate) fn new(config: DriftConfig) -> Self {
        DriftState {
            config,
            epoch: 0,
            epoch_start: 0,
            reference: NamedConfig::empty(),
            now_s: 0.0,
        }
    }

    /// The deployed reference's telemetry at candidate `iteration`,
    /// virtual time `t_s`: one noisy measurement from the candidate's
    /// own signal stream, identical no matter how the wave was scheduled
    /// or whether the candidate itself crashed.
    pub(crate) fn signal_sample(&self, session_seed: u64, iteration: usize, t_s: f64) -> f64 {
        let candidate_seed = derive_seed(session_seed, iteration as u64);
        let mut rng = StdRng::seed_from_u64(derive_seed(candidate_seed, workers::STREAM_SIGNAL));
        self.config
            .schedule
            .measure_at(t_s, &self.reference, &mut rng)
    }

    /// A successful candidate's metric under the phase active at its own
    /// virtual compute time, drawn from the candidate's drift stream.
    pub(crate) fn drifted_metric(
        &self,
        session_seed: u64,
        iteration: usize,
        t_s: f64,
        view: &NamedConfig,
    ) -> f64 {
        let candidate_seed = derive_seed(session_seed, iteration as u64);
        let mut rng = StdRng::seed_from_u64(derive_seed(candidate_seed, workers::STREAM_DRIFT));
        self.config.schedule.measure_at(t_s, view, &mut rng)
    }

    /// Feeds one telemetry sample; returns a [`Detection`] when the
    /// verdict confirms a drift *and* the epoch has run at least
    /// `min_epoch` candidates (including this one).
    pub(crate) fn observe(&mut self, iteration: usize, t_s: f64, value: f64) -> Option<Detection> {
        let sample = SignalSample {
            index: iteration as u64,
            t_s,
            value,
        };
        let verdict = self.config.detector.observe(&sample);
        let epoch_len = iteration + 1 - self.epoch_start;
        if verdict == Verdict::Drift && epoch_len >= self.config.min_epoch {
            Some(Detection {
                at_iteration: iteration,
                at_s: t_s,
                snapshot: self.config.detector.snapshot(),
            })
        } else {
            None
        }
    }

    /// Closes the current epoch: resets the detector, advances the epoch
    /// counter, and re-deploys `reference` (kept unchanged when the
    /// whole closing epoch crashed and left no best).
    pub(crate) fn close_epoch(&mut self, next_start: usize, reference: Option<NamedConfig>) {
        self.config.detector.reset();
        self.epoch += 1;
        self.epoch_start = next_start;
        if let Some(reference) = reference {
            self.reference = reference;
        }
    }
}
