//! Metric post-processing: smoothing, normalization, the Eq. 4 score,
//! per-wave scheduling metrics, and the series shapes the paper's figures
//! plot.

/// Scheduling metrics for one evaluation wave of the multi-worker
/// pipeline: how full the pool ran, what the wave cost in virtual wall
/// time vs summed compute, and how the shared image cache behaved.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WaveStats {
    /// Zero-based wave index.
    pub wave: usize,
    /// Candidates evaluated in this wave.
    pub size: usize,
    /// Virtual wall seconds charged (the slowest worker lane).
    pub wall_s: f64,
    /// Summed per-candidate virtual seconds (total compute).
    pub busy_s: f64,
    /// Image-cache hits observed during the wave.
    pub cache_hits: u64,
    /// Image-cache misses observed during the wave.
    pub cache_misses: u64,
}

impl WaveStats {
    /// Fraction of the pool's capacity this wave used: summed compute
    /// over `workers × wall`. 1.0 means every worker was busy for the
    /// whole wave; a short straggler-free wave on a half-empty pool
    /// scores 0.5.
    pub fn occupancy(&self, workers: usize) -> f64 {
        if self.wall_s <= 0.0 || workers == 0 {
            return 1.0;
        }
        (self.busy_s / (workers as f64 * self.wall_s)).clamp(0.0, 1.0)
    }

    /// Cache hit rate over the wave's lookups (0.0 when none happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Mean pool occupancy over a session's waves (1.0 for an empty list, the
/// vacuous case: nothing ever idled).
pub fn mean_occupancy(waves: &[WaveStats], workers: usize) -> f64 {
    if waves.is_empty() {
        return 1.0;
    }
    waves.iter().map(|w| w.occupancy(workers)).sum::<f64>() / waves.len() as f64
}

/// A time series of (virtual seconds, value) points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    /// X-axis: virtual seconds.
    pub t: Vec<f64>,
    /// Y-axis values.
    pub y: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not non-decreasing.
    pub fn push(&mut self, t: f64, y: f64) {
        if let Some(last) = self.t.last() {
            assert!(t >= *last, "time must be non-decreasing");
        }
        self.t.push(t);
        self.y.push(y);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Centered moving average with the given window ("results ...
    /// smoothed for readability", Fig. 6/9/10/11).
    pub fn smoothed(&self, window: usize) -> Series {
        let w = window.max(1);
        let n = self.y.len();
        let mut out = Series::new();
        for i in 0..n {
            let lo = i.saturating_sub(w / 2);
            let hi = (i + w.div_ceil(2)).min(n);
            let mean = self.y[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            out.push(self.t[i], mean);
        }
        out
    }

    /// Best-so-far transform: `y[i] := best(y[..=i])`.
    pub fn best_so_far(&self, higher_is_better: bool) -> Series {
        let mut out = Series::new();
        let mut best = if higher_is_better { f64::MIN } else { f64::MAX };
        for (t, y) in self.t.iter().zip(self.y.iter()) {
            best = if higher_is_better {
                best.max(*y)
            } else {
                best.min(*y)
            };
            out.push(*t, best);
        }
        out
    }

    /// Resamples onto `k` evenly spaced time points (step interpolation),
    /// so multiple runs can be averaged into one curve.
    pub fn resample(&self, t_end: f64, k: usize) -> Series {
        assert!(k >= 2 && t_end > 0.0);
        let mut out = Series::new();
        let mut j = 0;
        let mut last = self.y.first().copied().unwrap_or(0.0);
        for i in 0..k {
            let t = t_end * i as f64 / (k - 1) as f64;
            while j < self.len() && self.t[j] <= t {
                last = self.y[j];
                j += 1;
            }
            out.push(t, last);
        }
        out
    }

    /// Pointwise mean of equally sampled series ("results of 5 runs").
    ///
    /// # Panics
    ///
    /// Panics if the series have different lengths or time axes.
    pub fn mean_of(series: &[Series]) -> Series {
        assert!(!series.is_empty());
        let n = series[0].len();
        for s in series {
            assert_eq!(s.len(), n, "series lengths differ");
        }
        let mut out = Series::new();
        for i in 0..n {
            let t = series[0].t[i];
            for s in series {
                assert!((s.t[i] - t).abs() < 1e-9, "time axes differ");
            }
            let mean = series.iter().map(|s| s.y[i]).sum::<f64>() / series.len() as f64;
            out.push(t, mean);
        }
        out
    }
}

/// Rolling crash-rate series: fraction of crashes in a trailing window
/// (the dashed lines of Fig. 6).
pub fn rolling_crash_rate(t: &[f64], crashed: &[bool], window: usize) -> Series {
    assert_eq!(t.len(), crashed.len());
    let w = window.max(1);
    let mut out = Series::new();
    for i in 0..t.len() {
        let lo = i.saturating_sub(w - 1);
        let c = crashed[lo..=i].iter().filter(|x| **x).count();
        out.push(t[i], c as f64 / (i - lo + 1) as f64);
    }
    out
}

/// Min–max normalization to [0, 1]; constant slices map to 0.5.
pub fn min_max_normalize(values: &[f64]) -> Vec<f64> {
    let (lo, hi) = bounds(values);
    if (hi - lo).abs() < 1e-12 {
        return vec![0.5; values.len()];
    }
    values.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

/// Eq. 4 of the paper: `s = mXNorm(t) − mXNorm(m)` — min–max normalized
/// throughput minus min–max normalized memory. Higher is better.
pub fn throughput_memory_score(throughput: &[f64], memory: &[f64]) -> Vec<f64> {
    assert_eq!(throughput.len(), memory.len());
    let tn = min_max_normalize(throughput);
    let mn = min_max_normalize(memory);
    tn.iter().zip(mn.iter()).map(|(t, m)| t - m).collect()
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for v in values {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_averages_neighbors() {
        let mut s = Series::new();
        for (i, y) in [0.0, 10.0, 0.0, 10.0, 0.0].iter().enumerate() {
            s.push(i as f64, *y);
        }
        let sm = s.smoothed(3);
        assert!((sm.y[2] - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(sm.len(), 5);
    }

    #[test]
    fn best_so_far_directions() {
        let mut s = Series::new();
        for (i, y) in [5.0, 3.0, 8.0, 2.0].iter().enumerate() {
            s.push(i as f64, *y);
        }
        assert_eq!(s.best_so_far(true).y, vec![5.0, 5.0, 8.0, 8.0]);
        assert_eq!(s.best_so_far(false).y, vec![5.0, 3.0, 3.0, 2.0]);
    }

    #[test]
    fn resample_steps_hold_last_value() {
        let mut s = Series::new();
        s.push(0.0, 1.0);
        s.push(10.0, 2.0);
        let r = s.resample(20.0, 5);
        assert_eq!(r.y, vec![1.0, 1.0, 2.0, 2.0, 2.0]);
        assert_eq!(r.t, vec![0.0, 5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn mean_of_aligned_series() {
        let mut a = Series::new();
        let mut b = Series::new();
        for i in 0..3 {
            a.push(i as f64, 1.0);
            b.push(i as f64, 3.0);
        }
        assert_eq!(Series::mean_of(&[a, b]).y, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn crash_rate_window() {
        let t = [0.0, 1.0, 2.0, 3.0];
        let crashed = [true, false, true, false];
        let s = rolling_crash_rate(&t, &crashed, 2);
        assert_eq!(s.y, vec![1.0, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn eq4_score_prefers_high_throughput_low_memory() {
        let t = [100.0, 200.0, 150.0];
        let m = [50.0, 80.0, 50.0];
        let s = throughput_memory_score(&t, &m);
        // The second config has top throughput but top memory too.
        assert!((s[1] - 0.0).abs() < 1e-12);
        // The third: mid throughput, min memory -> positive score.
        assert!(s[2] > 0.0 && s[2] > s[0]);
    }

    #[test]
    fn min_max_handles_constant_input() {
        assert_eq!(min_max_normalize(&[4.0, 4.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn wave_occupancy_and_hit_rate() {
        let w = WaveStats {
            wave: 0,
            size: 4,
            wall_s: 80.0,
            busy_s: 240.0,
            cache_hits: 3,
            cache_misses: 1,
        };
        // 240 busy seconds over 4 workers × 80 s wall = 0.75.
        assert!((w.occupancy(4) - 0.75).abs() < 1e-12);
        assert!((w.cache_hit_rate() - 0.75).abs() < 1e-12);
        // Degenerate waves are fully occupied by definition.
        assert_eq!(WaveStats::default().occupancy(4), 1.0);
        assert_eq!(WaveStats::default().cache_hit_rate(), 0.0);
        assert_eq!(mean_occupancy(&[], 4), 1.0);
        assert!((mean_occupancy(&[w, w], 4) - 0.75).abs() < 1e-12);
    }
}
