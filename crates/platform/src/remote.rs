//! The remote evaluation backend: workers behind a process boundary.
//!
//! [`RemoteBackend`] is an [`EvalBackend`] whose lanes are worker
//! *processes* connected over Unix-domain sockets, speaking a
//! length-prefixed JSON request/response protocol over the existing
//! [`EvalTarget`] surface. The `wf-evald` binary is the production
//! worker: it builds its own copy of the target (targets are pure
//! functions of their construction parameters, so a remote rebuild is
//! bit-identical to a local one) and calls [`serve`] on its connection.
//!
//! Workers are stateless between requests: every request ships the cache
//! probe's answer and the lane's working tree, every response carries the
//! built image back, so the shared image cache stays session-owned and
//! the two-phase cache protocol is untouched (see `docs/DETERMINISM.md`).
//! A worker that dies mid-wave surfaces as a transport-level
//! [`LaneError`]; the router health-gates the lane and retries the slot
//! elsewhere.
//!
//! # Protocol
//!
//! Each frame is a 4-byte big-endian length followed by one compact JSON
//! document (the same [`JsonValue`] encoding the session store uses, so
//! `f64` payloads round-trip bit-for-bit and `u64` seeds ride as
//! strings):
//!
//! ```text
//! worker → client   {"op":"hello","lane":0}
//! client → worker   {"op":"eval","seed":"42","reps":2,"slot":0,"index":7,
//!                    "lane":0,"config":["b1","i3",...],"reuse":null,
//!                    "tree":["b0",...]|null}
//! worker → client   {"op":"result","slot":0,"lane":0,"skip":false,
//!                    "dur":12.5,"ok":true,"metric":8.1,"mem":100.2,
//!                    "phase":null,"rule":null,
//!                    "image":{"fp":"123","mb":4.5,"opts":19}|null}
//! ```
//!
//! The connection closing (EOF) is the shutdown signal.

use crate::backend::{EvalBackend, LaneError, WorkItem, WorkResult};
use crate::store::{config_from_json, config_json, phase_from_str, phase_str, JsonValue};
use crate::target::EvalTarget;
use crate::workers::{evaluate_candidate, CandidateEval};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wf_ossim::{BenchResult, CrashReport, KernelImage};

/// Frames larger than this are a protocol violation, not a big wave.
const MAX_FRAME: u32 = 16 * 1024 * 1024;
/// How long [`RemoteBackend::spawn`] waits for every worker to dial in.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// How to launch remote workers: the `wf-evald` (or compatible) binary
/// plus the target-resolution arguments it needs to rebuild the session's
/// target. The backend appends `--connect <socket> --lane <i>` per
/// worker.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteSpec {
    /// Worker executable.
    pub command: PathBuf,
    /// Arguments passed through verbatim (opaque to the platform).
    pub args: Vec<String>,
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

/// Writes one length-prefixed JSON frame.
pub fn write_frame(stream: &mut UnixStream, value: &JsonValue) -> io::Result<()> {
    let body = value.encode().into_bytes();
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

/// Reads one length-prefixed JSON frame; `Ok(None)` on clean EOF.
pub fn read_frame(stream: &mut UnixStream) -> io::Result<Option<JsonValue>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the protocol maximum"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    JsonValue::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
}

// ---------------------------------------------------------------------------
// Payload (de)serialization.
// ---------------------------------------------------------------------------

fn u64_json(v: u64) -> JsonValue {
    JsonValue::Str(v.to_string())
}

fn u64_from(v: &JsonValue) -> Option<u64> {
    v.as_str().and_then(|s| s.parse().ok())
}

fn image_json(img: &KernelImage) -> JsonValue {
    JsonValue::Obj(vec![
        ("fp".into(), u64_json(img.fingerprint)),
        ("mb".into(), JsonValue::Num(img.image_mb)),
        ("opts".into(), JsonValue::Int(img.enabled_options as i64)),
    ])
}

fn image_from(v: &JsonValue) -> Option<KernelImage> {
    Some(KernelImage {
        fingerprint: u64_from(v.get("fp")?)?,
        image_mb: v.get("mb")?.as_f64()?,
        enabled_options: v.get("opts")?.as_usize()?,
    })
}

fn opt_json<T>(v: Option<&T>, f: impl Fn(&T) -> JsonValue) -> JsonValue {
    match v {
        Some(v) => f(v),
        None => JsonValue::Null,
    }
}

fn hello_json(lane: usize) -> JsonValue {
    JsonValue::Obj(vec![
        ("op".into(), JsonValue::Str("hello".into())),
        ("lane".into(), JsonValue::Int(lane as i64)),
    ])
}

fn request_json(session_seed: u64, repetitions: usize, item: &WorkItem) -> JsonValue {
    JsonValue::Obj(vec![
        ("op".into(), JsonValue::Str("eval".into())),
        ("seed".into(), u64_json(session_seed)),
        ("reps".into(), JsonValue::Int(repetitions as i64)),
        ("slot".into(), JsonValue::Int(item.slot as i64)),
        ("index".into(), JsonValue::Int(item.index as i64)),
        ("lane".into(), JsonValue::Int(item.lane as i64)),
        ("config".into(), config_json(&item.config)),
        ("reuse".into(), opt_json(item.reuse.as_ref(), image_json)),
        (
            "tree".into(),
            opt_json(item.working_tree.as_ref(), config_json),
        ),
    ])
}

fn result_json(w: &WorkResult) -> JsonValue {
    let (ok, metric, mem, phase, rule) = match &w.eval.outcome {
        Ok(r) => (true, Some(r.metric), Some(r.memory_mb), None, None),
        Err(c) => (false, None, None, Some(phase_str(c.phase)), Some(&c.rule)),
    };
    let num = |v: Option<f64>| match v {
        Some(v) => JsonValue::Num(v),
        None => JsonValue::Null,
    };
    JsonValue::Obj(vec![
        ("op".into(), JsonValue::Str("result".into())),
        ("slot".into(), JsonValue::Int(w.slot as i64)),
        ("lane".into(), JsonValue::Int(w.lane as i64)),
        ("skip".into(), JsonValue::Bool(w.eval.build_skipped)),
        ("dur".into(), JsonValue::Num(w.eval.duration_s)),
        ("ok".into(), JsonValue::Bool(ok)),
        ("metric".into(), num(metric)),
        ("mem".into(), num(mem)),
        (
            "phase".into(),
            opt_json(phase.as_ref(), |p| JsonValue::Str((*p).into())),
        ),
        (
            "rule".into(),
            opt_json(rule, |r| JsonValue::Str((*r).clone())),
        ),
        ("image".into(), opt_json(w.image.as_ref(), image_json)),
    ])
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn result_from(v: &JsonValue) -> io::Result<WorkResult> {
    let slot = v
        .get("slot")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| bad("result without slot"))?;
    let lane = v
        .get("lane")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| bad("result without lane"))?;
    let build_skipped = v
        .get("skip")
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| bad("result without skip"))?;
    let duration_s = v
        .get("dur")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad("result without dur"))?;
    let ok = v
        .get("ok")
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| bad("result without ok"))?;
    let outcome = if ok {
        Ok(BenchResult {
            metric: v
                .get("metric")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| bad("ok result without metric"))?,
            memory_mb: v
                .get("mem")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| bad("ok result without mem"))?,
        })
    } else {
        Err(CrashReport {
            phase: v
                .get("phase")
                .and_then(JsonValue::as_str)
                .and_then(phase_from_str)
                .ok_or_else(|| bad("crash result without phase"))?,
            rule: v
                .get("rule")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("crash result without rule"))?
                .to_string(),
        })
    };
    let image = match v.get("image") {
        None | Some(JsonValue::Null) => None,
        Some(img) => Some(image_from(img).ok_or_else(|| bad("malformed image"))?),
    };
    Ok(WorkResult {
        slot,
        lane,
        eval: CandidateEval {
            outcome,
            build_skipped,
            duration_s,
        },
        image,
    })
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

/// Serves evaluation requests on `stream` until the peer closes it.
///
/// This is the whole worker loop `wf-evald` runs: announce the lane,
/// then `read request → evaluate → write result` until EOF. The worker
/// is stateless between requests — reuse and working tree arrive in the
/// request — so the evaluation is the same pure function of
/// `(session_seed, index)` it is in-process.
pub fn serve(mut stream: UnixStream, lane: usize, target: &dyn EvalTarget) -> io::Result<()> {
    write_frame(&mut stream, &hello_json(lane))?;
    while let Some(frame) = read_frame(&mut stream)? {
        let op = frame.get("op").and_then(JsonValue::as_str);
        if op != Some("eval") {
            return Err(bad("unexpected request frame"));
        }
        let session_seed = frame
            .get("seed")
            .and_then(u64_from)
            .ok_or_else(|| bad("eval without seed"))?;
        let repetitions = frame
            .get("reps")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| bad("eval without reps"))?;
        let item = WorkItem {
            slot: frame
                .get("slot")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| bad("eval without slot"))?,
            index: frame
                .get("index")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| bad("eval without index"))?,
            lane: frame
                .get("lane")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| bad("eval without lane"))?,
            config: frame
                .get("config")
                .and_then(config_from_json)
                .ok_or_else(|| bad("eval without config"))?,
            reuse: match frame.get("reuse") {
                None | Some(JsonValue::Null) => None,
                Some(img) => Some(image_from(img).ok_or_else(|| bad("malformed reuse image"))?),
            },
            working_tree: match frame.get("tree") {
                None | Some(JsonValue::Null) => None,
                Some(tree) => {
                    Some(config_from_json(tree).ok_or_else(|| bad("malformed working tree"))?)
                }
            },
        };
        let mut tree = item.working_tree.clone();
        let (eval, image) = evaluate_candidate(
            target,
            &item.config,
            item.index,
            session_seed,
            repetitions,
            item.reuse.as_ref(),
            &mut tree,
        );
        let result = WorkResult {
            slot: item.slot,
            lane: item.lane,
            eval,
            image,
        };
        write_frame(&mut stream, &result_json(&result))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Client side.
// ---------------------------------------------------------------------------

struct RemoteLane {
    stream: Option<UnixStream>,
    child: Option<Child>,
}

/// Accepts one hello-announced connection per worker, in any arrival
/// order, returning the streams in lane order. `children` is only
/// polled (`try_wait`) to detect a worker that died before connecting;
/// ownership stays with the caller so its error path can reap them.
fn accept_workers(
    listener: &UnixListener,
    workers: usize,
    children: &mut [Child],
) -> io::Result<Vec<UnixStream>> {
    let mut streams: Vec<Option<UnixStream>> = (0..workers).map(|_| None).collect();
    // wf-lint: allow(wall-clock-in-det-path, reason = "host-I/O timeout: bounds how long setup waits for worker processes to connect; the deadline never reaches the search")
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    let mut connected = 0;
    while connected < workers {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let mut stream = stream;
                let hello =
                    read_frame(&mut stream)?.ok_or_else(|| bad("worker hung up before hello"))?;
                let lane = hello
                    .get("lane")
                    .and_then(JsonValue::as_usize)
                    .filter(|l| *l < workers)
                    .ok_or_else(|| bad("malformed hello frame"))?;
                if streams[lane].is_some() {
                    return Err(bad("two workers announced the same lane"));
                }
                streams[lane] = Some(stream);
                connected += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                for child in children.iter_mut() {
                    if let Some(status) = child.try_wait()? {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            format!("worker exited before connecting: {status}"),
                        ));
                    }
                }
                // wf-lint: allow(wall-clock-in-det-path, reason = "host-I/O timeout check against the connect deadline above")
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "workers did not connect within the timeout",
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(streams.into_iter().flatten().collect())
}

/// Worker processes (or test threads) behind sockets, one per lane.
///
/// Construct with [`RemoteBackend::spawn`] to launch real worker
/// processes, or [`RemoteBackend::from_streams`] to drive pre-connected
/// sockets (the proptests serve the protocol from in-process threads —
/// same bytes, no process overhead).
pub struct RemoteBackend {
    lanes: Vec<RemoteLane>,
    socket_path: Option<PathBuf>,
}

static SOCKET_SERIAL: AtomicUsize = AtomicUsize::new(0);

impl RemoteBackend {
    /// Launches `workers` worker processes per `spec` and waits for all
    /// of them to dial in and announce their lanes. On *any* launch
    /// failure — a spawn error, a malformed hello, a worker dying early,
    /// or the connect timeout — every child already launched is killed
    /// and reaped before the error returns, so a failed launch never
    /// leaks worker processes.
    pub fn spawn(workers: usize, spec: &RemoteSpec) -> io::Result<RemoteBackend> {
        assert!(workers >= 1, "a backend needs at least one lane");
        let socket_path = std::env::temp_dir().join(format!(
            "wf-evald-{}-{}.sock",
            std::process::id(),
            SOCKET_SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;

        // Children stay in this vec until the whole launch succeeds, so
        // the error path below can reap every process it started.
        let mut children: Vec<Child> = Vec::with_capacity(workers);
        let outcome = (|| -> io::Result<Vec<UnixStream>> {
            for lane in 0..workers {
                let child = Command::new(&spec.command)
                    .args(&spec.args)
                    .arg("--connect")
                    .arg(&socket_path)
                    .arg("--lane")
                    .arg(lane.to_string())
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|e| {
                        io::Error::new(
                            e.kind(),
                            format!("cannot launch worker {:?}: {e}", spec.command),
                        )
                    })?;
                children.push(child);
            }
            accept_workers(&listener, workers, &mut children)
        })();
        let _ = std::fs::remove_file(&socket_path);
        match outcome {
            Ok(streams) => Ok(RemoteBackend {
                // Worker `i` was launched with `--lane i`, so child order
                // is lane order.
                lanes: streams
                    .into_iter()
                    .zip(children)
                    .map(|(stream, child)| RemoteLane {
                        stream: Some(stream),
                        child: Some(child),
                    })
                    .collect(),
                socket_path: Some(socket_path),
            }),
            Err(e) => {
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                Err(e)
            }
        }
    }

    /// Wraps pre-connected streams whose peers already run [`serve`].
    /// Each peer's hello frame decides its lane.
    pub fn from_streams(streams: Vec<UnixStream>) -> io::Result<RemoteBackend> {
        let workers = streams.len();
        assert!(workers >= 1, "a backend needs at least one lane");
        let mut lanes: Vec<Option<RemoteLane>> = (0..workers).map(|_| None).collect();
        for mut stream in streams {
            let hello =
                read_frame(&mut stream)?.ok_or_else(|| bad("worker hung up before hello"))?;
            let lane = hello
                .get("lane")
                .and_then(JsonValue::as_usize)
                .filter(|l| *l < workers)
                .ok_or_else(|| bad("malformed hello frame"))?;
            if lanes[lane].is_some() {
                return Err(bad("two workers announced the same lane"));
            }
            lanes[lane] = Some(RemoteLane {
                stream: Some(stream),
                child: None,
            });
        }
        Ok(RemoteBackend {
            lanes: lanes
                .into_iter()
                .map(|l| l.expect("all lanes announced"))
                .collect(),
            socket_path: None,
        })
    }

    /// Number of worker lanes.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// OS pids of the worker processes this backend launched (empty for
    /// [`RemoteBackend::from_streams`] backends, which own no
    /// processes). The teardown tests record these before dropping the
    /// backend and assert none of them survive it.
    pub fn child_pids(&self) -> Vec<u32> {
        self.lanes
            .iter()
            .filter_map(|lane| lane.child.as_ref().map(Child::id))
            .collect()
    }
}

impl EvalBackend for RemoteBackend {
    fn label(&self) -> &'static str {
        "remote"
    }

    fn run_items(
        &mut self,
        _target: &Arc<dyn EvalTarget>,
        session_seed: u64,
        repetitions: usize,
        items: Vec<WorkItem>,
    ) -> Vec<Result<WorkResult, LaneError>> {
        let mut out = Vec::with_capacity(items.len());
        // Submit every item, then drain responses lane by lane — the
        // worker loop is sequential per lane, so responses arrive in
        // submission order on each socket.
        let mut outstanding: Vec<VecDeque<usize>> =
            (0..self.lanes.len()).map(|_| VecDeque::new()).collect();
        for item in &items {
            assert!(item.lane < self.lanes.len(), "lane out of range");
            let lane = item.lane;
            let failed = match self.lanes[lane].stream.as_mut() {
                None => Some("worker connection is gone".to_string()),
                Some(stream) => {
                    match write_frame(stream, &request_json(session_seed, repetitions, item)) {
                        Ok(()) => None,
                        Err(e) => Some(format!("cannot send to worker: {e}")),
                    }
                }
            };
            match failed {
                None => outstanding[lane].push_back(item.slot),
                Some(message) => {
                    self.lanes[lane].stream = None;
                    out.push(Err(LaneError {
                        slot: item.slot,
                        lane,
                        message,
                    }));
                }
            }
        }
        for (lane, mut slots) in outstanding.into_iter().enumerate() {
            while let Some(expected_slot) = slots.pop_front() {
                let received = match self.lanes[lane].stream.as_mut() {
                    None => Err(bad("worker connection is gone")),
                    Some(stream) => read_frame(stream).and_then(|frame| {
                        frame
                            .ok_or_else(|| bad("worker hung up mid-wave"))
                            .and_then(|f| result_from(&f))
                    }),
                };
                match received {
                    Ok(result) => out.push(Ok(result)),
                    Err(e) => {
                        // The lane is dead: fail this slot and everything
                        // else still outstanding on it.
                        self.lanes[lane].stream = None;
                        out.push(Err(LaneError {
                            slot: expected_slot,
                            lane,
                            message: format!("worker failed: {e}"),
                        }));
                        for slot in slots.drain(..) {
                            out.push(Err(LaneError {
                                slot,
                                lane,
                                message: "worker connection is gone".into(),
                            }));
                        }
                    }
                }
            }
        }
        out
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        // Closing the sockets is the shutdown signal; give processes a
        // moment to exit on EOF, then reap (or kill) them.
        for lane in &mut self.lanes {
            lane.stream.take();
        }
        for lane in &mut self.lanes {
            if let Some(mut child) = lane.child.take() {
                // wf-lint: allow(wall-clock-in-det-path, reason = "host-I/O timeout: bounds teardown's wait for worker processes to exit on EOF; runs after the session is over")
                let deadline = Instant::now() + Duration::from_secs(2);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        // wf-lint: allow(wall-clock-in-det-path, reason = "host-I/O timeout check against the teardown deadline above")
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InProcessBackend;
    use crate::target::SimTarget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::{App, AppId, SimOs};

    fn sim_target() -> SimTarget {
        SimTarget::new(
            SimOs::linux_runtime(LinuxVersion::V4_19, 56),
            App::by_id(AppId::Redis),
        )
    }

    /// A remote backend whose workers are in-process threads running the
    /// real [`serve`] loop over socketpairs — full protocol bytes, no
    /// process spawn.
    pub(crate) fn threaded_remote(workers: usize) -> RemoteBackend {
        let mut streams = Vec::with_capacity(workers);
        for lane in 0..workers {
            let (client, server) = UnixStream::pair().expect("socketpair");
            std::thread::spawn(move || {
                let target = sim_target();
                let _ = serve(server, lane, &target);
            });
            streams.push(client);
        }
        RemoteBackend::from_streams(streams).expect("handshake")
    }

    #[test]
    fn remote_and_in_process_agree_bit_for_bit() {
        let target: Arc<dyn EvalTarget> = Arc::new(sim_target());
        let mut rng = StdRng::seed_from_u64(13);
        let items: Vec<WorkItem> = (0..5)
            .map(|j| WorkItem::new(j, j, j % 3, target.space().sample(&mut rng)))
            .collect();
        let mut local = InProcessBackend::new(3);
        let mut remote = threaded_remote(3);
        let mut a: Vec<WorkResult> = local
            .run_items(&target, 77, 2, items.clone())
            .into_iter()
            .map(|r| r.expect("ok"))
            .collect();
        let mut b: Vec<WorkResult> = remote
            .run_items(&target, 77, 2, items)
            .into_iter()
            .map(|r| r.expect("ok"))
            .collect();
        a.sort_by_key(|w| w.slot);
        b.sort_by_key(|w| w.slot);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.lane, y.lane);
            assert_eq!(x.eval.build_skipped, y.eval.build_skipped);
            assert_eq!(x.eval.duration_s.to_bits(), y.eval.duration_s.to_bits());
            match (&x.eval.outcome, &y.eval.outcome) {
                (Ok(m), Ok(n)) => {
                    assert_eq!(m.metric.to_bits(), n.metric.to_bits());
                    assert_eq!(m.memory_mb.to_bits(), n.memory_mb.to_bits());
                }
                (Err(m), Err(n)) => {
                    assert_eq!(m.phase, n.phase);
                    assert_eq!(m.rule, n.rule);
                }
                _ => panic!("outcome kind differs across the socket"),
            }
            match (&x.image, &y.image) {
                (Some(m), Some(n)) => {
                    assert_eq!(m.fingerprint, n.fingerprint);
                    assert_eq!(m.image_mb.to_bits(), n.image_mb.to_bits());
                    assert_eq!(m.enabled_options, n.enabled_options);
                }
                (None, None) => {}
                _ => panic!("image presence differs across the socket"),
            }
        }
    }

    #[test]
    fn a_dead_worker_surfaces_as_lane_errors() {
        let target: Arc<dyn EvalTarget> = Arc::new(sim_target());
        let mut rng = StdRng::seed_from_u64(14);
        // Lane 1's "worker" hangs up immediately after the hello.
        let (alive_client, alive_server) = UnixStream::pair().expect("socketpair");
        std::thread::spawn(move || {
            let target = sim_target();
            let _ = serve(alive_server, 0, &target);
        });
        let (dead_client, dead_server) = UnixStream::pair().expect("socketpair");
        {
            let mut s = dead_server;
            write_frame(&mut s, &hello_json(1)).unwrap();
            // dropped: EOF after hello
        }
        let mut remote = RemoteBackend::from_streams(vec![alive_client, dead_client]).unwrap();
        let items: Vec<WorkItem> = (0..4)
            .map(|j| WorkItem::new(j, j, j % 2, target.space().sample(&mut rng)))
            .collect();
        let results = remote.run_items(&target, 5, 1, items);
        let ok: Vec<usize> = results
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|w| w.slot))
            .collect();
        let failed: Vec<(usize, usize)> = results
            .iter()
            .filter_map(|r| r.as_ref().err().map(|e| (e.slot, e.lane)))
            .collect();
        assert_eq!(ok.len(), 2, "lane 0's items still complete");
        assert_eq!(failed, vec![(1, 1), (3, 1)], "lane 1's items fail");
    }

    #[test]
    fn frames_round_trip_over_a_socketpair() {
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        let value = JsonValue::Obj(vec![
            ("op".into(), JsonValue::Str("eval".into())),
            ("dur".into(), JsonValue::Num(0.1 + 0.2)),
            ("seed".into(), u64_json(u64::MAX)),
        ]);
        write_frame(&mut a, &value).unwrap();
        let back = read_frame(&mut b).unwrap().unwrap();
        assert_eq!(back, value);
        assert_eq!(
            back.get("dur").unwrap().as_f64().unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        drop(a);
        assert!(read_frame(&mut b).unwrap().is_none(), "EOF reads as None");
    }
}
