//! Typed session events: observe a running [`crate::Session`] without
//! polling.
//!
//! The exploration loop used to be all-or-nothing — `run()` blocked until
//! the budget was spent and everything interesting (new bests, wave
//! scheduling, per-candidate outcomes) happened invisibly in between.
//! [`SessionEvent`] is the typed stream of those moments and
//! [`EventSink`] the observer interface: `Session::run_with` /
//! `Session::step_wave_with` emit every event through the sink as it
//! happens, so progress UIs, persistent stores ([`crate::store`]), and
//! tests all consume the same stream. `run()` is exactly
//! `run_with(&mut NullSink)` — observing a session never changes it.
//!
//! # Examples
//!
//! Count evaluations and improvements with a custom sink:
//!
//! ```
//! use wf_kconfig::LinuxVersion;
//! use wf_ossim::{App, AppId, SimOs};
//! use wf_platform::{EventSink, Session, SessionEvent, SessionSpec};
//! use wf_search::RandomSearch;
//!
//! #[derive(Default)]
//! struct Counter {
//!     evaluated: usize,
//!     improved: usize,
//! }
//!
//! impl EventSink for Counter {
//!     fn on_event(&mut self, event: &SessionEvent) {
//!         match event {
//!             SessionEvent::CandidateEvaluated(_) => self.evaluated += 1,
//!             SessionEvent::NewBest { .. } => self.improved += 1,
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut session = Session::new(
//!     SimOs::linux_runtime(LinuxVersion::V4_19, 56),
//!     App::by_id(AppId::Nginx),
//!     Box::new(RandomSearch::new()),
//!     SessionSpec {
//!         budget: wf_jobfile::Budget {
//!             iterations: Some(6),
//!             time_seconds: None,
//!         },
//!         workers: 1,
//!         ..SessionSpec::default()
//!     },
//! );
//! let mut counter = Counter::default();
//! let summary = session.run_with(&mut counter);
//! assert_eq!(counter.evaluated, 6);
//! assert!(counter.improved >= 1, "the first success is always a best");
//! assert_eq!(summary.iterations, 6);
//! ```

use crate::history::Record;
use crate::metrics::WaveStats;
use crate::pipeline::SessionSummary;
use crate::target::TargetDescriptor;

/// One observable moment in a session's life, in emission order:
/// `SessionStarted`, then per wave `WaveDispatched` →
/// `CandidateEvaluated`* (interleaved with `NewBest`) → `WaveCompleted`,
/// and finally `SessionFinished`. [`SessionEvent::CheckpointWritten`]
/// originates in the persistence layer ([`crate::store::JsonlSink`]), not
/// the session itself: it marks the store durable up to an iteration.
///
/// Continuous sessions ([`crate::DriftConfig`]) add two moments:
/// `EpochStarted` right after `SessionStarted` on a fresh run (epoch 0),
/// and `DriftDetected` → `EpochStarted` inside any wave whose telemetry
/// confirms a workload shift, before that wave's `WaveCompleted`.
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// The session began (or resumed) running. `first_iteration` is 0 for
    /// a fresh session and the replayed history length after a resume.
    SessionStarted {
        /// The target's typed identity.
        descriptor: TargetDescriptor,
        /// The session RNG seed.
        seed: u64,
        /// Worker-pool width.
        workers: usize,
        /// Index of the first iteration this run segment will evaluate.
        first_iteration: usize,
    },
    /// A wave of candidates was proposed and is about to be evaluated.
    WaveDispatched {
        /// Zero-based wave index.
        wave: usize,
        /// Global iteration index of the wave's first candidate.
        first_iteration: usize,
        /// Number of candidates in the wave.
        size: usize,
    },
    /// One candidate finished evaluating (build + boot + bench, or a
    /// crash along the way). Emitted in candidate order with the fully
    /// populated history record.
    CandidateEvaluated(Record),
    /// The best-so-far objective improved.
    NewBest {
        /// Iteration that set the new best.
        iteration: usize,
        /// The new best objective value.
        objective: f64,
    },
    /// A continuous session's detector confirmed a workload drift.
    /// Emitted inside the closing wave — after its candidates, before its
    /// `WaveCompleted` — so the store's wave-atomic write covers it and a
    /// torn tail drops the detection together with the incomplete wave.
    DriftDetected {
        /// The epoch this detection closes.
        epoch: usize,
        /// Iteration whose telemetry sample triggered the verdict.
        at_iteration: usize,
        /// Virtual compute time of the triggering sample.
        at_s: f64,
        /// Detector name (e.g. `mean-shift`, `page-hinkley`).
        detector: String,
        /// The detector's current signal estimate at the verdict.
        signal: f64,
        /// The detector's frozen baseline estimate.
        baseline: f64,
    },
    /// A new specialization epoch began. Epoch 0 opens when a continuous
    /// session first runs; every later epoch follows a `DriftDetected`
    /// in the same wave.
    EpochStarted {
        /// Zero-based epoch index.
        epoch: usize,
        /// Global iteration index of the epoch's first candidate.
        first_iteration: usize,
        /// Virtual compute time the epoch opened at.
        at_s: f64,
        /// Whether the search was transfer-seeded from the closed epoch's
        /// model (the generalized `transfer_checkpoint` path) rather than
        /// restarted cold.
        transfer: bool,
        /// Workload phase active when the epoch opened.
        phase: String,
        /// Ground-truth oracle metric of that phase (drives the regret
        /// column of `wfctl report`).
        oracle_metric: f64,
    },
    /// A wave finished: scheduling and cache metrics for it.
    WaveCompleted(WaveStats),
    /// The on-disk store flushed everything up to `iterations` completed
    /// evaluations (emitted by [`crate::store::JsonlSink`], never by the
    /// session).
    CheckpointWritten {
        /// Number of evaluations durable on disk.
        iterations: usize,
    },
    /// The budget is exhausted; the final summary.
    SessionFinished(SessionSummary),
}

/// An observer of [`SessionEvent`]s.
///
/// Sinks must not assume they see a session from the beginning: a resumed
/// session emits `SessionStarted` with a non-zero `first_iteration`, and
/// an append-mode store sink sees only the continuation.
pub trait EventSink {
    /// Called for every event, in emission order, on the session's
    /// thread.
    fn on_event(&mut self, event: &SessionEvent);
}

/// The do-nothing sink: `run()` is `run_with(&mut NullSink)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn on_event(&mut self, _event: &SessionEvent) {}
}

/// A sink that buffers every event (powering iterator-style drivers and
/// tests).
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// Everything observed so far, oldest first.
    pub events: Vec<SessionEvent>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for RecordingSink {
    fn on_event(&mut self, event: &SessionEvent) {
        self.events.push(event.clone());
    }
}

/// Fans one event stream out to two sinks, first then second (e.g. a
/// persistent [`crate::store::JsonlSink`] plus a live console printer).
pub struct Tee<'a>(pub &'a mut dyn EventSink, pub &'a mut dyn EventSink);

impl EventSink for Tee<'_> {
    fn on_event(&mut self, event: &SessionEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Session, SessionSpec};
    use wf_jobfile::Budget;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::{App, AppId, SimOs};
    use wf_search::RandomSearch;

    fn session(iters: usize, workers: usize) -> Session {
        Session::new(
            SimOs::linux_runtime(LinuxVersion::V4_19, 56),
            App::by_id(AppId::Nginx),
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(iters),
                    time_seconds: None,
                },
                seed: 9,
                workers,
                ..SessionSpec::default()
            },
        )
    }

    #[test]
    fn run_with_emits_the_full_stream_in_order() {
        let mut s = session(6, 2);
        let mut sink = RecordingSink::new();
        let summary = s.run_with(&mut sink);
        assert_eq!(summary.iterations, 6);

        let events = &sink.events;
        assert!(matches!(
            events.first(),
            Some(SessionEvent::SessionStarted {
                first_iteration: 0,
                workers: 2,
                ..
            })
        ));
        assert!(matches!(
            events.last(),
            Some(SessionEvent::SessionFinished(_))
        ));
        let candidates = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::CandidateEvaluated(_)))
            .count();
        assert_eq!(candidates, 6);
        let waves = events
            .iter()
            .filter(|e| matches!(e, SessionEvent::WaveCompleted(_)))
            .count();
        assert_eq!(waves, 3, "6 candidates in waves of 2");
        // Dispatch precedes completion for every wave.
        let dispatch_idx: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, SessionEvent::WaveDispatched { .. }))
            .map(|(i, _)| i)
            .collect();
        let complete_idx: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, SessionEvent::WaveCompleted(_)))
            .map(|(i, _)| i)
            .collect();
        for (d, c) in dispatch_idx.iter().zip(complete_idx.iter()) {
            assert!(d < c);
        }
    }

    #[test]
    fn new_best_improves_monotonically() {
        let mut s = session(12, 1);
        let mut sink = RecordingSink::new();
        let _ = s.run_with(&mut sink);
        let bests: Vec<f64> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::NewBest { objective, .. } => Some(*objective),
                _ => None,
            })
            .collect();
        assert!(!bests.is_empty());
        for w in bests.windows(2) {
            assert!(w[1] > w[0], "NewBest must strictly improve: {bests:?}");
        }
    }

    #[test]
    fn observing_a_session_does_not_change_it() {
        let mut observed = session(8, 2);
        let mut sink = RecordingSink::new();
        let a = observed.run_with(&mut sink);
        let mut blind = session(8, 2);
        let b = blind.run();
        assert_eq!(a.best_metric, b.best_metric);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.compute_s.to_bits(), b.compute_s.to_bits());
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut a = RecordingSink::new();
        let mut b = RecordingSink::new();
        let mut s = session(2, 1);
        let _ = s.run_with(&mut Tee(&mut a, &mut b));
        assert_eq!(a.events.len(), b.events.len());
        assert!(!a.events.is_empty());
    }
}
