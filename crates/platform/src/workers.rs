//! The simulated VM-worker pool.
//!
//! The paper's platform is "built ... as a collection of microservices"
//! that farm evaluations out to VM workers. This module simulates that
//! fleet: a [`Pool`] of N workers evaluates a *wave* of candidate
//! configurations concurrently (crossbeam scoped threads in real time),
//! while each candidate's virtual draws derive from a per-candidate RNG,
//! never a shared stream, so a candidate's measured outcome does not
//! depend on which worker ran it or what ran concurrently (see
//! `pipeline` for the exact worker-count-invariance statement). The
//! shared image cache is only touched between waves — a sequential probe
//! before dispatch, a sequential publish after ([`Pool::run_wave`]) — so
//! cache effects are deterministic too.
//! Benchmark repetitions stay concurrent too, but their durations are
//! charged *sequentially* to the candidate ("all test configurations are
//! benchmarked one after the other" — experiments are never co-located).
//!
//! # Examples
//!
//! A candidate's outcome derives only from `(session_seed, index)`:
//! evaluating it twice — as different lanes, backends, or machines
//! would — produces the bit-identical result:
//!
//! ```
//! use wf_kconfig::LinuxVersion;
//! use wf_ossim::{App, AppId, SimOs};
//! use wf_platform::workers::evaluate_candidate;
//! use wf_platform::{derive_seed, EvalTarget, SimTarget};
//!
//! // Independent streams, not adjacent seeds.
//! assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
//!
//! let target = SimTarget::new(
//!     SimOs::linux_runtime(LinuxVersion::V4_19, 56),
//!     App::by_id(AppId::Nginx),
//! );
//! let config = target.space().default_config();
//! let (mut tree_a, mut tree_b) = (None, None);
//! let (a, _) = evaluate_candidate(&target, &config, 3, 42, 2, None, &mut tree_a);
//! let (b, _) = evaluate_candidate(&target, &config, 3, 42, 2, None, &mut tree_b);
//! assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
//! assert_eq!(a.outcome.is_ok(), b.outcome.is_ok());
//! ```

use crate::cache::SharedImageCache;
use crate::target::EvalTarget;
use crossbeam::thread;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::Configuration;
use wf_ossim::{BenchResult, CrashReport, KernelImage};

/// Derives an independent RNG seed from a base seed and a stream index
/// (SplitMix64 finalizer over the pair).
///
/// The previous scheme, `seed.wrapping_add(i)`, collides across adjacent
/// candidate seeds: candidate `s` repetition 1 and candidate `s + 1`
/// repetition 0 drew the *same* stream. The multiplicative offset plus
/// the SplitMix64 avalanche decorrelates the full `(seed, index)` grid.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG stream tag for a candidate's build draws (also used by the
/// pipeline's replay path to re-derive a build's exact RNG stream).
pub(crate) const STREAM_BUILD: u64 = 0;
/// RNG stream tag for a candidate's benchmark repetitions.
const STREAM_BENCH: u64 = 1;
/// RNG stream tag for a candidate's boot draws. Kept separate from the
/// build stream so a cache hit (which skips the build's draws entirely)
/// cannot shift the boot and benchmark outcomes — on compile targets two
/// same-image candidates in one wave race the shared cache, and only the
/// *build duration* may legitimately depend on who wins.
const STREAM_BOOT: u64 = 2;
/// RNG stream tag for a continuous session's re-draw of a successful
/// candidate's metric against the workload phase active at its own
/// virtual compute time (see [`crate::epoch`]).
pub(crate) const STREAM_DRIFT: u64 = 3;
/// RNG stream tag for the deployed reference's telemetry sample — the
/// one noisy measurement per candidate a drift detector observes. Its
/// own stream so it exists (and is identical) whether or not the
/// candidate itself crashed or hit the image cache.
pub(crate) const STREAM_SIGNAL: u64 = 4;

/// Runs `reps` benchmark repetitions, one model draw each.
///
/// Returns per-repetition outcomes in repetition order. Repetition `i`
/// draws from `derive_seed(seed, i)` regardless of how many repetitions
/// run or whether they run on threads.
pub fn run_repetitions(
    target: &dyn EvalTarget,
    image: &KernelImage,
    config: &Configuration,
    reps: usize,
    seed: u64,
) -> Vec<(Result<BenchResult, CrashReport>, f64)> {
    assert!(reps >= 1, "need at least one repetition");
    if reps == 1 {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0));
        return vec![target.bench(image, config, &mut rng)];
    }
    thread::scope(|scope| {
        let handles: Vec<_> = (0..reps)
            .map(|i| {
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                    target.bench(image, config, &mut rng)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("benchmark repetition panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// Aggregates repetition outcomes: mean metric and memory over successful
/// runs, total virtual duration, or the first crash if *any* repetition
/// crashed (deterministic rules crash every repetition identically, but a
/// conservative platform treats one failure as a failed configuration).
pub fn aggregate(
    outcomes: Vec<(Result<BenchResult, CrashReport>, f64)>,
) -> (Result<BenchResult, CrashReport>, f64) {
    let total_s: f64 = outcomes.iter().map(|(_, d)| d).sum();
    let mut metrics = Vec::new();
    let mut memories = Vec::new();
    for (result, _) in &outcomes {
        match result {
            Ok(r) => {
                metrics.push(r.metric);
                memories.push(r.memory_mb);
            }
            Err(crash) => return (Err(crash.clone()), total_s),
        }
    }
    let n = metrics.len() as f64;
    (
        Ok(BenchResult {
            metric: metrics.iter().sum::<f64>() / n,
            memory_mb: memories.iter().sum::<f64>() / n,
        }),
        total_s,
    )
}

/// The full outcome of evaluating one candidate on a worker.
///
/// Deliberately does *not* carry the configuration: results come back in
/// candidate order, so callers index into the candidate list they already
/// own instead of paying one configuration clone per evaluation.
#[derive(Clone, Debug)]
pub struct CandidateEval {
    /// Measurement or crash.
    pub outcome: Result<BenchResult, CrashReport>,
    /// Whether the build was skipped via the shared image cache.
    pub build_skipped: bool,
    /// Virtual seconds the candidate cost (build + boot + repetitions).
    pub duration_s: f64,
}

/// Evaluates one candidate end to end: build (or reuse), boot, benchmark
/// repetitions. Returns the evaluation plus the built (or reused) image,
/// which the caller publishes to the shared cache — the cache itself is
/// never touched here, so a wave's cache protocol stays deterministic
/// (see [`Pool::run_wave`]).
///
/// `index` is the candidate's global position in the session history; all
/// virtual-cost draws derive from `(session_seed, index)`, never from a
/// shared RNG, so the outcome does not depend on which worker ran it or
/// what ran concurrently. `reuse` is the cache probe's answer for this
/// candidate's fingerprint; `working_tree` is the worker's last-built
/// configuration (incremental-rebuild timing on compile targets).
pub fn evaluate_candidate(
    target: &dyn EvalTarget,
    config: &Configuration,
    index: usize,
    session_seed: u64,
    repetitions: usize,
    reuse: Option<&KernelImage>,
    working_tree: &mut Option<Configuration>,
) -> (CandidateEval, Option<KernelImage>) {
    let candidate_seed = derive_seed(session_seed, index as u64);
    let mut build_rng = StdRng::seed_from_u64(derive_seed(candidate_seed, STREAM_BUILD));
    let mut boot_rng = StdRng::seed_from_u64(derive_seed(candidate_seed, STREAM_BOOT));

    let build_skipped = reuse.is_some();
    let (built, build_s) = target.build(config, reuse, working_tree.as_ref(), &mut build_rng);

    let image = match built {
        Err(crash) => {
            return (
                CandidateEval {
                    outcome: Err(crash),
                    build_skipped,
                    duration_s: build_s,
                },
                None,
            )
        }
        Ok(image) => image,
    };
    *working_tree = Some(config.clone());

    let (booted, boot_s) = target.boot(&image, config, &mut boot_rng);
    if let Err(crash) = booted {
        return (
            CandidateEval {
                outcome: Err(crash),
                build_skipped,
                duration_s: build_s + boot_s,
            },
            Some(image),
        );
    }

    let outcomes = run_repetitions(
        target,
        &image,
        config,
        repetitions,
        derive_seed(candidate_seed, STREAM_BENCH),
    );
    let (outcome, bench_s) = aggregate(outcomes);
    (
        CandidateEval {
            outcome,
            build_skipped,
            duration_s: build_s + boot_s + bench_s,
        },
        Some(image),
    )
}

/// A pool of N simulated VM workers.
///
/// Waves dispatch one candidate per worker lane; lane `j` keeps its own
/// "working tree" (the last configuration it built) across waves, like a
/// real per-VM build directory. Results come back in candidate order, so
/// the recorded history is independent of thread scheduling.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// Creates a pool of `workers` VM workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        Pool { workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates a wave of candidates across the pool.
    ///
    /// `first_index` is the global history index of `candidates[0]`;
    /// `lanes` holds one working tree per worker. Returns evaluations in
    /// candidate order.
    ///
    /// The shared image cache is consulted through a deterministic
    /// two-phase protocol: every candidate's fingerprint is probed
    /// *sequentially in candidate order* before dispatch, and the images
    /// built by the wave are published back *sequentially in candidate
    /// order* after every lane returns. Worker threads never touch the
    /// cache, so `build_skipped` flags, cache statistics, and
    /// incremental-build reuse are pure functions of (seed, candidate
    /// order) — the property the session-store resume guarantee asserts —
    /// and the dispatch hot path takes zero cache-lock acquisitions while
    /// lanes run. Two same-fingerprint candidates in one wave both miss
    /// and both build, exactly like two real VM workers racing a build
    /// farm; the next wave reuses the published image.
    ///
    /// # Panics
    ///
    /// Panics if the wave exceeds the pool width or the lane count.
    #[allow(clippy::too_many_arguments)] // the platform's one dispatch point
    pub fn run_wave(
        &self,
        target: &dyn EvalTarget,
        candidates: &[Configuration],
        first_index: usize,
        session_seed: u64,
        repetitions: usize,
        cache: &SharedImageCache,
        lanes: &mut [Option<Configuration>],
    ) -> Vec<CandidateEval> {
        assert!(candidates.len() <= self.workers, "wave exceeds pool width");
        assert!(candidates.len() <= lanes.len(), "wave exceeds lane count");

        // Phase 1: probe the cache in candidate order.
        let reuses: Vec<Option<KernelImage>> = candidates
            .iter()
            .map(|c| cache.get(target.image_fingerprint(c)))
            .collect();

        // Phase 2: evaluate every lane (threads only when the wave has
        // more than one candidate, so `workers = 1` sessions stay
        // strictly sequential).
        let results: Vec<(CandidateEval, Option<KernelImage>)> = if candidates.len() <= 1 {
            candidates
                .iter()
                .zip(lanes.iter_mut())
                .zip(reuses.iter())
                .enumerate()
                .map(|(j, ((config, lane), reuse))| {
                    evaluate_candidate(
                        target,
                        config,
                        first_index + j,
                        session_seed,
                        repetitions,
                        reuse.as_ref(),
                        lane,
                    )
                })
                .collect()
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = candidates
                    .iter()
                    .zip(lanes.iter_mut())
                    .zip(reuses.iter())
                    .enumerate()
                    .map(|(j, ((config, lane), reuse))| {
                        scope.spawn(move |_| {
                            evaluate_candidate(
                                target,
                                config,
                                first_index + j,
                                session_seed,
                                repetitions,
                                reuse.as_ref(),
                                lane,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope")
        };

        // Phase 3: publish built (and refreshed) images in candidate
        // order, then hand back the evaluations.
        let mut evals = Vec::with_capacity(results.len());
        for (eval, image) in results {
            if let Some(image) = image {
                cache.insert(image);
            }
            evals.push(eval);
        }
        evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SimTarget;
    use std::collections::HashSet;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::{App, AppId, SimOs};

    fn sim_target(app: AppId) -> SimTarget {
        SimTarget::new(
            SimOs::linux_runtime(LinuxVersion::V4_19, 64),
            App::by_id(app),
        )
    }

    #[test]
    fn repetitions_are_deterministic_per_seed() {
        let target = sim_target(AppId::Redis);
        let cfg = target.space().default_config();
        let mut rng = StdRng::seed_from_u64(1);
        let (img, _) = target.build(&cfg, None, None, &mut rng);
        let img = img.unwrap();
        let a = run_repetitions(&target, &img, &cfg, 4, 99);
        let b = run_repetitions(&target, &img, &cfg, 4, 99);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.0.as_ref().unwrap().metric, y.0.as_ref().unwrap().metric);
        }
    }

    #[test]
    fn aggregate_means_and_sums() {
        let outcomes = vec![
            (
                Ok(BenchResult {
                    metric: 10.0,
                    memory_mb: 100.0,
                }),
                50.0,
            ),
            (
                Ok(BenchResult {
                    metric: 20.0,
                    memory_mb: 120.0,
                }),
                52.0,
            ),
        ];
        let (result, total) = aggregate(outcomes);
        let r = result.unwrap();
        assert_eq!(r.metric, 15.0);
        assert_eq!(r.memory_mb, 110.0);
        assert_eq!(total, 102.0);
    }

    #[test]
    fn aggregate_propagates_crashes_with_time() {
        let outcomes = vec![(
            Err(CrashReport {
                phase: wf_ossim::Phase::Run,
                rule: "x".into(),
            }),
            30.0,
        )];
        let (result, total) = aggregate(outcomes);
        assert!(result.is_err());
        assert_eq!(total, 30.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let target = sim_target(AppId::Nginx);
        let cfg = target.space().default_config();
        let mut rng = StdRng::seed_from_u64(2);
        let (img, _) = target.build(&cfg, None, None, &mut rng);
        let img = img.unwrap();
        // reps=1 path (sequential) vs reps>1 path (threads) with the same
        // derived seed must produce the same first-repetition result.
        let solo = run_repetitions(&target, &img, &cfg, 1, 7);
        let multi = run_repetitions(&target, &img, &cfg, 3, 7);
        assert_eq!(
            solo[0].0.as_ref().unwrap().metric,
            multi[0].0.as_ref().unwrap().metric
        );
    }

    #[test]
    fn derived_rep_seeds_never_collide_across_adjacent_candidates() {
        // Regression for the `seed.wrapping_add(i)` scheme, under which
        // candidate `s` rep `i` and candidate `s + k` rep `i - k` shared a
        // seed. A 100 × 100 grid of (adjacent base seed, repetition) pairs
        // must map to 10 000 distinct derived seeds.
        let base = 0xDEAD_BEEF_u64;
        let mut seen = HashSet::new();
        for candidate in 0..100u64 {
            for rep in 0..100u64 {
                assert!(
                    seen.insert(derive_seed(base + candidate, rep)),
                    "collision at candidate {candidate} rep {rep}"
                );
            }
        }
        // And the old scheme demonstrably collides on the same grid.
        let mut old = HashSet::new();
        let mut old_collisions = 0;
        for candidate in 0..100u64 {
            for rep in 0..100u64 {
                if !old.insert((base + candidate).wrapping_add(rep)) {
                    old_collisions += 1;
                }
            }
        }
        assert!(old_collisions > 0, "old scheme should collide on this grid");
    }

    #[test]
    fn wave_results_do_not_depend_on_pool_width() {
        // The same four candidates evaluated by a 1-wide pool (four waves
        // of one) and a 4-wide pool (one wave of four) must produce
        // identical outcomes and durations on a runtime target, because
        // every virtual-cost draw derives from (seed, candidate index).
        let target = sim_target(AppId::Nginx);
        let mut rng = StdRng::seed_from_u64(3);
        let candidates: Vec<Configuration> =
            (0..4).map(|_| target.space().sample(&mut rng)).collect();

        let narrow_cache = SharedImageCache::new(8);
        let narrow_pool = Pool::new(1);
        let mut narrow_lane = [None];
        let narrow: Vec<CandidateEval> = candidates
            .iter()
            .enumerate()
            .flat_map(|(i, c)| {
                narrow_pool.run_wave(
                    &target,
                    std::slice::from_ref(c),
                    i,
                    42,
                    2,
                    &narrow_cache,
                    &mut narrow_lane,
                )
            })
            .collect();

        let wide_cache = SharedImageCache::new(8);
        let wide_pool = Pool::new(4);
        let mut wide_lanes = [None, None, None, None];
        let wide = wide_pool.run_wave(&target, &candidates, 0, 42, 2, &wide_cache, &mut wide_lanes);

        // Results come back in candidate order, so position i of both
        // runs is candidate i by construction.
        for (a, b) in narrow.iter().zip(wide.iter()) {
            assert_eq!(a.duration_s, b.duration_s);
            match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(x), Err(y)) => assert_eq!(x.phase, y.phase),
                _ => panic!("outcome kind differs between pool widths"),
            }
        }
    }
}
