//! Parallel benchmark repetitions.
//!
//! The paper's platform is "built ... as a collection of microservices"
//! and runs repetitions to average out noise, but never co-locates
//! experiments ("all test configurations are benchmarked one after the
//! other"). The simulator honors both: repetitions execute concurrently in
//! *real* time (they are independent model draws), while their durations
//! are charged *sequentially* to the virtual clock.

use crossbeam::thread;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::Configuration;
use wf_ossim::{App, BenchResult, CrashReport, KernelImage, SimOs};

/// Runs `reps` benchmark repetitions, one model draw each.
///
/// Returns per-repetition outcomes in repetition order.
pub fn run_repetitions(
    os: &SimOs,
    app: &App,
    image: &KernelImage,
    config: &Configuration,
    reps: usize,
    seed: u64,
) -> Vec<(Result<BenchResult, CrashReport>, f64)> {
    assert!(reps >= 1, "need at least one repetition");
    if reps == 1 {
        let mut rng = StdRng::seed_from_u64(seed);
        return vec![os.bench(app, image, config, &mut rng)];
    }
    thread::scope(|scope| {
        let handles: Vec<_> = (0..reps)
            .map(|i| {
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
                    os.bench(app, image, config, &mut rng)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("benchmark repetition panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// Aggregates repetition outcomes: mean metric and memory over successful
/// runs, total virtual duration, or the first crash if *any* repetition
/// crashed (deterministic rules crash every repetition identically, but a
/// conservative platform treats one failure as a failed configuration).
pub fn aggregate(
    outcomes: Vec<(Result<BenchResult, CrashReport>, f64)>,
) -> (Result<BenchResult, CrashReport>, f64) {
    let total_s: f64 = outcomes.iter().map(|(_, d)| d).sum();
    let mut metrics = Vec::new();
    let mut memories = Vec::new();
    for (result, _) in &outcomes {
        match result {
            Ok(r) => {
                metrics.push(r.metric);
                memories.push(r.memory_mb);
            }
            Err(crash) => return (Err(crash.clone()), total_s),
        }
    }
    let n = metrics.len() as f64;
    (
        Ok(BenchResult {
            metric: metrics.iter().sum::<f64>() / n,
            memory_mb: memories.iter().sum::<f64>() / n,
        }),
        total_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::AppId;

    #[test]
    fn repetitions_are_deterministic_per_seed() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Redis);
        let cfg = os.space.default_config();
        let mut rng = StdRng::seed_from_u64(1);
        let (img, _) = os.build(&cfg, None, None, &mut rng);
        let img = img.unwrap();
        let a = run_repetitions(&os, &app, &img, &cfg, 4, 99);
        let b = run_repetitions(&os, &app, &img, &cfg, 4, 99);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.0.as_ref().unwrap().metric, y.0.as_ref().unwrap().metric);
        }
    }

    #[test]
    fn aggregate_means_and_sums() {
        let outcomes = vec![
            (
                Ok(BenchResult {
                    metric: 10.0,
                    memory_mb: 100.0,
                }),
                50.0,
            ),
            (
                Ok(BenchResult {
                    metric: 20.0,
                    memory_mb: 120.0,
                }),
                52.0,
            ),
        ];
        let (result, total) = aggregate(outcomes);
        let r = result.unwrap();
        assert_eq!(r.metric, 15.0);
        assert_eq!(r.memory_mb, 110.0);
        assert_eq!(total, 102.0);
    }

    #[test]
    fn aggregate_propagates_crashes_with_time() {
        let outcomes = vec![(
            Err(CrashReport {
                phase: wf_ossim::Phase::Run,
                rule: "x".into(),
            }),
            30.0,
        )];
        let (result, total) = aggregate(outcomes);
        assert!(result.is_err());
        assert_eq!(total, 30.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
        let app = App::by_id(AppId::Nginx);
        let cfg = os.space.default_config();
        let mut rng = StdRng::seed_from_u64(2);
        let (img, _) = os.build(&cfg, None, None, &mut rng);
        let img = img.unwrap();
        // reps=1 path (sequential) vs reps>1 path (threads) with the same
        // derived seed must produce the same first-repetition result.
        let solo = run_repetitions(&os, &app, &img, &cfg, 1, 7);
        let multi = run_repetitions(&os, &app, &img, &cfg, 3, 7);
        assert_eq!(
            solo[0].0.as_ref().unwrap().metric,
            multi[0].0.as_ref().unwrap().metric
        );
    }
}
