//! On-disk session stores: a job-file manifest plus an append-only
//! `events.jsonl`.
//!
//! A store directory makes a specialization campaign durable:
//!
//! * `manifest.yaml` — the *resolved* job (target keyword, app, metric,
//!   algorithm, seed, workers, budgets, pins, explicit parameters),
//!   written with the ordinary [`wf_jobfile::Job`] YAML emitter so it is
//!   itself a runnable job file;
//! * `events.jsonl` — every [`SessionEvent`] as one versioned JSON line,
//!   written by [`JsonlSink`] through a small hand-rolled encoder (no
//!   external dependencies) with escape-correct strings and round-trip
//!   floats. Version-2 lines are hash-chained: each carries `prev`, the
//!   FNV-1a hash of the line before it ([`line_hash`]), so the loader —
//!   and [`SessionStore::verify_chain`] — detect any edit or truncation
//!   other than a torn tail.
//!
//! [`SessionStore::load`] replays the lines into the stored records and
//! wave shapes; [`crate::Session::replay`] then rebuilds a live session
//! from them, so an interrupted campaign resumes without re-evaluating a
//! single candidate. Torn final lines (a process killed mid-write) and
//! trailing records that never completed a wave are tolerated and
//! dropped; anything else that fails to parse is a hard
//! [`StoreError::Corrupt`].
//!
//! # Examples
//!
//! ```
//! use wf_jobfile::Job;
//! use wf_kconfig::LinuxVersion;
//! use wf_ossim::{App, AppId, SimOs};
//! use wf_platform::{Session, SessionSpec, SessionStore};
//! use wf_search::RandomSearch;
//!
//! let dir = std::env::temp_dir().join(format!("wf-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Create the store from a (here: default) job manifest…
//! let store = SessionStore::create(&dir, &Job::default()).unwrap();
//!
//! // …run a session through its sink…
//! let mut session = Session::new(
//!     SimOs::linux_runtime(LinuxVersion::V4_19, 56),
//!     App::by_id(AppId::Nginx),
//!     Box::new(RandomSearch::new()),
//!     SessionSpec {
//!         budget: wf_jobfile::Budget {
//!             iterations: Some(4),
//!             time_seconds: None,
//!         },
//!         workers: 2,
//!         ..SessionSpec::default()
//!     },
//! );
//! let mut sink = store.sink().unwrap();
//! let _ = session.run_with(&mut sink);
//! drop(sink);
//!
//! // …and everything reloads offline: no re-evaluation.
//! let loaded = SessionStore::open(&dir).unwrap().load().unwrap();
//! assert_eq!(loaded.records.len(), 4);
//! assert_eq!(loaded.wave_sizes, vec![2, 2]);
//! assert!(loaded.finished);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::events::{EventSink, SessionEvent};
use crate::history::{History, Record};
use crate::metrics::WaveStats;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use wf_configspace::{Configuration, Tristate, Value};
use wf_jobfile::Job;
use wf_ossim::Phase;

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.yaml";
/// The event-log file name inside a store directory.
pub const EVENTS_FILE: &str = "events.jsonl";
/// The store format version stamped on every event line. Version 2 added
/// per-record hash chaining: every line carries `prev`, the [`line_hash`]
/// of the line before it, so truncation or edits anywhere but the torn
/// tail are detected on load.
pub const FORMAT_VERSION: i64 = 2;
/// The pre-hash-chain store format version. The loader still accepts
/// version-1 lines (they carry no `prev`), and a sink appending to a
/// legacy log chains its first new line off the legacy tail.
pub const LEGACY_FORMAT_VERSION: i64 = 1;

/// The chain state before any line exists: the [`line_hash`] of zero
/// bytes (the FNV-1a 64-bit offset basis). The first line of a log
/// carries this value in its `prev` field.
pub const CHAIN_GENESIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit hash of one event-log line (excluding its trailing
/// newline). Each version-2 line stores the hash of the line before it
/// in its `prev` field; because that field is itself part of the hashed
/// bytes, the chain commits to the whole log prefix, not just the
/// neighbouring line.
///
/// # Examples
///
/// ```
/// use wf_platform::store::{line_hash, CHAIN_GENESIS};
///
/// assert_eq!(line_hash(""), CHAIN_GENESIS);
/// assert_ne!(line_hash("{\"v\":2}"), line_hash("{\"v\":2} "));
/// ```
pub fn line_hash(line: &str) -> u64 {
    let mut hash = CHAIN_GENESIS;
    for byte in line.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The canonical hex spelling of a chain hash, as stored in `prev`
/// fields: 16 lowercase hex digits, zero-padded.
pub fn chain_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

// ---------------------------------------------------------------------------
// A minimal JSON value, encoder, and parser.
// ---------------------------------------------------------------------------

/// A JSON document node. Integers and floats are kept apart so `u64`-ish
/// counters survive exactly while measured values stay floats; floats are
/// emitted in Rust's shortest round-trip form (non-finite values, which
/// the platform never produces, encode as `null`).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction, no exponent).
    Int(i64),
    /// A floating-point literal.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (accepts both literal kinds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer payload.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer payload as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|v| usize::try_from(v).ok())
    }

    /// Non-negative integer payload as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes this value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip form; it always
                    // carries a fraction or an exponent, so the literal
                    // parses back as a float, bit-for-bit.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => encode_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document from `text` (must consume all input).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes: Vec<char> = text.chars().collect();
        let mut p = JsonParser {
            chars: bytes,
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: position plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Character offset of the failure.
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "char {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), JsonError> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(self.err(format!("expected {c:?}, got {got:?}"))),
            None => Err(self.err(format!("expected {c:?}, got end of input"))),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some('n') => self.literal("null", JsonValue::Null),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('"') => self.string().map(JsonValue::Str),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected {c:?}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(JsonValue::Obj(pairs)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let first = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a \uXXXX low surrogate must
                            // follow.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let second = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(first)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| self.err(format!("bad number {text:?}")))
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(JsonValue::Int(v)),
                // Magnitudes beyond i64 fall back to the float reading.
                Err(_) => text
                    .parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| self.err(format!("bad number {text:?}"))),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Event (de)serialization.
// ---------------------------------------------------------------------------

pub(crate) fn value_token(v: &Value) -> String {
    match v {
        Value::Bool(b) => format!("b{}", *b as u8),
        Value::Tristate(t) => format!("t{t}"),
        Value::Int(i) => format!("i{i}"),
        Value::Choice(c) => format!("c{c}"),
    }
}

pub(crate) fn token_value(s: &str) -> Option<Value> {
    let rest = s.get(1..)?;
    match s.as_bytes().first()? {
        b'b' => match rest {
            "0" => Some(Value::Bool(false)),
            "1" => Some(Value::Bool(true)),
            _ => None,
        },
        b't' => Tristate::parse(rest).map(Value::Tristate),
        b'i' => rest.parse().ok().map(Value::Int),
        b'c' => rest.parse().ok().map(Value::Choice),
        _ => None,
    }
}

pub(crate) fn config_json(config: &Configuration) -> JsonValue {
    JsonValue::Arr(
        config
            .values()
            .iter()
            .map(|v| JsonValue::Str(value_token(v)))
            .collect(),
    )
}

pub(crate) fn config_from_json(v: &JsonValue) -> Option<Configuration> {
    let items = v.as_arr()?;
    let mut values = Vec::with_capacity(items.len());
    for item in items {
        values.push(token_value(item.as_str()?)?);
    }
    Some(Configuration::from_values(values))
}

fn opt_f64(v: Option<f64>) -> JsonValue {
    match v {
        Some(v) if v.is_finite() => JsonValue::Num(v),
        _ => JsonValue::Null,
    }
}

pub(crate) fn phase_str(p: Phase) -> &'static str {
    match p {
        Phase::Build => "build",
        Phase::Boot => "boot",
        Phase::Run => "run",
    }
}

pub(crate) fn phase_from_str(s: &str) -> Option<Phase> {
    match s {
        "build" => Some(Phase::Build),
        "boot" => Some(Phase::Boot),
        "run" => Some(Phase::Run),
        _ => None,
    }
}

fn record_json(r: &Record) -> JsonValue {
    JsonValue::Obj(vec![
        ("v".into(), JsonValue::Int(FORMAT_VERSION)),
        ("event".into(), JsonValue::Str("candidate".into())),
        ("iteration".into(), JsonValue::Int(r.iteration as i64)),
        ("config".into(), config_json(&r.config)),
        ("objective".into(), opt_f64(r.objective)),
        ("metric".into(), opt_f64(r.metric)),
        ("memory_mb".into(), opt_f64(r.memory_mb)),
        (
            "crash_phase".into(),
            match r.crash_phase {
                None => JsonValue::Null,
                Some(p) => JsonValue::Str(phase_str(p).into()),
            },
        ),
        ("build_skipped".into(), JsonValue::Bool(r.build_skipped)),
        ("duration_s".into(), JsonValue::Num(r.duration_s)),
        ("finished_at_s".into(), JsonValue::Num(r.finished_at_s)),
        ("algo_seconds".into(), JsonValue::Num(r.algo_seconds)),
        (
            "algo_memory_bytes".into(),
            JsonValue::Int(r.algo_memory_bytes as i64),
        ),
    ])
}

fn record_from_json(v: &JsonValue) -> Option<Record> {
    Some(Record {
        iteration: v.get("iteration")?.as_usize()?,
        config: config_from_json(v.get("config")?)?,
        objective: v.get("objective")?.as_f64(),
        metric: v.get("metric")?.as_f64(),
        memory_mb: v.get("memory_mb")?.as_f64(),
        crash_phase: match v.get("crash_phase")? {
            JsonValue::Null => None,
            other => Some(phase_from_str(other.as_str()?)?),
        },
        build_skipped: v.get("build_skipped")?.as_bool()?,
        duration_s: v.get("duration_s")?.as_f64()?,
        finished_at_s: v.get("finished_at_s")?.as_f64()?,
        algo_seconds: v.get("algo_seconds")?.as_f64().unwrap_or(0.0),
        algo_memory_bytes: v.get("algo_memory_bytes")?.as_usize()?,
    })
}

fn wave_stats_json(w: &WaveStats) -> JsonValue {
    JsonValue::Obj(vec![
        ("v".into(), JsonValue::Int(FORMAT_VERSION)),
        ("event".into(), JsonValue::Str("wave_completed".into())),
        ("wave".into(), JsonValue::Int(w.wave as i64)),
        ("size".into(), JsonValue::Int(w.size as i64)),
        ("wall_s".into(), JsonValue::Num(w.wall_s)),
        ("busy_s".into(), JsonValue::Num(w.busy_s)),
        ("cache_hits".into(), JsonValue::Int(w.cache_hits as i64)),
        ("cache_misses".into(), JsonValue::Int(w.cache_misses as i64)),
    ])
}

fn epoch_from_json(v: &JsonValue) -> Option<StoredEpoch> {
    Some(StoredEpoch {
        epoch: v.get("epoch")?.as_usize()?,
        first_iteration: v.get("first_iteration")?.as_usize()?,
        at_s: v.get("at_s")?.as_f64()?,
        transfer: v.get("transfer")?.as_bool()?,
        phase: v.get("phase")?.as_str()?.to_string(),
        oracle_metric: v.get("oracle_metric")?.as_f64()?,
    })
}

fn drift_from_json(v: &JsonValue) -> Option<StoredDrift> {
    Some(StoredDrift {
        epoch: v.get("epoch")?.as_usize()?,
        at_iteration: v.get("at_iteration")?.as_usize()?,
        at_s: v.get("at_s")?.as_f64()?,
        detector: v.get("detector")?.as_str()?.to_string(),
        signal: v.get("signal")?.as_f64()?,
        baseline: v.get("baseline")?.as_f64()?,
    })
}

fn wave_stats_from_json(v: &JsonValue) -> Option<WaveStats> {
    Some(WaveStats {
        wave: v.get("wave")?.as_usize()?,
        size: v.get("size")?.as_usize()?,
        wall_s: v.get("wall_s")?.as_f64()?,
        busy_s: v.get("busy_s")?.as_f64()?,
        cache_hits: v.get("cache_hits")?.as_u64()?,
        cache_misses: v.get("cache_misses")?.as_u64()?,
    })
}

/// Serializes one [`SessionEvent`] as a versioned JSON object.
pub fn event_json(event: &SessionEvent) -> JsonValue {
    let tagged = |tag: &str, mut rest: Vec<(String, JsonValue)>| {
        let mut pairs = vec![
            ("v".into(), JsonValue::Int(FORMAT_VERSION)),
            ("event".into(), JsonValue::Str(tag.into())),
        ];
        pairs.append(&mut rest);
        JsonValue::Obj(pairs)
    };
    match event {
        SessionEvent::SessionStarted {
            descriptor,
            seed,
            workers,
            first_iteration,
        } => tagged(
            "session_started",
            vec![
                ("target".into(), JsonValue::Str(descriptor.name.clone())),
                ("app".into(), JsonValue::Str(descriptor.app.clone())),
                ("metric".into(), JsonValue::Str(descriptor.metric.clone())),
                // u64 seeds are stored as strings so the full range
                // survives the i64-based integer literal.
                ("seed".into(), JsonValue::Str(seed.to_string())),
                ("workers".into(), JsonValue::Int(*workers as i64)),
                (
                    "first_iteration".into(),
                    JsonValue::Int(*first_iteration as i64),
                ),
            ],
        ),
        SessionEvent::WaveDispatched {
            wave,
            first_iteration,
            size,
        } => tagged(
            "wave_dispatched",
            vec![
                ("wave".into(), JsonValue::Int(*wave as i64)),
                (
                    "first_iteration".into(),
                    JsonValue::Int(*first_iteration as i64),
                ),
                ("size".into(), JsonValue::Int(*size as i64)),
            ],
        ),
        SessionEvent::CandidateEvaluated(record) => record_json(record),
        SessionEvent::NewBest {
            iteration,
            objective,
        } => tagged(
            "new_best",
            vec![
                ("iteration".into(), JsonValue::Int(*iteration as i64)),
                ("objective".into(), JsonValue::Num(*objective)),
            ],
        ),
        SessionEvent::DriftDetected {
            epoch,
            at_iteration,
            at_s,
            detector,
            signal,
            baseline,
        } => tagged(
            "drift_detected",
            vec![
                ("epoch".into(), JsonValue::Int(*epoch as i64)),
                ("at_iteration".into(), JsonValue::Int(*at_iteration as i64)),
                ("at_s".into(), JsonValue::Num(*at_s)),
                ("detector".into(), JsonValue::Str(detector.clone())),
                ("signal".into(), JsonValue::Num(*signal)),
                ("baseline".into(), JsonValue::Num(*baseline)),
            ],
        ),
        SessionEvent::EpochStarted {
            epoch,
            first_iteration,
            at_s,
            transfer,
            phase,
            oracle_metric,
        } => tagged(
            "epoch_started",
            vec![
                ("epoch".into(), JsonValue::Int(*epoch as i64)),
                (
                    "first_iteration".into(),
                    JsonValue::Int(*first_iteration as i64),
                ),
                ("at_s".into(), JsonValue::Num(*at_s)),
                ("transfer".into(), JsonValue::Bool(*transfer)),
                ("phase".into(), JsonValue::Str(phase.clone())),
                ("oracle_metric".into(), JsonValue::Num(*oracle_metric)),
            ],
        ),
        SessionEvent::WaveCompleted(stats) => wave_stats_json(stats),
        SessionEvent::CheckpointWritten { iterations } => tagged(
            "checkpoint",
            vec![("iterations".into(), JsonValue::Int(*iterations as i64))],
        ),
        SessionEvent::SessionFinished(summary) => tagged(
            "session_finished",
            vec![
                (
                    "iterations".into(),
                    JsonValue::Int(summary.iterations as i64),
                ),
                ("crash_rate".into(), JsonValue::Num(summary.crash_rate)),
                ("elapsed_s".into(), JsonValue::Num(summary.elapsed_s)),
                ("compute_s".into(), JsonValue::Num(summary.compute_s)),
                ("waves".into(), JsonValue::Int(summary.waves as i64)),
                ("workers".into(), JsonValue::Int(summary.workers as i64)),
            ],
        ),
    }
}

// ---------------------------------------------------------------------------
// The sink and the store.
// ---------------------------------------------------------------------------

/// An [`EventSink`] appending every event to a store's `events.jsonl`.
///
/// Writes are batched per wave: events accumulate (already encoded and
/// hash-chained) in an in-memory buffer, and one `write` syscall plus a
/// flush lands the whole wave — its candidates, any epoch lines, its
/// `wave_completed`, and the trailing `checkpoint` line marking how many
/// evaluations are durable (the [`SessionEvent::CheckpointWritten`]
/// moment of the stream) — at the wave boundary. `SessionStarted` and
/// `SessionFinished` commit immediately, so segment markers are durable
/// before any compute burns. Torn-tail semantics are unchanged: a kill
/// lands either before a wave's single write (the wave is simply absent)
/// or inside it (a clean prefix plus at most one torn line, which the
/// loader heals). I/O errors are sticky: the first one is kept (see
/// [`JsonlSink::error`]) and subsequent events are dropped rather than
/// panicking mid-session.
pub struct JsonlSink {
    file: File,
    /// Encoded, chained, newline-terminated lines of the in-flight wave.
    buf: String,
    iterations: usize,
    checkpoints: usize,
    prev: u64,
    error: Option<io::Error>,
}

impl JsonlSink {
    /// Opens `path` in append mode (creating it if missing). A torn
    /// final line left by a killed writer is truncated away first: the
    /// loader ignores it anyway, and appending after it would glue the
    /// next event onto the fragment — turning a tolerated torn tail into
    /// hard mid-file corruption on every later load. The hash chain is
    /// seeded from the surviving tail line, so a resumed log stays one
    /// unbroken chain across run segments.
    pub fn append(path: &Path) -> io::Result<JsonlSink> {
        heal_torn_tail(path)?;
        let prev = tail_hash(path)?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            file,
            buf: String::new(),
            iterations: 0,
            checkpoints: 0,
            prev,
            error: None,
        })
    }

    /// Number of checkpoint lines written by this sink.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints
    }

    /// The first I/O error hit, if any — callers should check after the
    /// run, since [`EventSink::on_event`] cannot report failures.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Commits any buffered lines and flushes them to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            let bytes = std::mem::take(&mut self.buf);
            self.file.write_all(bytes.as_bytes())?;
        }
        self.file.flush()
    }

    /// Encodes, chains, and buffers one line (no I/O).
    fn buffer_line(&mut self, value: JsonValue) {
        if self.error.is_some() {
            return;
        }
        let line = chain_value(value, self.prev).encode();
        self.prev = line_hash(&line);
        self.buf.push_str(&line);
        self.buf.push('\n');
    }

    /// Writes the buffered lines with one syscall and flushes.
    fn commit(&mut self) {
        if self.error.is_some() {
            self.buf.clear();
            return;
        }
        if let Err(e) = self.flush() {
            self.error = Some(e);
        }
    }
}

/// Inserts the `prev` chain field (hash of the prior line) right after
/// the version stamp.
fn chain_value(value: JsonValue, prev: u64) -> JsonValue {
    match value {
        JsonValue::Obj(mut pairs) => {
            let at = pairs.len().min(1);
            pairs.insert(at, ("prev".into(), JsonValue::Str(chain_hex(prev))));
            JsonValue::Obj(pairs)
        }
        other => other,
    }
}

/// The chain state a sink appending to `path` starts from: the hash of
/// the last non-blank line, or [`CHAIN_GENESIS`] for a missing or empty
/// log.
fn tail_hash(path: &Path) -> io::Result<u64> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(CHAIN_GENESIS),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .map_or(CHAIN_GENESIS, line_hash))
}

/// Truncates an unterminated final line (the signature of a writer
/// killed mid-write) so the log ends at a record boundary again.
fn heal_torn_tail(path: &Path) -> io::Result<()> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if bytes.last().is_none_or(|b| *b == b'\n') {
        return Ok(());
    }
    let keep = bytes.iter().rposition(|b| *b == b'\n').map_or(0, |p| p + 1);
    OpenOptions::new()
        .write(true)
        .open(path)?
        .set_len(keep as u64)
}

impl EventSink for JsonlSink {
    fn on_event(&mut self, event: &SessionEvent) {
        self.buffer_line(event_json(event));
        match event {
            SessionEvent::CandidateEvaluated(r) => self.iterations = r.iteration + 1,
            SessionEvent::WaveCompleted(_) if self.error.is_none() => {
                // One write for the whole wave, checkpoint line included:
                // the store either has the complete wave or none of it
                // (modulo a torn final line, which the loader heals).
                self.checkpoints += 1;
                let iterations = self.iterations;
                self.buffer_line(event_json(&SessionEvent::CheckpointWritten { iterations }));
                self.commit();
            }
            // Segment markers are durable immediately.
            SessionEvent::SessionStarted { .. } | SessionEvent::SessionFinished(_) => {
                self.commit();
            }
            _ => {}
        }
    }
}

/// Errors opening, reading, or writing a session store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// `create` refused to overwrite an existing store.
    AlreadyExists {
        /// The existing manifest path.
        path: PathBuf,
    },
    /// The directory has no manifest — not a session store.
    NotAStore {
        /// The missing manifest path.
        path: PathBuf,
    },
    /// The manifest exists but does not parse as a job file.
    Manifest {
        /// The manifest path.
        path: PathBuf,
        /// The job-file parse error.
        message: String,
    },
    /// An event line (other than a torn final line) failed to parse or
    /// is inconsistent with the lines before it.
    Corrupt {
        /// The event-log path.
        path: PathBuf,
        /// One-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            StoreError::AlreadyExists { path } => write!(
                f,
                "{} already exists — resume it or pick a fresh directory",
                path.display()
            ),
            StoreError::NotAStore { path } => {
                write!(f, "{} not found — not a session store", path.display())
            }
            StoreError::Manifest { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            StoreError::Corrupt {
                path,
                line,
                message,
            } => write!(f, "{} line {line}: {message}", path.display()),
        }
    }
}

impl std::error::Error for StoreError {}

/// One `epoch_started` line of a continuous session, as stored.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredEpoch {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Global iteration index of the epoch's first candidate.
    pub first_iteration: usize,
    /// Virtual compute time the epoch opened at.
    pub at_s: f64,
    /// Whether the epoch's search was transfer-seeded.
    pub transfer: bool,
    /// Workload phase active when the epoch opened.
    pub phase: String,
    /// Ground-truth oracle metric of that phase.
    pub oracle_metric: f64,
}

/// One `drift_detected` line of a continuous session, as stored.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredDrift {
    /// The epoch the detection closed.
    pub epoch: usize,
    /// Iteration whose telemetry sample triggered the verdict.
    pub at_iteration: usize,
    /// Virtual compute time of that sample.
    pub at_s: f64,
    /// Detector name.
    pub detector: String,
    /// The detector's signal estimate at the verdict.
    pub signal: f64,
    /// The detector's frozen baseline estimate.
    pub baseline: f64,
}

/// Everything a store's event log contained, reduced to replayable form.
///
/// Only *complete* waves are kept: candidates written before a crash that
/// never saw their `wave_completed` line are counted in
/// [`StoredSession::dropped_records`] and re-evaluated on resume (their
/// iteration indices are re-proposed identically, so nothing is lost but
/// the partial wave's compute). Epoch and drift lines of a dropped wave
/// are dropped with it — resume re-detects the same boundary.
#[derive(Clone, Debug)]
pub struct StoredSession {
    /// The resolved job from the manifest.
    pub job: Job,
    /// Records of every complete wave, in iteration order.
    pub records: Vec<Record>,
    /// Wave shapes covering `records`, oldest first.
    pub wave_sizes: Vec<usize>,
    /// Per-wave scheduling stats, as stored.
    pub wave_stats: Vec<WaveStats>,
    /// `(iteration, objective)` of every stored best improvement.
    pub new_bests: Vec<(usize, f64)>,
    /// Epoch records of a continuous session, in epoch order (empty for
    /// one-shot sessions).
    pub epochs: Vec<StoredEpoch>,
    /// Confirmed drift detections, oldest first.
    pub drift_events: Vec<StoredDrift>,
    /// Checkpoint lines seen.
    pub checkpoints: usize,
    /// Whether a `session_finished` line closed the log.
    pub finished: bool,
    /// Trailing candidate records dropped because their wave never
    /// completed (plus any torn final line).
    pub dropped_records: usize,
}

impl StoredSession {
    /// Rebuilds the [`History`] the stored records describe.
    pub fn history(&self) -> History {
        let mut h = History::new();
        for r in &self.records {
            h.push(r.clone());
        }
        h
    }
}

/// A session store directory: `manifest.yaml` + `events.jsonl`.
#[derive(Clone, Debug)]
pub struct SessionStore {
    dir: PathBuf,
}

impl SessionStore {
    /// Creates a fresh store at `dir` (creating the directory) and writes
    /// the manifest. Refuses to clobber an existing store.
    pub fn create(dir: impl AsRef<Path>, job: &Job) -> Result<SessionStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            return Err(StoreError::AlreadyExists { path: manifest });
        }
        std::fs::write(&manifest, job.to_yaml()).map_err(|source| StoreError::Io {
            path: manifest.clone(),
            source,
        })?;
        Ok(SessionStore { dir })
    }

    /// Opens an existing store.
    pub fn open(dir: impl AsRef<Path>) -> Result<SessionStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = dir.join(MANIFEST_FILE);
        if !manifest.exists() {
            return Err(StoreError::NotAStore { path: manifest });
        }
        Ok(SessionStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the event log.
    pub fn events_path(&self) -> PathBuf {
        self.dir.join(EVENTS_FILE)
    }

    /// Parses the manifest back into a [`Job`].
    pub fn manifest(&self) -> Result<Job, StoreError> {
        let path = self.dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).map_err(|source| StoreError::Io {
            path: path.clone(),
            source,
        })?;
        Job::parse(&text).map_err(|e| StoreError::Manifest {
            path,
            message: e.to_string(),
        })
    }

    /// Rewrites the manifest (e.g. a resume that extends the budget keeps
    /// the manifest authoritative for the *current* resolved job).
    pub fn rewrite_manifest(&self, job: &Job) -> Result<(), StoreError> {
        let path = self.dir.join(MANIFEST_FILE);
        std::fs::write(&path, job.to_yaml()).map_err(|source| StoreError::Io { path, source })
    }

    /// Opens the event log for appending.
    pub fn sink(&self) -> Result<JsonlSink, StoreError> {
        let path = self.events_path();
        JsonlSink::append(&path).map_err(|source| StoreError::Io { path, source })
    }

    /// Loads the manifest and replays the event log into a
    /// [`StoredSession`]. A missing log is an empty (never-run) session;
    /// a torn final line and a trailing incomplete wave are dropped.
    pub fn load(&self) -> Result<StoredSession, StoreError> {
        let job = self.manifest()?;
        let path = self.events_path();
        let mut out = StoredSession {
            job,
            records: Vec::new(),
            wave_sizes: Vec::new(),
            wave_stats: Vec::new(),
            new_bests: Vec::new(),
            epochs: Vec::new(),
            drift_events: Vec::new(),
            checkpoints: 0,
            finished: false,
            dropped_records: 0,
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(source) => return Err(StoreError::Io { path, source }),
        };
        let corrupt = |line: usize, message: String| StoreError::Corrupt {
            path: path.clone(),
            line,
            message,
        };

        // Candidates of the wave currently being read.
        let mut pending: Vec<Record> = Vec::new();
        // Running hash-chain state: the hash of the previous non-blank
        // line, which every version-2 line must carry as `prev`.
        let mut chain = CHAIN_GENESIS;
        let lines: Vec<&str> = text.lines().collect();
        for (i, raw) in lines.iter().enumerate() {
            let lineno = i + 1;
            let last = i + 1 == lines.len();
            if raw.trim().is_empty() {
                continue;
            }
            let value = match JsonValue::parse(raw) {
                Ok(v) => v,
                // A torn final line is the signature of a killed writer.
                Err(_) if last => break,
                Err(e) => return Err(corrupt(lineno, format!("bad JSON: {e}"))),
            };
            let version = value.get("v").and_then(JsonValue::as_i64).unwrap_or(-1);
            verify_line_chain(&value, version, &mut chain, raw)
                .map_err(|message| corrupt(lineno, message))?;
            let kind = value
                .get("event")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| corrupt(lineno, "missing event tag".into()))?;
            match kind {
                "session_started" => {
                    // A new run segment: candidates of an incomplete wave
                    // from the previous segment were never observed by the
                    // algorithm and will be re-evaluated — along with any
                    // best-improvement markers they had already logged.
                    // Epoch and drift lines of that wave go too: the
                    // resumed segment re-detects the boundary and logs
                    // identical lines (the scan is deterministic).
                    out.dropped_records += pending.len();
                    pending.clear();
                    out.new_bests.retain(|(i, _)| *i < out.records.len());
                    out.drift_events
                        .retain(|d| d.at_iteration < out.records.len());
                    out.epochs
                        .retain(|e| e.first_iteration <= out.records.len());
                    out.finished = false;
                }
                "candidate" => {
                    let record = record_from_json(&value)
                        .ok_or_else(|| corrupt(lineno, "malformed candidate record".into()))?;
                    let expected = out.records.len() + pending.len();
                    if record.iteration != expected {
                        return Err(corrupt(
                            lineno,
                            format!(
                                "iteration {} where {expected} was expected",
                                record.iteration
                            ),
                        ));
                    }
                    pending.push(record);
                }
                "wave_completed" => {
                    let stats = wave_stats_from_json(&value)
                        .ok_or_else(|| corrupt(lineno, "malformed wave stats".into()))?;
                    if stats.size != pending.len() {
                        return Err(corrupt(
                            lineno,
                            format!(
                                "wave of {} completed but {} candidate(s) were recorded",
                                stats.size,
                                pending.len()
                            ),
                        ));
                    }
                    out.wave_sizes.push(stats.size);
                    out.wave_stats.push(stats);
                    out.records.append(&mut pending);
                }
                "new_best" => {
                    let iteration = value
                        .get("iteration")
                        .and_then(JsonValue::as_usize)
                        .ok_or_else(|| corrupt(lineno, "malformed new_best".into()))?;
                    let objective = value
                        .get("objective")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| corrupt(lineno, "malformed new_best".into()))?;
                    out.new_bests.push((iteration, objective));
                }
                "drift_detected" => {
                    let drift = drift_from_json(&value)
                        .ok_or_else(|| corrupt(lineno, "malformed drift_detected".into()))?;
                    out.drift_events.push(drift);
                }
                "epoch_started" => {
                    let epoch = epoch_from_json(&value)
                        .ok_or_else(|| corrupt(lineno, "malformed epoch_started".into()))?;
                    // A resumed segment re-announces the epoch it picks
                    // up in (epoch 0 on every fresh-start retry, a
                    // re-detected boundary after a dropped wave): the
                    // latest line wins, deduplicated by epoch index.
                    out.epochs.retain(|e| e.epoch != epoch.epoch);
                    out.epochs.push(epoch);
                }
                "checkpoint" => out.checkpoints += 1,
                "session_finished" => out.finished = true,
                // Dispatch markers and future event kinds are informative
                // only.
                _ => {}
            }
        }
        out.dropped_records += pending.len();
        out.new_bests.retain(|(i, _)| *i < out.records.len());
        // A torn tail drops its wave's epoch and drift lines with it; an
        // epoch that opened exactly at the end of the kept records (its
        // first candidate never ran) is kept — resume continues in it.
        out.drift_events
            .retain(|d| d.at_iteration < out.records.len());
        out.epochs
            .retain(|e| e.first_iteration <= out.records.len());
        out.epochs.sort_by_key(|e| e.epoch);
        Ok(out)
    }

    /// Verifies the event log's per-record hash chain without replaying
    /// it: every version-2 line's `prev` must equal the hash of the line
    /// before it. Tolerates exactly what the loader tolerates — a
    /// missing log, legacy version-1 lines, and a torn (unparseable)
    /// final line. Returns the number of chained lines verified.
    ///
    /// # Examples
    ///
    /// ```
    /// use wf_jobfile::Job;
    /// use wf_platform::SessionStore;
    ///
    /// let dir = std::env::temp_dir().join(format!("wf-verify-doc-{}", std::process::id()));
    /// let _ = std::fs::remove_dir_all(&dir);
    /// let store = SessionStore::create(&dir, &Job::default()).unwrap();
    /// assert_eq!(store.verify_chain().unwrap(), 0); // never run: empty log
    /// std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn verify_chain(&self) -> Result<usize, StoreError> {
        let path = self.events_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(source) => return Err(StoreError::Io { path, source }),
        };
        let mut chain = CHAIN_GENESIS;
        let mut verified = 0usize;
        let lines: Vec<&str> = text.lines().collect();
        for (i, raw) in lines.iter().enumerate() {
            let lineno = i + 1;
            let last = i + 1 == lines.len();
            if raw.trim().is_empty() {
                continue;
            }
            let value = match JsonValue::parse(raw) {
                Ok(v) => v,
                Err(_) if last => break,
                Err(e) => {
                    return Err(StoreError::Corrupt {
                        path,
                        line: lineno,
                        message: format!("bad JSON: {e}"),
                    })
                }
            };
            let version = value.get("v").and_then(JsonValue::as_i64).unwrap_or(-1);
            verify_line_chain(&value, version, &mut chain, raw).map_err(|message| {
                StoreError::Corrupt {
                    path: path.clone(),
                    line: lineno,
                    message,
                }
            })?;
            if version == FORMAT_VERSION {
                verified += 1;
            }
        }
        Ok(verified)
    }
}

/// Checks one parsed log line against the running chain state and
/// advances the state to this line's hash. Version-1 lines predate the
/// chain and carry no `prev`; they still feed the state so a log that
/// upgraded mid-file verifies from the first version-2 line on.
fn verify_line_chain(
    value: &JsonValue,
    version: i64,
    chain: &mut u64,
    raw: &str,
) -> Result<(), String> {
    match version {
        LEGACY_FORMAT_VERSION => {}
        FORMAT_VERSION => {
            let prev = value
                .get("prev")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "version-2 record missing prev hash".to_string())?;
            let expected = chain_hex(*chain);
            if prev != expected {
                return Err(format!(
                    "hash chain broken: prev is {prev} but the prior line hashes to {expected}"
                ));
            }
        }
        other => return Err(format!("unsupported store version {other}")),
    }
    *chain = line_hash(raw);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::DriftConfig;
    use crate::pipeline::{Session, SessionSpec};
    use wf_drift::MeanShift;
    use wf_jobfile::Budget;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::{App, AppId, DriftScenario, DriftSchedule, SimOs};
    use wf_search::RandomSearch;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wf-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn session(iters: usize, workers: usize) -> Session {
        Session::new(
            SimOs::linux_runtime(LinuxVersion::V4_19, 56),
            App::by_id(AppId::Nginx),
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(iters),
                    time_seconds: None,
                },
                seed: 5,
                workers,
                ..SessionSpec::default()
            },
        )
    }

    fn drift_session(iters: usize, workers: usize) -> Session {
        let os = SimOs::linux_runtime(LinuxVersion::V4_19, 56);
        let app = App::by_id(AppId::Nginx);
        let schedule = DriftSchedule::scenario(DriftScenario::Step, &os, &app, 900.0);
        let mut s = Session::new(
            os,
            app,
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(iters),
                    time_seconds: None,
                },
                seed: 5,
                workers,
                ..SessionSpec::default()
            },
        );
        s.enable_drift(DriftConfig {
            schedule,
            detector: Box::new(MeanShift::new(6, 0.15)),
            min_epoch: 8,
            transfer: false,
        });
        s
    }

    #[test]
    fn continuous_store_round_trips_epochs() {
        let dir = temp_dir("epochs");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = drift_session(60, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
            assert!(sink.error().is_none());
        }
        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 60);
        assert!(loaded.epochs.len() >= 2, "the step must close epoch 0");
        assert_eq!(loaded.epochs[0].epoch, 0);
        assert_eq!(loaded.epochs[0].first_iteration, 0);
        assert!(!loaded.epochs[0].transfer);
        assert_eq!(loaded.drift_events.len(), loaded.epochs.len() - 1);
        for d in &loaded.drift_events {
            assert!(d.at_iteration < loaded.records.len());
            assert_eq!(d.detector, "mean-shift");
        }
        for pair in loaded.epochs.windows(2) {
            assert_eq!(pair[0].epoch + 1, pair[1].epoch);
            assert!(pair[0].first_iteration < pair[1].first_iteration);
        }
        assert_eq!(s.epoch() + 1, loaded.epochs.len());
        store.verify_chain().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_dropped_wave_takes_its_epoch_events_with_it() {
        // Drift events land inside their closing wave; a torn tail that
        // drops the wave's records must drop the epoch transition too,
        // or a resume would re-detect the same drift and double-count
        // epochs.
        let dir = temp_dir("epochdrop");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = drift_session(60, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        let before = store.load().unwrap();
        // Append an incomplete wave carrying an epoch transition.
        let mut extra = s.history().records()[0].clone();
        extra.iteration = 60;
        {
            let mut sink = store.sink().unwrap();
            sink.on_event(&SessionEvent::CandidateEvaluated(extra));
            sink.on_event(&SessionEvent::DriftDetected {
                epoch: 99,
                at_iteration: 60,
                at_s: 1e6,
                detector: "mean-shift".into(),
                signal: 1.0,
                baseline: 2.0,
            });
            sink.on_event(&SessionEvent::EpochStarted {
                epoch: 100,
                first_iteration: 61,
                at_s: 1e6,
                transfer: false,
                phase: "phantom".into(),
                oracle_metric: 1.0,
            });
            sink.flush().unwrap();
        }
        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 60);
        assert_eq!(loaded.dropped_records, 1);
        assert_eq!(loaded.epochs, before.epochs);
        assert_eq!(loaded.drift_events, before.drift_events);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_encodes_and_parses_round_trip() {
        let doc = JsonValue::Obj(vec![
            ("s".into(), JsonValue::Str("a \"b\"\n\\ päth\u{1}".into())),
            ("i".into(), JsonValue::Int(-42)),
            ("f".into(), JsonValue::Num(0.1)),
            ("e".into(), JsonValue::Num(1.5e-300)),
            ("b".into(), JsonValue::Bool(true)),
            ("n".into(), JsonValue::Null),
            (
                "a".into(),
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Str("x".into())]),
            ),
        ]);
        let text = doc.encode();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn json_parses_unicode_escapes_and_surrogates() {
        let v = JsonValue::parse(r#""aé😀b""#).unwrap();
        assert_eq!(v, JsonValue::Str("aé😀b".into()));
        assert!(JsonValue::parse(r#""\ud83d oops""#).is_err());
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).encode(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn value_tokens_round_trip() {
        for v in [
            Value::Bool(false),
            Value::Bool(true),
            Value::Tristate(Tristate::No),
            Value::Tristate(Tristate::Module),
            Value::Tristate(Tristate::Yes),
            Value::Int(-123456789),
            Value::Int(i64::MAX),
            Value::Choice(7),
        ] {
            assert_eq!(token_value(&value_token(&v)), Some(v));
        }
        assert_eq!(token_value("x1"), None);
        assert_eq!(token_value(""), None);
    }

    #[test]
    fn store_round_trips_a_session() {
        let dir = temp_dir("roundtrip");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(6, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
            assert!(sink.error().is_none());
            assert_eq!(sink.checkpoints(), 3);
        }
        let loaded = SessionStore::open(&dir).unwrap().load().unwrap();
        assert_eq!(loaded.records.len(), 6);
        assert_eq!(loaded.wave_sizes, vec![2, 2, 2]);
        assert_eq!(loaded.checkpoints, 3);
        assert!(loaded.finished);
        assert_eq!(loaded.dropped_records, 0);
        for (stored, live) in loaded.records.iter().zip(s.history().records()) {
            assert_eq!(stored.iteration, live.iteration);
            assert_eq!(stored.config, live.config);
            assert_eq!(
                stored.metric.map(f64::to_bits),
                live.metric.map(f64::to_bits)
            );
            assert_eq!(stored.crash_phase, live.crash_phase);
            assert_eq!(stored.duration_s.to_bits(), live.duration_s.to_bits());
            assert_eq!(stored.finished_at_s.to_bits(), live.finished_at_s.to_bits());
        }
        let history = loaded.history();
        assert_eq!(history.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = temp_dir("clobber");
        let _ = SessionStore::create(&dir, &Job::default()).unwrap();
        assert!(matches!(
            SessionStore::create(&dir, &Job::default()),
            Err(StoreError::AlreadyExists { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_requires_a_manifest() {
        let dir = temp_dir("nostore");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            SessionStore::open(&dir),
            Err(StoreError::NotAStore { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_and_incomplete_wave_are_dropped() {
        let dir = temp_dir("torn");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(6, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        // Append a candidate with no wave_completed, then a torn line.
        let mut extra = s.history().records()[0].clone();
        extra.iteration = 6;
        {
            let mut sink = store.sink().unwrap();
            sink.on_event(&SessionEvent::CandidateEvaluated(extra));
            sink.flush().unwrap();
        }
        let mut f = OpenOptions::new()
            .append(true)
            .open(store.events_path())
            .unwrap();
        f.write_all(b"{\"v\":2,\"event\":\"cand").unwrap();
        drop(f);

        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 6, "complete waves only");
        assert_eq!(loaded.dropped_records, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appending_after_a_torn_tail_heals_the_log() {
        // Regression: resuming a store whose events.jsonl ends mid-line
        // (the kill -9 case) used to glue the next event onto the torn
        // fragment, turning the tolerated torn tail into hard mid-file
        // corruption on every later load.
        let dir = temp_dir("heal");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(4, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        // Kill mid-write: cut into the final line.
        let mut bytes = std::fs::read(store.events_path()).unwrap();
        bytes.truncate(bytes.len() - 10);
        std::fs::write(store.events_path(), &bytes).unwrap();

        // Resume at the platform level: replay the surviving waves into a
        // larger-budget twin and continue through an append sink.
        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 4);
        let mut resumed = session(6, 2);
        resumed.replay(&loaded.records, &loaded.wave_sizes).unwrap();
        {
            let mut sink = store.sink().unwrap();
            let _ = resumed.run_with(&mut sink);
        }

        // Every later load keeps working: the torn line is gone and both
        // segments parse.
        let full = store.load().unwrap();
        assert_eq!(full.records.len(), 6);
        assert!(full.finished);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn new_bests_of_a_dropped_wave_are_dropped_too() {
        // Regression: improvement markers logged by an incomplete wave
        // used to survive the wave's own records being dropped, so the
        // report listed (and a resume duplicated) bests with no record.
        let dir = temp_dir("bestdrop");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(4, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        let before = store.load().unwrap();
        let mut extra = s.history().records()[0].clone();
        extra.iteration = 4;
        {
            let mut sink = store.sink().unwrap();
            sink.on_event(&SessionEvent::CandidateEvaluated(extra));
            sink.on_event(&SessionEvent::NewBest {
                iteration: 4,
                objective: 1e9,
            });
            sink.flush().unwrap();
        }

        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 4);
        assert_eq!(loaded.dropped_records, 1);
        assert_eq!(
            loaded.new_bests, before.new_bests,
            "a dropped wave leaves no improvement markers behind"
        );
        assert!(loaded.new_bests.iter().all(|(i, _)| *i < 4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = temp_dir("corrupt");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(4, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        let text = std::fs::read_to_string(store.events_path()).unwrap();
        let broken = text.replacen("\"event\":\"candidate\"", "\"event\":\"candidate", 1);
        assert_ne!(text, broken);
        std::fs::write(store.events_path(), broken).unwrap();
        assert!(matches!(store.load(), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_through_the_store() {
        let dir = temp_dir("manifest");
        let job = Job {
            name: "stored".into(),
            os: "linux-6.0".into(),
            seed: 17,
            ..Job::default()
        };
        let store = SessionStore::create(&dir, &job).unwrap();
        assert_eq!(store.manifest().unwrap(), job);
        let extended = Job {
            budget: Budget {
                iterations: Some(99),
                time_seconds: None,
            },
            ..job.clone()
        };
        store.rewrite_manifest(&extended).unwrap();
        assert_eq!(store.manifest().unwrap().budget.iterations, Some(99));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hash_chain_verifies_end_to_end() {
        let dir = temp_dir("chain");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(6, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        let lines = std::fs::read_to_string(store.events_path()).unwrap();
        let count = lines.lines().count();
        assert_eq!(store.verify_chain().unwrap(), count);
        // Appending a second segment continues the same chain.
        let mut resumed = session(8, 2);
        let loaded = store.load().unwrap();
        resumed.replay(&loaded.records, &loaded.wave_sizes).unwrap();
        {
            let mut sink = store.sink().unwrap();
            let _ = resumed.run_with(&mut sink);
        }
        assert!(store.verify_chain().unwrap() > count);
        assert!(store.load().unwrap().finished);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_lines_break_the_chain() {
        let dir = temp_dir("tamper");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(4, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        // Flip a value mid-file, keeping the line valid JSON: the edited
        // line still parses, but the next line's prev no longer matches.
        let text = std::fs::read_to_string(store.events_path()).unwrap();
        let broken = text.replacen("\"build_skipped\":false", "\"build_skipped\":true", 1);
        assert_ne!(text, broken, "expected a build_skipped:false record");
        std::fs::write(store.events_path(), broken).unwrap();
        let err = store.load().unwrap_err();
        assert!(
            err.to_string().contains("hash chain broken"),
            "unexpected error: {err}"
        );
        assert!(matches!(
            store.verify_chain(),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deleted_lines_break_the_chain() {
        let dir = temp_dir("deleted");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(4, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        let text = std::fs::read_to_string(store.events_path()).unwrap();
        let without_third: Vec<&str> = text
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, l)| l)
            .collect();
        std::fs::write(store.events_path(), without_third.join("\n") + "\n").unwrap();
        assert!(matches!(store.load(), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Strips the chain fields from a log, turning it into the exact
    /// bytes a version-1 writer would have produced.
    fn downgrade_to_v1(path: &Path) {
        let text = std::fs::read_to_string(path).unwrap();
        let mut out = String::new();
        for line in text.lines() {
            let mut value = JsonValue::parse(line).unwrap();
            if let JsonValue::Obj(pairs) = &mut value {
                pairs.retain(|(k, _)| k != "prev");
                for (k, v) in pairs.iter_mut() {
                    if k == "v" {
                        *v = JsonValue::Int(LEGACY_FORMAT_VERSION);
                    }
                }
            }
            out.push_str(&value.encode());
            out.push('\n');
        }
        std::fs::write(path, out).unwrap();
    }

    #[test]
    fn legacy_v1_logs_still_load_and_upgrade_in_place() {
        let dir = temp_dir("legacy");
        let store = SessionStore::create(&dir, &Job::default()).unwrap();
        let mut s = session(4, 2);
        {
            let mut sink = store.sink().unwrap();
            let _ = s.run_with(&mut sink);
        }
        downgrade_to_v1(&store.events_path());

        // A pre-chain log loads, and verify_chain has nothing to check.
        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 4);
        assert!(loaded.finished);
        assert_eq!(store.verify_chain().unwrap(), 0);

        // A resume appends version-2 lines chained off the legacy tail;
        // the mixed log loads and the new suffix verifies.
        let mut resumed = session(6, 2);
        resumed.replay(&loaded.records, &loaded.wave_sizes).unwrap();
        {
            let mut sink = store.sink().unwrap();
            let _ = resumed.run_with(&mut sink);
        }
        let full = store.load().unwrap();
        assert_eq!(full.records.len(), 6);
        assert!(store.verify_chain().unwrap() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
