//! The §3.4 exploration-space inference heuristic.
//!
//! "We first determine all configuration options by booting a VM ... and
//! listing writable files in these paths. For each writable file, we read
//! it and assume the value returned corresponds to the default ... If it
//! is a number and equals 0 or 1, we assume the option is boolean. If it
//! is neither 0 nor 1, we treat it as an arbitrary integer. Finally, we
//! estimate the range of possible values ... by scaling up and down the
//! default value several times by a high factor (10) and attempting to set
//! the option ... If the write operation succeeds and the VM does not
//! crash, we consider the new value to be in the valid range."
//!
//! The heuristic is *deliberately imperfect* in the same ways the paper's
//! is: integer options whose default happens to be 0 or 1 are
//! misclassified as booleans, and non-numeric options are skipped
//! ("we call back to manual exploration when necessary").

use wf_configspace::{ParamKind, ParamSpec, Stage, Value};
use wf_ossim::SysctlTree;

/// How many ×10 scalings are attempted in each direction.
const SCALE_STEPS: u32 = 6;

/// The outcome of probing one kernel's runtime tree.
#[derive(Clone, Debug, Default)]
pub struct ProbeReport {
    /// Inferred runtime parameters.
    pub specs: Vec<ParamSpec>,
    /// Writable but non-numeric files, left for manual exploration.
    pub skipped_non_numeric: Vec<String>,
    /// Total write attempts issued.
    pub writes_attempted: usize,
    /// Probe writes that crashed the probe VM.
    pub probe_crashes: usize,
}

/// Probes a sysctl tree, inferring types and ranges per §3.4.
///
/// `crash_probe(name, value)` reports whether setting `name` to `value`
/// crashes the probe VM (the tree itself only validates types/ranges, like
/// a sysctl handler; crashes are a systemic effect).
pub fn probe_runtime_space(
    tree: &mut SysctlTree,
    crash_probe: &mut dyn FnMut(&str, &str) -> bool,
) -> ProbeReport {
    let mut report = ProbeReport::default();
    let names: Vec<String> = tree
        .list_writable()
        .into_iter()
        .map(str::to_string)
        .collect();
    for name in names {
        let Some(default_text) = tree.read(&name) else {
            continue;
        };
        let Ok(default) = default_text.trim().parse::<i64>() else {
            report.skipped_non_numeric.push(name);
            continue;
        };
        if default == 0 || default == 1 {
            // §3.4: defaults of 0/1 are assumed boolean.
            report.specs.push(
                ParamSpec::new(&name, ParamKind::Bool, Stage::Runtime)
                    .with_default(Value::Bool(default == 1))
                    .with_doc("probed: boolean (default 0/1)"),
            );
            continue;
        }
        // Arbitrary integer: scale by ×10 in both directions.
        let mut lo = default;
        let mut hi = default;
        for step in 1..=SCALE_STEPS {
            let candidate = default.saturating_mul(10i64.saturating_pow(step));
            if candidate == hi {
                break;
            }
            if try_value(tree, crash_probe, &name, candidate, &mut report) {
                hi = candidate;
            } else {
                break;
            }
        }
        for step in 1..=SCALE_STEPS {
            let candidate = default / 10i64.pow(step);
            if candidate == lo || candidate == 0 && lo == 1 {
                break;
            }
            if try_value(tree, crash_probe, &name, candidate, &mut report) {
                lo = candidate;
            } else {
                break;
            }
            if candidate == 0 {
                break;
            }
        }
        // Restore the default for subsequent probes. The value came from
        // `tree.read` above, so the tree cannot reject it.
        tree.write(&name, &default.to_string())
            .expect("restoring a parameter's own default");
        let kind = if lo >= 0 && hi - lo >= 1000 {
            ParamKind::log_int(lo, hi)
        } else {
            ParamKind::int(lo.min(hi), hi.max(lo))
        };
        report.specs.push(
            ParamSpec::new(&name, kind, Stage::Runtime)
                .with_default(Value::Int(default))
                .with_doc("probed: integer (ranged by x10 scaling)"),
        );
    }
    report
}

/// Attempts one probe write; returns whether the value is accepted *and*
/// survives.
fn try_value(
    tree: &mut SysctlTree,
    crash_probe: &mut dyn FnMut(&str, &str) -> bool,
    name: &str,
    value: i64,
    report: &mut ProbeReport,
) -> bool {
    report.writes_attempted += 1;
    let text = value.to_string();
    if tree.write(name, &text).is_err() {
        return false;
    }
    if crash_probe(name, &text) {
        report.probe_crashes += 1;
        // Crash: value is outside the *viable* range even though the
        // kernel accepted the write.
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_configspace::ConfigSpace;

    fn tree() -> SysctlTree {
        let mut space = ConfigSpace::new();
        space.add(
            ParamSpec::new(
                "net.core.somaxconn",
                ParamKind::log_int(16, 65_535),
                Stage::Runtime,
            )
            .with_default(Value::Int(128)),
        );
        space.add(
            ParamSpec::new("kernel.flagish", ParamKind::int(0, 100), Stage::Runtime)
                .with_default(Value::Int(1)),
        );
        space.add(
            ParamSpec::new("vm.swappiness", ParamKind::int(0, 100), Stage::Runtime)
                .with_default(Value::Int(60)),
        );
        space.add(
            ParamSpec::new(
                "net.ipv4.tcp_congestion_control",
                ParamKind::choices(vec!["cubic", "bbr"]),
                Stage::Runtime,
            )
            .with_default(Value::Choice(0)),
        );
        SysctlTree::from_space(&space)
    }

    #[test]
    fn infers_types_per_the_heuristic() {
        let mut t = tree();
        let mut no_crash = |_: &str, _: &str| false;
        let report = probe_runtime_space(&mut t, &mut no_crash);
        let by_name = |n: &str| report.specs.iter().find(|s| s.name == n);

        // Default 128 -> integer with a x10-probed range.
        let somaxconn = by_name("net.core.somaxconn").expect("probed");
        match &somaxconn.kind {
            ParamKind::Int { min, max, .. } => {
                // 1280 and 12800 accepted, 128000 rejected by the kernel.
                assert_eq!(*max, 12_800);
                // 12 accepted (>=16? no: 12 < 16 -> rejected); floor stays.
                assert!(*min <= 128, "min={min}");
            }
            k => panic!("unexpected kind {k:?}"),
        }

        // Default 1 -> misclassified as boolean, faithfully to §3.4.
        let flagish = by_name("kernel.flagish").expect("probed");
        assert_eq!(flagish.kind, ParamKind::Bool);

        // Default 60 -> integer.
        assert!(matches!(
            by_name("vm.swappiness").unwrap().kind,
            ParamKind::Int { .. }
        ));

        // Strings are skipped.
        assert_eq!(
            report.skipped_non_numeric,
            vec!["net.ipv4.tcp_congestion_control".to_string()]
        );
    }

    #[test]
    fn crash_probe_truncates_range() {
        let mut t = tree();
        // Values above 1000 "crash the VM".
        let mut crash_big = |_: &str, v: &str| v.parse::<i64>().unwrap_or(0) > 1000;
        let report = probe_runtime_space(&mut t, &mut crash_big);
        let swap = report
            .specs
            .iter()
            .find(|s| s.name == "net.core.somaxconn")
            .unwrap();
        match &swap.kind {
            ParamKind::Int { max, .. } => assert!(*max <= 1000, "max={max}"),
            k => panic!("unexpected kind {k:?}"),
        }
        assert!(report.probe_crashes > 0);
    }

    #[test]
    fn defaults_are_restored_after_probing() {
        let mut t = tree();
        let mut no_crash = |_: &str, _: &str| false;
        let _ = probe_runtime_space(&mut t, &mut no_crash);
        assert_eq!(t.read("net.core.somaxconn").as_deref(), Some("128"));
        assert_eq!(t.read("vm.swappiness").as_deref(), Some("60"));
    }
}
