//! The open target abstraction: anything the pipeline can specialize.
//!
//! Wayfinder's exploration loop (§3.1) is generic over "a given
//! configuration space + an automated benchmarking pipeline": nothing in
//! the wave dispatch, image cache, or budget accounting cares *what* is
//! being built, booted, and benchmarked. [`EvalTarget`] captures exactly
//! that contract — the three pipeline phases plus a searchable
//! configuration space and a typed identity ([`TargetDescriptor`]) — so
//! new OSes, applications, and backends plug into [`crate::Session`]
//! without touching the core loop.
//!
//! [`SimTarget`] is the first implementation: the simulated OS substrate
//! (`wf_ossim::SimOs`) paired with a benchmark application
//! (`wf_ossim::App`). Downstream code implements the trait directly (a
//! remote build farm, a hardware testbed, a different simulator) or
//! composes `SimOs` building blocks into new scenarios.

use rand::RngCore;
use std::any::Any;
use wf_configspace::{ConfigSpace, Configuration};
use wf_ossim::{App, BenchResult, CrashReport, KernelImage, MetricDirection, SimOs};

/// The typed identity of a target: who is measured, with what, in which
/// unit, and which way is better. Reports, histories, and `wfctl` print
/// from this descriptor instead of guessing from internal types.
#[derive(Clone, Debug, PartialEq)]
pub struct TargetDescriptor {
    /// Target name, e.g. `linux-4.19-runtime` or `unikraft-nginx`.
    pub name: String,
    /// Application label, e.g. `nginx`, `memcached`, or `boot-probe`.
    pub app: String,
    /// The driving benchmark tool (purple box in Fig. 3).
    pub bench_tool: String,
    /// Primary metric name, e.g. `throughput`, `latency`, `memory`.
    pub metric: String,
    /// Metric unit as printed in reports, e.g. `req/s`.
    pub unit: String,
    /// Whether larger metric values are better.
    pub direction: MetricDirection,
}

/// An evaluation target: a configuration space plus the three pipeline
/// phases (build → boot → bench) the core loop iterates.
///
/// Implementations must be deterministic *per RNG stream*: every virtual
/// draw comes from the `rng` handed in, never from ambient state, so the
/// platform's worker-count-invariance guarantee (see `pipeline`) holds
/// for any target. `Send + Sync` is required because waves evaluate
/// candidates on scoped threads sharing one target reference.
///
/// # Examples
///
/// ```
/// use wf_kconfig::LinuxVersion;
/// use wf_ossim::{App, AppId, SimOs};
/// use wf_platform::{EvalTarget, SimTarget};
///
/// let target = SimTarget::new(
///     SimOs::linux_runtime(LinuxVersion::V4_19, 64),
///     App::by_id(AppId::Nginx),
/// );
/// assert_eq!(target.descriptor().app, "nginx");
/// assert_eq!(target.descriptor().metric, "throughput");
/// assert!(!target.space().is_empty());
/// ```
pub trait EvalTarget: Send + Sync {
    /// The target's typed identity.
    fn descriptor(&self) -> &TargetDescriptor;

    /// The searchable configuration space.
    fn space(&self) -> &ConfigSpace;

    /// Mutable access to the space (pins mark specs as fixed, §3.5).
    fn space_mut(&mut self) -> &mut ConfigSpace;

    /// Replaces the searched space with an explicit one (§3.1: job files
    /// "representing the configuration space of the target OS"). The
    /// target should fold the new specs' defaults into whatever
    /// ground-truth view it keeps, so effect normalization stays exact.
    fn install_space(&mut self, space: ConfigSpace);

    /// Fingerprint of the image a configuration needs; equal fingerprints
    /// share an image through the cache (§3.1's rebuild-skip).
    fn image_fingerprint(&self, config: &Configuration) -> u64;

    /// Builds (or reuses) the image for `config`. Returns the image or a
    /// build-phase crash, plus the virtual seconds spent. `reuse` is a
    /// cache hit with the same fingerprint; `prev` is the last
    /// configuration built in this worker's working tree (incremental
    /// rebuilds).
    fn build(
        &self,
        config: &Configuration,
        reuse: Option<&KernelImage>,
        prev: Option<&Configuration>,
        rng: &mut dyn RngCore,
    ) -> (Result<KernelImage, CrashReport>, f64);

    /// Boots an image and applies the configuration's runtime parameters.
    fn boot(
        &self,
        image: &KernelImage,
        config: &Configuration,
        rng: &mut dyn RngCore,
    ) -> (Result<(), CrashReport>, f64);

    /// Runs one benchmark repetition on a booted system.
    fn bench(
        &self,
        image: &KernelImage,
        config: &Configuration,
        rng: &mut dyn RngCore,
    ) -> (Result<BenchResult, CrashReport>, f64);

    /// Downcast support for ground-truth tooling (e.g. the Table 3
    /// prediction-accuracy runner samples held-out labels straight from a
    /// [`SimTarget`]'s models).
    fn as_any(&self) -> &dyn Any;
}

/// The simulated-testbed target: a [`SimOs`] paired with an [`App`].
///
/// This is the reference [`EvalTarget`]: the five paper targets are all
/// `SimTarget`s, and new simulated scenarios are built by composing a
/// `SimOs` (space, crash rules, timing) with an `App` (ground-truth
/// metric and memory models).
#[derive(Clone, Debug)]
pub struct SimTarget {
    os: SimOs,
    app: App,
    descriptor: TargetDescriptor,
}

impl SimTarget {
    /// Pairs an OS with an application. The descriptor snapshots the OS
    /// name and the app's metric metadata at construction.
    pub fn new(os: SimOs, app: App) -> SimTarget {
        let descriptor = TargetDescriptor {
            name: os.name.clone(),
            app: app.id.label().to_string(),
            bench_tool: app.bench_tool.to_string(),
            metric: app.metric_name.to_string(),
            unit: app.unit.to_string(),
            direction: app.direction,
        };
        SimTarget {
            os,
            app,
            descriptor,
        }
    }

    /// The simulated OS (ground truth: crash rules, timing, footprint).
    pub fn os(&self) -> &SimOs {
        &self.os
    }

    /// The application under test.
    pub fn app(&self) -> &App {
        &self.app
    }
}

impl EvalTarget for SimTarget {
    fn descriptor(&self) -> &TargetDescriptor {
        &self.descriptor
    }

    fn space(&self) -> &ConfigSpace {
        &self.os.space
    }

    fn space_mut(&mut self) -> &mut ConfigSpace {
        &mut self.os.space
    }

    fn install_space(&mut self, space: ConfigSpace) {
        // The explicit space's defaults join the ground-truth view so
        // effect normalization stays exact.
        for spec in space.specs() {
            self.os.defaults_view.set(spec.name.clone(), spec.default);
        }
        self.os.space = space;
    }

    fn image_fingerprint(&self, config: &Configuration) -> u64 {
        self.os.image_fingerprint(config)
    }

    fn build(
        &self,
        config: &Configuration,
        reuse: Option<&KernelImage>,
        prev: Option<&Configuration>,
        mut rng: &mut dyn RngCore,
    ) -> (Result<KernelImage, CrashReport>, f64) {
        self.os.build(config, reuse, prev, &mut rng)
    }

    fn boot(
        &self,
        image: &KernelImage,
        config: &Configuration,
        mut rng: &mut dyn RngCore,
    ) -> (Result<(), CrashReport>, f64) {
        self.os.boot(image, config, &mut rng)
    }

    fn bench(
        &self,
        image: &KernelImage,
        config: &Configuration,
        mut rng: &mut dyn RngCore,
    ) -> (Result<BenchResult, CrashReport>, f64) {
        self.os.bench(&self.app, image, config, &mut rng)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::AppId;

    fn nginx_target() -> SimTarget {
        SimTarget::new(
            SimOs::linux_runtime(LinuxVersion::V4_19, 64),
            App::by_id(AppId::Nginx),
        )
    }

    #[test]
    fn descriptor_snapshots_identity() {
        let t = nginx_target();
        assert_eq!(t.descriptor().name, "linux-4.19-runtime");
        assert_eq!(t.descriptor().app, "nginx");
        assert_eq!(t.descriptor().bench_tool, "wrk");
        assert_eq!(t.descriptor().unit, "req/s");
        assert_eq!(t.descriptor().direction, MetricDirection::HigherBetter);
    }

    #[test]
    fn trait_phases_match_the_underlying_simulator() {
        let t = nginx_target();
        let cfg = t.space().default_config();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let (img_t, s_t) = t.build(&cfg, None, None, &mut a);
        let (img_os, s_os) = t.os().build(&cfg, None, None, &mut b);
        assert_eq!(img_t.as_ref().unwrap(), img_os.as_ref().unwrap());
        assert_eq!(s_t, s_os);
        let img = img_t.unwrap();
        let (r_t, _) = t.bench(&img, &cfg, &mut a);
        let (r_os, _) = t.os().bench(t.app(), &img, &cfg, &mut b);
        assert_eq!(r_t.unwrap(), r_os.unwrap());
    }

    #[test]
    fn install_space_replaces_and_registers_defaults() {
        let mut t = nginx_target();
        let mut space = ConfigSpace::new();
        space.add(
            wf_configspace::ParamSpec::new(
                "custom.knob",
                wf_configspace::ParamKind::int(0, 10),
                wf_configspace::Stage::Runtime,
            )
            .with_default(wf_configspace::Value::Int(5)),
        );
        t.install_space(space);
        assert_eq!(t.space().len(), 1);
        assert_eq!(
            t.os().defaults_view.get("custom.knob"),
            Some(wf_configspace::Value::Int(5))
        );
    }

    #[test]
    fn boot_probe_target_carries_its_own_identity() {
        let t = SimTarget::new(SimOs::linux_riscv_footprint(), App::boot_probe());
        assert_eq!(t.descriptor().app, "boot-probe");
        assert_eq!(t.descriptor().metric, "memory");
        assert_eq!(t.app().id, AppId::BootProbe);
    }
}
