//! The kernel image cache (§3.1's rebuild-skip optimization).
//!
//! "The build task can be skipped if the differences between the current
//! configuration to explore and the previous one only relate to runtime
//! parameters": two configurations with equal compile+boot fingerprints
//! share an image. The cache is bounded (images are gigabytes on a real
//! platform) with least-recently-used eviction.

use std::collections::HashMap;
use std::sync::Mutex;
use wf_ossim::KernelImage;

/// A bounded LRU cache of built kernel images keyed by stage fingerprint.
#[derive(Debug)]
pub struct ImageCache {
    capacity: usize,
    map: HashMap<u64, (KernelImage, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ImageCache {
    /// Creates a cache holding at most `capacity` images.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ImageCache {
            capacity,
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks an image up, refreshing its recency on hit.
    pub fn get(&mut self, fingerprint: u64) -> Option<KernelImage> {
        self.tick += 1;
        match self.map.get_mut(&fingerprint) {
            Some((img, stamp)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(img.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly built image, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, image: KernelImage) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&image.fingerprint) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(image.fingerprint, (image, self.tick));
    }

    /// Number of cached images.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// An [`ImageCache`] shared across evaluation workers behind a lock.
///
/// Every operation takes the lock for its full duration, so the LRU
/// order, the bound `len() <= capacity`, and the invariant
/// `hits + misses == total lookups` hold under arbitrary interleavings —
/// a lookup and the insert that follows it are two separate critical
/// sections, exactly like the real platform where two workers may race to
/// build the same image (both miss, both build, last insert wins).
#[derive(Debug)]
pub struct SharedImageCache {
    inner: Mutex<ImageCache>,
}

impl SharedImageCache {
    /// Creates a shared cache holding at most `capacity` images.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        SharedImageCache {
            inner: Mutex::new(ImageCache::new(capacity)),
        }
    }

    /// Looks an image up, refreshing its recency on hit.
    pub fn get(&self, fingerprint: u64) -> Option<KernelImage> {
        self.lock().get(fingerprint)
    }

    /// Inserts a freshly built image, evicting the LRU entry when full.
    pub fn insert(&self, image: KernelImage) {
        self.lock().insert(image)
    }

    /// Number of cached images.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        self.lock().stats()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ImageCache> {
        // A worker panicking mid-operation cannot leave the map in a
        // broken state (every ImageCache method is atomic over its own
        // fields), so a poisoned lock is recoverable.
        crate::sync::lock_recover(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fp: u64) -> KernelImage {
        KernelImage {
            fingerprint: fp,
            image_mb: 100.0,
            enabled_options: 10,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = ImageCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(image(1));
        assert_eq!(c.get(1).unwrap().fingerprint, 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ImageCache::new(2);
        c.insert(image(1));
        c.insert(image(2));
        let _ = c.get(1); // refresh 1
        c.insert(image(3)); // evicts 2
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_same_fingerprint_does_not_evict() {
        let mut c = ImageCache::new(2);
        c.insert(image(1));
        c.insert(image(2));
        c.insert(image(2));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some());
    }

    #[test]
    fn shared_cache_survives_a_concurrent_hammer() {
        // 8 threads × 400 lookups over 24 overlapping fingerprints against
        // a 16-entry cache: every lookup must be counted exactly once
        // (hits + misses == total lookups) and eviction must never lose an
        // update that would let the map outgrow its capacity.
        const THREADS: u64 = 8;
        const LOOKUPS: u64 = 400;
        const CAPACITY: usize = 16;
        let cache = SharedImageCache::new(CAPACITY);
        crossbeam::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move |_| {
                    for i in 0..LOOKUPS {
                        // Interleave thread-local and shared fingerprints
                        // so hits, misses, inserts, and evictions all race.
                        let fp = (t * 3 + i) % 24;
                        if cache.get(fp).is_none() {
                            cache.insert(image(fp));
                        }
                    }
                });
            }
        })
        .expect("crossbeam scope");
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, THREADS * LOOKUPS, "lost or doubled lookups");
        assert!(misses > 0, "cold lookups must miss");
        assert!(hits > 0, "warm lookups must hit");
        assert!(cache.len() <= CAPACITY, "len {} > capacity", cache.len());
        assert!(!cache.is_empty());
    }
}
