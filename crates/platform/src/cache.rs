//! The kernel image cache (§3.1's rebuild-skip optimization).
//!
//! "The build task can be skipped if the differences between the current
//! configuration to explore and the previous one only relate to runtime
//! parameters": two configurations with equal compile+boot fingerprints
//! share an image. The cache is bounded (images are gigabytes on a real
//! platform) with least-recently-used eviction.

use std::collections::HashMap;
use wf_ossim::KernelImage;

/// A bounded LRU cache of built kernel images keyed by stage fingerprint.
#[derive(Debug)]
pub struct ImageCache {
    capacity: usize,
    map: HashMap<u64, (KernelImage, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ImageCache {
    /// Creates a cache holding at most `capacity` images.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ImageCache {
            capacity,
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks an image up, refreshing its recency on hit.
    pub fn get(&mut self, fingerprint: u64) -> Option<KernelImage> {
        self.tick += 1;
        match self.map.get_mut(&fingerprint) {
            Some((img, stamp)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(img.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly built image, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, image: KernelImage) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&image.fingerprint) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(image.fingerprint, (image, self.tick));
    }

    /// Number of cached images.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fp: u64) -> KernelImage {
        KernelImage {
            fingerprint: fp,
            image_mb: 100.0,
            enabled_options: 10,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = ImageCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(image(1));
        assert_eq!(c.get(1).unwrap().fingerprint, 1);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ImageCache::new(2);
        c.insert(image(1));
        c.insert(image(2));
        let _ = c.get(1); // refresh 1
        c.insert(image(3)); // evicts 2
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_same_fingerprint_does_not_evict() {
        let mut c = ImageCache::new(2);
        c.insert(image(1));
        c.insert(image(2));
        c.insert(image(2));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some());
    }
}
