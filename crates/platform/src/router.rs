//! Performance-aware lane routing for evaluation backends.
//!
//! Real evaluator fleets are heterogeneous: some lanes are faster, some
//! fail. The [`Router`] assigns each wave slot to a backend lane using
//! one of the four wayfinder-gateway strategies
//! (`random | fastest | round-robin | preferred`), keeps per-lane
//! latency/failure statistics, and health-gates lanes whose transport
//! died. [`dispatch_wave`] wraps a backend with the full routed-dispatch
//! protocol: cache probe, routed submission, retry-with-backoff on lane
//! failure, and cache publish.
//!
//! Determinism (see `docs/DETERMINISM.md`): the router only ever observes
//! *virtual* durations — the deterministic per-candidate cost the
//! simulator charges — never host time, so `fastest` routing is a pure
//! function of (seed, history). `random` draws from an RNG stream derived
//! from `(session_seed, wave_index)`. The default `round-robin` strategy
//! reduces to the identity slot → lane assignment on full-width waves,
//! which is exactly the lane discipline the pre-backend pipeline used.
//! Because a candidate's *outcome* derives only from
//! `(session_seed, index)`, lane assignment can shift build durations on
//! compile targets (working-tree reuse) but never metrics or crashes.
//!
//! # Examples
//!
//! ```
//! use wf_jobfile::RoutingStrategy;
//! use wf_platform::router::Router;
//!
//! let mut router = Router::new(RoutingStrategy::Fastest, 3);
//! // Unobserved lanes count as "fastest" so every lane gets explored.
//! assert_eq!(router.assign(3, 42, 0), vec![0, 1, 2]);
//! router.observe(0, 9.0);
//! router.observe(1, 1.0);
//! router.observe(2, 5.0);
//! // Lane 1 has the lowest latency EWMA, so it is preferred now.
//! assert_eq!(router.assign(1, 42, 1), vec![1]);
//! ```

use crate::backend::{EvalBackend, WorkItem, WorkResult};
use crate::cache::SharedImageCache;
use crate::target::EvalTarget;
use crate::workers::{derive_seed, CandidateEval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wf_configspace::Configuration;
pub use wf_jobfile::RoutingStrategy;
use wf_ossim::KernelImage;

/// EWMA smoothing factor for per-lane latency (higher = more reactive).
const EWMA_ALPHA: f64 = 0.3;

/// Stream tag mixed into the session seed for `random` routing draws, so
/// routing never perturbs the candidate evaluation streams.
const STREAM_ROUTE: u64 = 0x524F_5554;

/// Observed statistics for one evaluator lane.
#[derive(Clone, Copy, Debug)]
pub struct LaneStats {
    /// Exponentially-weighted moving average of the lane's per-candidate
    /// virtual duration (seconds). Zero until the first observation.
    pub ewma_s: f64,
    /// Number of completed evaluations observed on this lane.
    pub samples: u64,
    /// Number of transport failures on this lane.
    pub failures: u64,
    /// Whether the lane is accepting work. Lanes are health-gated on
    /// transport failure and stay out of rotation for the session.
    pub healthy: bool,
}

impl LaneStats {
    fn fresh() -> LaneStats {
        LaneStats {
            ewma_s: 0.0,
            samples: 0,
            failures: 0,
            healthy: true,
        }
    }
}

/// Assigns wave slots to evaluator lanes.
///
/// One router instance lives per session; its cursor (round-robin) and
/// EWMA state persist across waves so routing decisions reflect the whole
/// session's observations.
#[derive(Clone, Debug)]
pub struct Router {
    strategy: RoutingStrategy,
    lanes: Vec<LaneStats>,
    cursor: usize,
}

impl Router {
    /// Creates a router over `lanes` evaluator lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(strategy: RoutingStrategy, lanes: usize) -> Router {
        assert!(lanes >= 1, "a router needs at least one lane");
        Router {
            strategy,
            lanes: vec![LaneStats::fresh(); lanes],
            cursor: 0,
        }
    }

    /// Number of lanes (healthy or not).
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// The configured strategy.
    pub fn strategy(&self) -> RoutingStrategy {
        self.strategy
    }

    /// Per-lane statistics, indexed by lane.
    pub fn stats(&self) -> &[LaneStats] {
        &self.lanes
    }

    /// Whether `lane` is currently in rotation.
    pub fn is_healthy(&self, lane: usize) -> bool {
        self.lanes[lane].healthy
    }

    /// Lanes currently in rotation, in ascending order.
    pub fn healthy_lanes(&self) -> Vec<usize> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.healthy)
            .map(|(i, _)| i)
            .collect()
    }

    /// Records a completed evaluation's virtual duration on `lane`.
    ///
    /// Always feed *virtual* (simulated) durations, in a deterministic
    /// order (the pipeline uses candidate order) — host time would make
    /// `fastest` routing nondeterministic.
    pub fn observe(&mut self, lane: usize, duration_s: f64) {
        let s = &mut self.lanes[lane];
        s.ewma_s = if s.samples == 0 {
            duration_s
        } else {
            EWMA_ALPHA * duration_s + (1.0 - EWMA_ALPHA) * s.ewma_s
        };
        s.samples += 1;
    }

    /// Records a transport failure on `lane` and takes it out of
    /// rotation.
    pub fn mark_failure(&mut self, lane: usize) {
        let s = &mut self.lanes[lane];
        s.failures += 1;
        s.healthy = false;
    }

    /// Assigns `slots` wave slots to healthy lanes.
    ///
    /// Deterministic given the router state and `(session_seed,
    /// wave_index)`; multiple slots may share a lane (the backend then
    /// runs them sequentially on that lane).
    ///
    /// # Panics
    ///
    /// Panics if no healthy lanes remain.
    pub fn assign(&mut self, slots: usize, session_seed: u64, wave_index: u64) -> Vec<usize> {
        let healthy = self.healthy_lanes();
        assert!(
            !healthy.is_empty(),
            "no healthy evaluator lanes remain (wave {wave_index})"
        );
        match self.strategy {
            RoutingStrategy::RoundRobin => (0..slots)
                .map(|_| {
                    // Advance the persistent cursor to the next healthy
                    // lane. On full-width all-healthy waves this is the
                    // identity assignment.
                    loop {
                        let lane = self.cursor % self.lanes.len();
                        self.cursor = (self.cursor + 1) % self.lanes.len();
                        if self.lanes[lane].healthy {
                            return lane;
                        }
                    }
                })
                .collect(),
            RoutingStrategy::Random => {
                let mut rng = StdRng::seed_from_u64(derive_seed(
                    derive_seed(session_seed, STREAM_ROUTE),
                    wave_index,
                ));
                (0..slots)
                    .map(|_| healthy[rng.random_range(0..healthy.len())])
                    .collect()
            }
            RoutingStrategy::Fastest => {
                // Healthy lanes ordered by latency EWMA (unobserved lanes
                // sort first so every lane gets explored), ties broken by
                // lane index; slots fill the fastest lanes in order and
                // wrap when the wave is wider than the healthy set.
                let mut ordered = healthy;
                ordered.sort_by(|&a, &b| {
                    self.lanes[a]
                        .ewma_s
                        .partial_cmp(&self.lanes[b].ewma_s)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                (0..slots).map(|s| ordered[s % ordered.len()]).collect()
            }
            RoutingStrategy::Preferred => {
                // Lowest-numbered healthy lanes, wrapping: lane 0 is the
                // "preferred gateway" and unhealthy lanes fall through to
                // the next-lowest survivor.
                (0..slots).map(|s| healthy[s % healthy.len()]).collect()
            }
        }
    }

    /// Re-assigns failed slots across the surviving healthy lanes
    /// (retry routing: failed slot `k` goes to the `k`-th healthy lane,
    /// wrapping).
    ///
    /// # Panics
    ///
    /// Panics if no healthy lanes remain.
    pub fn reassign(&self, count: usize, wave_index: u64) -> Vec<usize> {
        let healthy = self.healthy_lanes();
        assert!(
            !healthy.is_empty(),
            "no healthy evaluator lanes remain (wave {wave_index})"
        );
        (0..count).map(|k| healthy[k % healthy.len()]).collect()
    }
}

/// Retry backoff: 2 ms doubling per attempt, capped at 50 ms. Host time —
/// only reached on transport failure, which is itself a host-level event.
fn backoff(attempt: u32) -> std::time::Duration {
    let ms = (2u64 << attempt.min(5)).min(50);
    std::time::Duration::from_millis(ms)
}

/// Evaluates a wave through a routed backend: the full dispatch protocol
/// the session uses per wave.
///
/// 1. the router assigns each slot a lane;
/// 2. the shared cache is probed sequentially in candidate order
///    (phase 1 of the two-phase cache protocol);
/// 3. items are submitted to the backend; slots that come back as
///    transport-level [`crate::backend::LaneError`]s health-gate their
///    lane and retry (with backoff) on the surviving lanes until every
///    slot has a result;
/// 4. in candidate order: the lane's latency EWMA is fed, working trees
///    advance for successful builds, and built images are published back
///    to the cache (phase 3).
///
/// Returns evaluations in candidate order. `trees` holds one working
/// tree per lane (`trees.len() == router.width()`).
///
/// # Panics
///
/// Panics if every lane has failed (no healthy lanes remain).
#[allow(clippy::too_many_arguments)] // the platform's one dispatch point
pub fn dispatch_wave(
    backend: &mut dyn EvalBackend,
    router: &mut Router,
    target: &Arc<dyn EvalTarget>,
    candidates: &[Configuration],
    first_index: usize,
    session_seed: u64,
    wave_index: u64,
    repetitions: usize,
    cache: &SharedImageCache,
    trees: &mut [Option<Configuration>],
) -> Vec<CandidateEval> {
    assert_eq!(
        trees.len(),
        router.width(),
        "one working tree per router lane"
    );
    let n = candidates.len();
    let lanes = router.assign(n, session_seed, wave_index);

    // Phase 1: probe the cache in candidate order.
    let reuses: Vec<Option<KernelImage>> = candidates
        .iter()
        .map(|c| cache.get(target.image_fingerprint(c)))
        .collect();

    let mut pending: Vec<WorkItem> = (0..n)
        .map(|j| WorkItem {
            slot: j,
            index: first_index + j,
            lane: lanes[j],
            config: candidates[j].clone(),
            reuse: reuses[j].clone(),
            working_tree: trees[lanes[j]].clone(),
        })
        .collect();

    // Phase 2: routed submission with retry on lane failure.
    let mut done: Vec<Option<WorkResult>> = (0..n).map(|_| None).collect();
    let mut attempt = 0u32;
    while !pending.is_empty() {
        let results = backend.run_items(
            target,
            session_seed,
            repetitions,
            std::mem::take(&mut pending),
        );
        let mut failed: Vec<usize> = Vec::new();
        for result in results {
            match result {
                Ok(w) => {
                    let slot = w.slot;
                    done[slot] = Some(w);
                }
                Err(e) => {
                    router.mark_failure(e.lane);
                    failed.push(e.slot);
                }
            }
        }
        if failed.is_empty() {
            break;
        }
        failed.sort_unstable();
        std::thread::sleep(backoff(attempt));
        attempt += 1;
        let retry_lanes = router.reassign(failed.len(), wave_index);
        pending = failed
            .into_iter()
            .zip(retry_lanes)
            .map(|(slot, lane)| WorkItem {
                slot,
                index: first_index + slot,
                lane,
                config: candidates[slot].clone(),
                reuse: reuses[slot].clone(),
                working_tree: trees[lane].clone(),
            })
            .collect();
    }

    // Phase 3: in candidate order — feed the router, advance working
    // trees, publish images, collect evaluations.
    let mut evals = Vec::with_capacity(n);
    for (j, slot) in done.into_iter().enumerate() {
        let w = slot.expect("every slot resolved by the retry loop");
        router.observe(w.lane, w.eval.duration_s);
        if let Some(image) = w.image {
            trees[w.lane] = Some(candidates[j].clone());
            cache.insert(image);
        }
        evals.push(w.eval);
    }
    evals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{InProcessBackend, LaneError, SpawnBackend};
    use crate::target::SimTarget;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::{App, AppId, SimOs};

    fn arc_target() -> Arc<dyn EvalTarget> {
        Arc::new(SimTarget::new(
            SimOs::linux_runtime(LinuxVersion::V4_19, 56),
            App::by_id(AppId::Nginx),
        ))
    }

    #[test]
    fn round_robin_cycles_deterministically() {
        let mut r = Router::new(RoutingStrategy::RoundRobin, 3);
        // Full-width wave: identity assignment.
        assert_eq!(r.assign(3, 1, 0), vec![0, 1, 2]);
        assert_eq!(r.assign(3, 1, 1), vec![0, 1, 2]);
        // Tail wave advances the persistent cursor.
        assert_eq!(r.assign(2, 1, 2), vec![0, 1]);
        assert_eq!(r.assign(2, 1, 3), vec![2, 0]);
    }

    #[test]
    fn round_robin_skips_unhealthy_lanes() {
        let mut r = Router::new(RoutingStrategy::RoundRobin, 3);
        r.mark_failure(1);
        assert_eq!(r.assign(4, 1, 0), vec![0, 2, 0, 2]);
    }

    #[test]
    fn fastest_prefers_the_lane_with_lowest_ewma() {
        let mut r = Router::new(RoutingStrategy::Fastest, 3);
        r.observe(0, 100.0);
        r.observe(1, 10.0);
        r.observe(2, 50.0);
        assert_eq!(r.assign(3, 1, 0), vec![1, 2, 0]);
        // New observations shift the ranking (EWMA, not last-sample).
        for _ in 0..20 {
            r.observe(1, 500.0);
        }
        assert_eq!(r.assign(1, 1, 1), vec![2]);
    }

    #[test]
    fn fastest_explores_unobserved_lanes_first() {
        let mut r = Router::new(RoutingStrategy::Fastest, 3);
        r.observe(0, 1.0);
        // Lanes 1 and 2 are unobserved (EWMA 0) so they sort ahead of
        // lane 0 regardless of its speed.
        assert_eq!(r.assign(3, 1, 0), vec![1, 2, 0]);
    }

    #[test]
    fn preferred_falls_back_on_unhealthy_lanes() {
        let mut r = Router::new(RoutingStrategy::Preferred, 4);
        assert_eq!(r.assign(2, 1, 0), vec![0, 1]);
        r.mark_failure(0);
        r.mark_failure(1);
        assert_eq!(r.assign(3, 1, 1), vec![2, 3, 2]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_wave() {
        let mut a = Router::new(RoutingStrategy::Random, 4);
        let mut b = Router::new(RoutingStrategy::Random, 4);
        assert_eq!(a.assign(8, 99, 0), b.assign(8, 99, 0));
        assert_ne!(
            a.assign(8, 99, 1),
            a.assign(8, 99, 2),
            "different waves draw different streams (overwhelmingly likely)"
        );
    }

    #[test]
    fn random_only_picks_healthy_lanes() {
        let mut r = Router::new(RoutingStrategy::Random, 4);
        r.mark_failure(2);
        for lane in r.assign(64, 7, 0) {
            assert_ne!(lane, 2);
        }
    }

    #[test]
    fn ewma_tracks_failures_and_samples() {
        let mut r = Router::new(RoutingStrategy::RoundRobin, 2);
        r.observe(0, 10.0);
        r.observe(0, 20.0);
        let s = r.stats()[0];
        assert_eq!(s.samples, 2);
        assert!((s.ewma_s - (0.3 * 20.0 + 0.7 * 10.0)).abs() < 1e-12);
        r.mark_failure(1);
        assert_eq!(r.stats()[1].failures, 1);
        assert!(!r.is_healthy(1));
        assert_eq!(r.healthy_lanes(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "no healthy evaluator lanes")]
    fn assign_panics_with_no_healthy_lanes() {
        let mut r = Router::new(RoutingStrategy::RoundRobin, 1);
        r.mark_failure(0);
        r.assign(1, 1, 0);
    }

    #[test]
    fn dispatch_wave_matches_the_legacy_pool_bit_for_bit() {
        // The routed dispatch over either backend must reproduce the
        // legacy Pool::run_wave results exactly (identity lane
        // assignment under default round-robin on full-width waves).
        let target = arc_target();
        let mut rng = StdRng::seed_from_u64(5);
        let candidates: Vec<Configuration> =
            (0..4).map(|_| target.space().sample(&mut rng)).collect();

        let legacy_cache = SharedImageCache::new(8);
        let pool = crate::workers::Pool::new(4);
        let mut legacy_lanes = [None, None, None, None];
        let legacy = pool.run_wave(
            target.as_ref(),
            &candidates,
            0,
            42,
            2,
            &legacy_cache,
            &mut legacy_lanes,
        );

        for make in [
            || Box::new(SpawnBackend::new()) as Box<dyn EvalBackend>,
            || Box::new(InProcessBackend::new(4)) as Box<dyn EvalBackend>,
        ] {
            let mut backend = make();
            let mut router = Router::new(RoutingStrategy::RoundRobin, 4);
            let cache = SharedImageCache::new(8);
            let mut trees = vec![None, None, None, None];
            let routed = dispatch_wave(
                backend.as_mut(),
                &mut router,
                &target,
                &candidates,
                0,
                42,
                0,
                2,
                &cache,
                &mut trees,
            );
            assert_eq!(routed.len(), legacy.len());
            for (a, b) in routed.iter().zip(legacy.iter()) {
                assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
                assert_eq!(a.build_skipped, b.build_skipped);
            }
            assert_eq!(&trees[..], &legacy_lanes[..], "working trees agree");
        }
    }

    /// A backend whose lane 0 fails transport-level on every submission:
    /// the wave must still complete via retry on the surviving lanes.
    struct FlakyLane0 {
        inner: InProcessBackend,
    }

    impl EvalBackend for FlakyLane0 {
        fn label(&self) -> &'static str {
            "flaky"
        }

        fn run_items(
            &mut self,
            target: &Arc<dyn EvalTarget>,
            session_seed: u64,
            repetitions: usize,
            items: Vec<WorkItem>,
        ) -> Vec<Result<WorkResult, LaneError>> {
            let (dead, live): (Vec<WorkItem>, Vec<WorkItem>) =
                items.into_iter().partition(|i| i.lane == 0);
            let mut out: Vec<Result<WorkResult, LaneError>> = dead
                .into_iter()
                .map(|i| {
                    Err(LaneError {
                        slot: i.slot,
                        lane: i.lane,
                        message: "lane 0 is wired to fail".into(),
                    })
                })
                .collect();
            out.extend(
                self.inner
                    .run_items(target, session_seed, repetitions, live),
            );
            out
        }
    }

    #[test]
    fn waves_complete_via_retry_when_a_lane_dies() {
        let target = arc_target();
        let mut rng = StdRng::seed_from_u64(6);
        let candidates: Vec<Configuration> =
            (0..4).map(|_| target.space().sample(&mut rng)).collect();
        let mut backend = FlakyLane0 {
            inner: InProcessBackend::new(4),
        };
        let mut router = Router::new(RoutingStrategy::RoundRobin, 4);
        let cache = SharedImageCache::new(8);
        let mut trees = vec![None; 4];
        let evals = dispatch_wave(
            &mut backend,
            &mut router,
            &target,
            &candidates,
            0,
            42,
            0,
            2,
            &cache,
            &mut trees,
        );
        assert_eq!(evals.len(), 4, "every slot resolved despite the dead lane");
        assert!(!router.is_healthy(0), "the failed lane is health-gated");
        assert_eq!(router.stats()[0].failures, 1);
        // Outcomes are lane-independent: the retried slot's evaluation is
        // identical to a fully healthy run.
        let mut healthy_backend = InProcessBackend::new(4);
        let mut healthy_router = Router::new(RoutingStrategy::RoundRobin, 4);
        let healthy_cache = SharedImageCache::new(8);
        let mut healthy_trees = vec![None; 4];
        let healthy = dispatch_wave(
            &mut healthy_backend,
            &mut healthy_router,
            &target,
            &candidates,
            0,
            42,
            0,
            2,
            &healthy_cache,
            &mut healthy_trees,
        );
        for (a, b) in evals.iter().zip(healthy.iter()) {
            match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(x), Err(y)) => assert_eq!(x.phase, y.phase),
                _ => panic!("outcome kind differs under fault injection"),
            }
        }
    }
}
