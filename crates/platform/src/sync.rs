//! Poison-recovering synchronization helpers.
//!
//! The established pattern for every mutex in daemon-adjacent code:
//! state protected by these locks is kept consistent by its writers
//! (each critical section is atomic over its own fields), so a panic on
//! one thread must degrade *that* session — never cascade a
//! poisoned-mutex panic through the daemon, the shared image cache, or
//! a watcher. `wf-lint`'s `lock-unwrap` rule enforces the pattern: a
//! bare `.lock().unwrap()` is a finding, this helper is the fix.

use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning instead of panicking.
///
/// ```
/// use std::sync::Mutex;
/// use wf_platform::lock_recover;
///
/// let m = Mutex::new(1);
/// *lock_recover(&m) += 1;
/// assert_eq!(*lock_recover(&m), 2);
/// ```
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = std::sync::Arc::new(Mutex::new(7usize));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock cannot be poisoned");
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }
}
