//! The exploration history: everything the platform records about every
//! evaluated configuration, and the summary statistics the paper's tables
//! derive from it.

use wf_configspace::Configuration;
use wf_jobfile::Direction;
use wf_ossim::Phase;
use wf_search::Observation;

/// One completed pipeline iteration.
#[derive(Clone, Debug)]
pub struct Record {
    /// Zero-based iteration index.
    pub iteration: usize,
    /// The evaluated configuration.
    pub config: Configuration,
    /// The objective value (None on crash).
    pub objective: Option<f64>,
    /// The raw primary metric (None on crash).
    pub metric: Option<f64>,
    /// Resident memory in MB (None on crash before measurement).
    pub memory_mb: Option<f64>,
    /// Crash phase, if the configuration failed.
    pub crash_phase: Option<Phase>,
    /// Whether the build was skipped via the image cache (§3.1).
    pub build_skipped: bool,
    /// Virtual seconds this evaluation cost.
    pub duration_s: f64,
    /// Virtual time when the evaluation *finished*.
    pub finished_at_s: f64,
    /// Real seconds the search algorithm spent deciding/learning
    /// (Fig. 8's "DeepTune update time").
    pub algo_seconds: f64,
    /// Algorithm-reported live memory (Fig. 7).
    pub algo_memory_bytes: usize,
}

impl Record {
    /// Whether the configuration crashed.
    pub fn crashed(&self) -> bool {
        self.crash_phase.is_some()
    }

    /// The search-algorithm view of this record.
    pub fn observation(&self) -> Observation {
        Observation {
            config: self.config.clone(),
            value: self.objective,
            crashed: self.crashed(),
            duration_s: self.duration_s,
        }
    }
}

/// The full session history.
#[derive(Clone, Debug, Default)]
pub struct History {
    records: Vec<Record>,
    /// The algorithm-facing view of `records`, maintained at push so the
    /// per-wave hot path borrows it instead of re-cloning every
    /// configuration in the history (which is O(n) per wave and grows
    /// with the campaign).
    observations: Vec<Observation>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: Record) {
        self.observations.push(record.observation());
        self.records.push(record);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no iterations have run.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The best record under `direction` (by objective).
    pub fn best(&self, direction: Direction) -> Option<&Record> {
        self.records
            .iter()
            .filter(|r| r.objective.is_some())
            .max_by(|a, b| {
                let (x, y) = (a.objective.unwrap(), b.objective.unwrap());
                match direction {
                    Direction::Maximize => x.partial_cmp(&y).unwrap(),
                    Direction::Minimize => y.partial_cmp(&x).unwrap(),
                }
            })
    }

    /// Overall crash rate.
    pub fn crash_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.crashed()).count() as f64 / self.records.len() as f64
    }

    /// Mean virtual time between successive improvements of the
    /// best-so-far objective — the "Avg. time to find" column of Table 2
    /// (see DESIGN.md §4 for why this interpretation).
    pub fn mean_improvement_interval_s(&self, direction: Direction) -> Option<f64> {
        let mut best: Option<f64> = None;
        let mut improvement_times = Vec::new();
        for r in &self.records {
            let Some(v) = r.objective else { continue };
            let improved = match (best, direction) {
                (None, _) => true,
                (Some(b), Direction::Maximize) => v > b,
                (Some(b), Direction::Minimize) => v < b,
            };
            if improved {
                best = Some(v);
                improvement_times.push(r.finished_at_s);
            }
        }
        if improvement_times.len() < 2 {
            return None;
        }
        let span = improvement_times.last().unwrap() - improvement_times.first().unwrap();
        Some(span / (improvement_times.len() - 1) as f64)
    }

    /// The observations slice algorithms receive (maintained at push;
    /// element `i` is `records()[i].observation()`).
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_configspace::{ConfigSpace, ParamKind, ParamSpec, Stage};

    fn record(i: usize, objective: Option<f64>, at: f64) -> Record {
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new("x", ParamKind::Bool, Stage::Runtime));
        Record {
            iteration: i,
            config: s.default_config(),
            objective,
            metric: objective,
            memory_mb: Some(100.0),
            crash_phase: objective.is_none().then_some(Phase::Run),
            build_skipped: true,
            duration_s: 60.0,
            finished_at_s: at,
            algo_seconds: 0.1,
            algo_memory_bytes: 1000,
        }
    }

    #[test]
    fn best_respects_direction() {
        let mut h = History::new();
        h.push(record(0, Some(10.0), 60.0));
        h.push(record(1, Some(30.0), 120.0));
        h.push(record(2, None, 150.0));
        h.push(record(3, Some(20.0), 210.0));
        assert_eq!(h.best(Direction::Maximize).unwrap().iteration, 1);
        assert_eq!(h.best(Direction::Minimize).unwrap().iteration, 0);
    }

    #[test]
    fn crash_rate_counts_failures() {
        let mut h = History::new();
        h.push(record(0, Some(1.0), 60.0));
        h.push(record(1, None, 90.0));
        assert!((h.crash_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn improvement_interval() {
        let mut h = History::new();
        // Improvements at t = 60 (first), 120, 300 -> intervals 60, 180.
        h.push(record(0, Some(10.0), 60.0));
        h.push(record(1, Some(20.0), 120.0));
        h.push(record(2, Some(15.0), 200.0));
        h.push(record(3, Some(25.0), 300.0));
        let avg = h.mean_improvement_interval_s(Direction::Maximize).unwrap();
        assert!((avg - 120.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_interval_needs_two_improvements() {
        let mut h = History::new();
        h.push(record(0, Some(10.0), 60.0));
        assert!(h.mean_improvement_interval_s(Direction::Maximize).is_none());
    }

    // Boundary cases the store replay path leans on: empty, all-crash,
    // and single-record histories must answer every summary query
    // without panicking or lying.

    #[test]
    fn empty_history_boundaries() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert!(h.best(Direction::Maximize).is_none());
        assert!(h.best(Direction::Minimize).is_none());
        assert_eq!(h.crash_rate(), 0.0, "no runs, no crashes");
        assert!(h.mean_improvement_interval_s(Direction::Maximize).is_none());
        assert!(h.observations().is_empty());
    }

    #[test]
    fn all_crash_history_boundaries() {
        let mut h = History::new();
        for i in 0..4 {
            h.push(record(i, None, 60.0 * (i + 1) as f64));
        }
        assert!(
            h.best(Direction::Maximize).is_none(),
            "no survivor, no best"
        );
        assert!(h.best(Direction::Minimize).is_none());
        assert_eq!(h.crash_rate(), 1.0);
        assert!(
            h.mean_improvement_interval_s(Direction::Minimize).is_none(),
            "crashes never improve the best"
        );
        assert!(h
            .observations()
            .iter()
            .all(|o| o.crashed && o.value.is_none()));
    }

    #[test]
    fn single_record_history_boundaries() {
        let mut h = History::new();
        h.push(record(0, Some(42.0), 60.0));
        assert_eq!(h.len(), 1);
        assert_eq!(h.best(Direction::Maximize).unwrap().iteration, 0);
        assert_eq!(h.best(Direction::Minimize).unwrap().iteration, 0);
        assert_eq!(h.crash_rate(), 0.0);
        // One improvement (the first success) is not an interval yet.
        assert!(h.mean_improvement_interval_s(Direction::Maximize).is_none());

        // ... and a single *crashed* record.
        let mut c = History::new();
        c.push(record(0, None, 60.0));
        assert!(c.best(Direction::Maximize).is_none());
        assert_eq!(c.crash_rate(), 1.0);
        assert!(c.mean_improvement_interval_s(Direction::Maximize).is_none());
    }
}
