//! Persistent evaluation backends: where a wave's candidates execute.
//!
//! The pipeline used to spawn a fresh scoped thread per candidate per
//! wave. At µs-scale simulated evaluations that spawn/join cost dominates
//! (ROADMAP item 1: ~2× the 1-worker host time at 8 workers), so the
//! dispatch layer is now a trait with three implementations:
//!
//! * [`SpawnBackend`] — the legacy per-wave scoped-thread body, kept as
//!   the benchmark baseline (`wf-bench`'s `platform/dispatch_spawn`);
//! * [`InProcessBackend`] — long-lived worker threads fed through
//!   channels, spawned once and reused across every wave (the default);
//! * [`crate::remote::RemoteBackend`] — workers behind a process/socket
//!   boundary speaking the length-prefixed `wf-evald` protocol.
//!
//! Every backend upholds the same determinism contract (see
//! `docs/DETERMINISM.md`): a candidate's outcome derives only from
//! `(session_seed, index)`, results are tagged with their wave slot so
//! the session can restore candidate order, and the shared image cache
//! is only ever touched by the session between waves — [`WorkItem`]s
//! carry the cache probe's answer in, [`WorkResult`]s carry built images
//! out. The `tests/props.rs` proptest pins the contract across backends.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use wf_kconfig::LinuxVersion;
//! use wf_ossim::{App, AppId, SimOs};
//! use wf_platform::backend::{EvalBackend, InProcessBackend, WorkItem};
//! use wf_platform::{EvalTarget, SimTarget};
//!
//! let target: Arc<dyn EvalTarget> = Arc::new(SimTarget::new(
//!     SimOs::linux_runtime(LinuxVersion::V4_19, 56),
//!     App::by_id(AppId::Nginx),
//! ));
//! let mut backend = InProcessBackend::new(2);
//! let config = target.space().default_config();
//! let wave = vec![
//!     WorkItem::new(0, 0, 0, config.clone()),
//!     WorkItem::new(1, 1, 1, config.clone()),
//! ];
//! let results = backend.run_items(&target, 42, 1, wave);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use crate::target::EvalTarget;
use crate::workers::{evaluate_candidate, CandidateEval};
use crossbeam::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use wf_configspace::Configuration;
use wf_ossim::KernelImage;

/// One candidate evaluation, fully described: everything a worker needs
/// to run [`evaluate_candidate`] without touching shared session state.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// Position in the wave (results are restored to candidate order by
    /// this slot).
    pub slot: usize,
    /// Global history index of the candidate — the seed derivation input,
    /// which is why outcomes cannot depend on lane or backend.
    pub index: usize,
    /// The evaluator lane assigned by the router. For
    /// [`InProcessBackend`] this is also the worker thread that runs the
    /// item; for the remote backend it selects the worker connection.
    pub lane: usize,
    /// The candidate configuration.
    pub config: Configuration,
    /// The session's cache-probe answer for this candidate (phase 1 of
    /// the two-phase cache protocol).
    pub reuse: Option<KernelImage>,
    /// The lane's working tree: the configuration it last built
    /// (incremental-rebuild timing on compile targets).
    pub working_tree: Option<Configuration>,
}

impl WorkItem {
    /// A work item with no cache reuse and an empty working tree.
    pub fn new(slot: usize, index: usize, lane: usize, config: Configuration) -> WorkItem {
        WorkItem {
            slot,
            index,
            lane,
            config,
            reuse: None,
            working_tree: None,
        }
    }
}

/// A completed evaluation, tagged with its wave slot.
#[derive(Clone, Debug)]
pub struct WorkResult {
    /// The item's position in the wave.
    pub slot: usize,
    /// The lane that executed it.
    pub lane: usize,
    /// Outcome, cache flag, and virtual cost.
    pub eval: CandidateEval,
    /// The built (or reused) image, for the session to publish in
    /// candidate order (phase 3 of the cache protocol). `Some` exactly
    /// when the build succeeded — the signal that the lane's working
    /// tree advanced to this item's configuration.
    pub image: Option<KernelImage>,
}

/// A transport-level failure: the lane (thread or worker process) died
/// before producing a result. Candidate outcomes are never `LaneError`s —
/// crashes of the *evaluated configuration* come back as a successful
/// [`WorkResult`] whose eval records the crash.
#[derive(Clone, Debug)]
pub struct LaneError {
    /// The item's position in the wave.
    pub slot: usize,
    /// The lane that failed.
    pub lane: usize,
    /// Human-readable cause.
    pub message: String,
}

/// Where candidate evaluations execute.
///
/// The contract every implementation upholds:
///
/// * exactly one `Result` per submitted item (order unspecified — each
///   carries its slot);
/// * item outcomes derive only from `(session_seed, item.index)` plus
///   the explicit `reuse`/`working_tree` inputs, never from the lane,
///   the backend, or scheduling;
/// * the shared image cache is never touched — probe answers arrive in
///   items, built images leave in results.
pub trait EvalBackend: Send {
    /// Short label for logs and benches (`"spawn"`, `"in-process"`,
    /// `"remote"`).
    fn label(&self) -> &'static str;

    /// Evaluates a batch of items and returns one result per item.
    fn run_items(
        &mut self,
        target: &Arc<dyn EvalTarget>,
        session_seed: u64,
        repetitions: usize,
        items: Vec<WorkItem>,
    ) -> Vec<Result<WorkResult, LaneError>>;
}

/// Runs one item inline on the current thread.
fn run_one(
    target: &dyn EvalTarget,
    session_seed: u64,
    repetitions: usize,
    item: WorkItem,
) -> WorkResult {
    let mut tree = item.working_tree;
    let (eval, image) = evaluate_candidate(
        target,
        &item.config,
        item.index,
        session_seed,
        repetitions,
        item.reuse.as_ref(),
        &mut tree,
    );
    WorkResult {
        slot: item.slot,
        lane: item.lane,
        eval,
        image,
    }
}

/// The legacy dispatch path: a fresh crossbeam scoped thread per item,
/// per wave. Functionally identical to [`InProcessBackend`] — it exists
/// so `wfctl bench` can measure exactly what persistent pools buy
/// (`platform/dispatch_spawn` vs `platform/dispatch_pool`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpawnBackend;

impl SpawnBackend {
    /// Creates the spawn backend (stateless).
    pub fn new() -> SpawnBackend {
        SpawnBackend
    }
}

impl EvalBackend for SpawnBackend {
    fn label(&self) -> &'static str {
        "spawn"
    }

    fn run_items(
        &mut self,
        target: &Arc<dyn EvalTarget>,
        session_seed: u64,
        repetitions: usize,
        items: Vec<WorkItem>,
    ) -> Vec<Result<WorkResult, LaneError>> {
        if items.len() <= 1 {
            return items
                .into_iter()
                .map(|item| Ok(run_one(target.as_ref(), session_seed, repetitions, item)))
                .collect();
        }
        let slots: Vec<usize> = items.iter().map(|item| item.slot).collect();
        thread::scope(|scope| {
            let handles: Vec<_> = items
                .into_iter()
                .map(|item| {
                    let target = Arc::clone(target);
                    scope.spawn(move |_| run_one(target.as_ref(), session_seed, repetitions, item))
                })
                .collect();
            handles
                .into_iter()
                .zip(&slots)
                .enumerate()
                .map(|(lane, (handle, &slot))| {
                    // A panicking evaluation becomes this item's LaneError
                    // (the router reroutes it); it must not take down the
                    // session thread.
                    handle.join().map_err(|_| LaneError {
                        slot,
                        lane,
                        message: "worker thread panicked".to_string(),
                    })
                })
                .collect()
        })
        .unwrap_or_else(|_| {
            // Unreachable in practice — every handle above was joined —
            // but a scope failure must still yield one result per item.
            slots
                .iter()
                .enumerate()
                .map(|(lane, &slot)| {
                    Err(LaneError {
                        slot,
                        lane,
                        message: "worker scope panicked".to_string(),
                    })
                })
                .collect()
        })
    }
}

/// A message to a persistent worker thread.
struct Run {
    target: Arc<dyn EvalTarget>,
    session_seed: u64,
    repetitions: usize,
    item: WorkItem,
}

struct Worker {
    sender: Option<mpsc::Sender<Run>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Long-lived worker threads with channel-fed work queues.
///
/// Worker thread `i` executes every item routed to lane `i`, so the lane
/// is a real execution context (one OS thread, like one VM worker), not
/// just a bookkeeping index. Threads spawn lazily on the first wave with
/// more than one item — construction is free, and single-item waves run
/// inline so `workers = 1` sessions stay strictly sequential.
pub struct InProcessBackend {
    workers: usize,
    lanes: Vec<Worker>,
    results_tx: mpsc::Sender<Result<WorkResult, LaneError>>,
    results_rx: mpsc::Receiver<Result<WorkResult, LaneError>>,
}

impl InProcessBackend {
    /// Creates a pool of `workers` lanes. Threads are not spawned until
    /// the first multi-item wave.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> InProcessBackend {
        assert!(workers >= 1, "a backend needs at least one lane");
        let (results_tx, results_rx) = mpsc::channel();
        InProcessBackend {
            workers,
            lanes: Vec::new(),
            results_tx,
            results_rx,
        }
    }

    /// Number of worker lanes.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn ensure_spawned(&mut self) {
        if !self.lanes.is_empty() {
            return;
        }
        for lane in 0..self.workers {
            let (tx, rx) = mpsc::channel::<Run>();
            let results = self.results_tx.clone();
            let thread = std::thread::Builder::new()
                .name(format!("wf-worker-{lane}"))
                .spawn(move || {
                    while let Ok(run) = rx.recv() {
                        let slot = run.item.slot;
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            run_one(
                                run.target.as_ref(),
                                run.session_seed,
                                run.repetitions,
                                run.item,
                            )
                        }));
                        let message = match outcome {
                            Ok(result) => {
                                if results.send(Ok(result)).is_err() {
                                    return; // backend dropped mid-flight
                                }
                                continue;
                            }
                            Err(_) => "worker thread panicked".to_string(),
                        };
                        let _ = results.send(Err(LaneError {
                            slot,
                            lane,
                            message,
                        }));
                        return; // a panicked worker does not take new work
                    }
                });
            // A lane whose thread cannot spawn degrades to a dead lane:
            // run_items fails its items with "worker thread is gone" and
            // the router reroutes them, instead of the whole session
            // panicking over one exhausted thread quota.
            match thread {
                Ok(thread) => self.lanes.push(Worker {
                    sender: Some(tx),
                    thread: Some(thread),
                }),
                Err(_) => self.lanes.push(Worker {
                    sender: None,
                    thread: None,
                }),
            }
        }
    }
}

impl EvalBackend for InProcessBackend {
    fn label(&self) -> &'static str {
        "in-process"
    }

    fn run_items(
        &mut self,
        target: &Arc<dyn EvalTarget>,
        session_seed: u64,
        repetitions: usize,
        items: Vec<WorkItem>,
    ) -> Vec<Result<WorkResult, LaneError>> {
        if items.len() <= 1 {
            return items
                .into_iter()
                .map(|item| Ok(run_one(target.as_ref(), session_seed, repetitions, item)))
                .collect();
        }
        self.ensure_spawned();
        let mut out = Vec::with_capacity(items.len());
        let mut outstanding = 0usize;
        for item in items {
            assert!(item.lane < self.workers, "lane out of range");
            let slot = item.slot;
            let lane = item.lane;
            let run = Run {
                target: Arc::clone(target),
                session_seed,
                repetitions,
                item,
            };
            let sent = match &self.lanes[lane].sender {
                Some(sender) => sender.send(run).is_ok(),
                None => false,
            };
            if sent {
                outstanding += 1;
            } else {
                // The lane's thread is gone (earlier panic); fail fast so
                // the router can reroute the item.
                out.push(Err(LaneError {
                    slot,
                    lane,
                    message: "worker thread is gone".into(),
                }));
            }
        }
        for _ in 0..outstanding {
            match self.results_rx.recv() {
                Ok(result) => out.push(result),
                Err(_) => break, // unreachable: we hold a sender clone
            }
        }
        out
    }
}

impl Drop for InProcessBackend {
    fn drop(&mut self) {
        for worker in &mut self.lanes {
            worker.sender.take(); // closing the queue stops the thread
        }
        for worker in &mut self.lanes {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::SimTarget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_kconfig::LinuxVersion;
    use wf_ossim::{App, AppId, SimOs};

    fn arc_target() -> Arc<dyn EvalTarget> {
        Arc::new(SimTarget::new(
            SimOs::linux_runtime(LinuxVersion::V4_19, 56),
            App::by_id(AppId::Redis),
        ))
    }

    fn wave(target: &Arc<dyn EvalTarget>, n: usize, seed: u64) -> Vec<WorkItem> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|j| WorkItem::new(j, j, j, target.space().sample(&mut rng)))
            .collect()
    }

    fn sort_by_slot(mut results: Vec<Result<WorkResult, LaneError>>) -> Vec<WorkResult> {
        let mut ok: Vec<WorkResult> = results.drain(..).map(|r| r.expect("ok")).collect();
        ok.sort_by_key(|w| w.slot);
        ok
    }

    #[test]
    fn spawn_and_pool_backends_agree_bit_for_bit() {
        let target = arc_target();
        let items = wave(&target, 6, 9);
        let mut spawn = SpawnBackend::new();
        let mut pool = InProcessBackend::new(6);
        let a = sort_by_slot(spawn.run_items(&target, 77, 2, items.clone()));
        let b = sort_by_slot(pool.run_items(&target, 77, 2, items));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.eval.duration_s.to_bits(), y.eval.duration_s.to_bits());
            match (&x.eval.outcome, &y.eval.outcome) {
                (Ok(m), Ok(n)) => assert_eq!(m, n),
                (Err(m), Err(n)) => assert_eq!(m.phase, n.phase),
                _ => panic!("outcome kind differs between backends"),
            }
        }
    }

    #[test]
    fn pool_threads_persist_across_waves() {
        let target = arc_target();
        let mut pool = InProcessBackend::new(4);
        for round in 0..3 {
            let items = wave(&target, 4, round);
            let results = pool.run_items(&target, 5, 1, items);
            assert_eq!(results.len(), 4);
            assert!(results.iter().all(|r| r.is_ok()));
        }
        assert_eq!(pool.lanes.len(), 4, "threads spawned once and reused");
    }

    #[test]
    fn single_item_waves_run_inline() {
        let target = arc_target();
        let mut pool = InProcessBackend::new(4);
        let items = wave(&target, 1, 3);
        let results = pool.run_items(&target, 5, 1, items);
        assert_eq!(results.len(), 1);
        assert!(pool.lanes.is_empty(), "no threads for single-item waves");
    }

    #[test]
    fn items_routed_to_one_lane_run_sequentially() {
        // Two items on the same lane is legal (retries land there); the
        // worker just executes them back to back.
        let target = arc_target();
        let mut pool = InProcessBackend::new(2);
        let mut items = wave(&target, 3, 11);
        for item in &mut items {
            item.lane = 1;
        }
        let results = sort_by_slot(pool.run_items(&target, 5, 1, items));
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|w| w.lane == 1));
    }
}
