//! Cooperative interrupt handling for long-running sessions.
//!
//! `wfctl run`/`resume` and the `wfd` daemon install a process-wide flag
//! that SIGINT/SIGTERM set instead of killing the process mid-write.
//! The drive loops check the flag at wave boundaries — the only points
//! where the store is consistent — flush their sinks, and exit cleanly,
//! so an interrupt loses at most the in-flight wave and never tears
//! `events.jsonl` mid-line.
//!
//! The handler is a raw `libc` `signal(2)` binding (the std library has
//! no signal API and the build is offline): it only stores to an
//! [`AtomicBool`], which is async-signal-safe.
//!
//! # Examples
//!
//! ```
//! use wf_platform::signal;
//!
//! let flag = signal::install_interrupt_flag();
//! assert!(!signal::interrupted());
//! // A drive loop would check `flag` between waves:
//! if !flag.load(std::sync::atomic::Ordering::Relaxed) {
//!     // ... run the next wave ...
//! }
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

/// SIGINT on every platform this builds on (POSIX).
const SIGINT: i32 = 2;
/// SIGTERM on every platform this builds on (POSIX).
const SIGTERM: i32 = 15;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// `SIG_DFL`: the default disposition, restored on the second signal.
const SIG_DFL: usize = 0;

extern "C" {
    // `signal(2)` and `raise(3)` from libc, which every Rust binary
    // already links. `sighandler_t` is a pointer-sized function address.
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

extern "C" fn on_signal(signum: i32) {
    // An atomic swap plus (on the escalation path) signal/raise — all
    // async-signal-safe.
    if INTERRUPTED.swap(true, Ordering::SeqCst) {
        unsafe {
            signal(signum, SIG_DFL);
            raise(signum);
        }
    }
}

/// Installs the SIGINT/SIGTERM handler (idempotent) and returns the flag
/// it sets. The first signal flips the flag; a second signal while the
/// flag is already set falls back to the default disposition, so a stuck
/// session can still be killed with a second Ctrl-C.
pub fn install_interrupt_flag() -> &'static AtomicBool {
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
    &INTERRUPTED
}

/// Whether an interrupt has been requested since
/// [`install_interrupt_flag`] ran.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Clears the flag (tests; or a driver that handled one interrupt and
/// wants to keep running).
pub fn reset_interrupt_flag() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_resets() {
        let flag = install_interrupt_flag();
        reset_interrupt_flag();
        assert!(!interrupted());
        flag.store(true, Ordering::SeqCst);
        assert!(interrupted());
        reset_interrupt_flag();
        assert!(!interrupted());
    }
}
