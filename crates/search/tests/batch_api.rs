//! Contract tests for the batch ask/tell protocol: every algorithm's
//! `propose_batch(n, ..)` returns exactly `n` in-space candidates,
//! model-driven and sweep algorithms never duplicate within a batch, and
//! `observe_batch` is equivalent to `n` sequential `observe` calls for
//! the history-light algorithms.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage, Value};
use wf_jobfile::Direction;
use wf_search::{
    BayesOpt, CausalSearch, GridSearch, Observation, RandomSearch, SamplePolicy, SearchAlgorithm,
    SearchContext,
};

fn space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    s.add(ParamSpec::new("flag", ParamKind::Bool, Stage::Runtime));
    s.add(
        ParamSpec::new("size", ParamKind::log_int(1, 65536), Stage::Runtime)
            .with_default(Value::Int(128)),
    );
    s.add(ParamSpec::new(
        "mode",
        ParamKind::choices(vec!["a", "b", "c", "d"]),
        Stage::Runtime,
    ));
    s.add(ParamSpec::new(
        "level",
        ParamKind::int(0, 1000),
        Stage::Runtime,
    ));
    s
}

/// Synthetic observation: a smooth objective over the `level` axis.
fn observe_value(space: &ConfigSpace, c: &wf_configspace::Configuration) -> f64 {
    c.by_name(space, "level").unwrap().as_f64()
}

struct Fixture {
    space: ConfigSpace,
    encoder: Encoder,
    policy: SamplePolicy,
}

impl Fixture {
    fn new() -> Self {
        let space = space();
        let encoder = Encoder::new(&space);
        Fixture {
            space,
            encoder,
            policy: SamplePolicy::Uniform,
        }
    }

    fn ctx<'a>(&'a self, history: &'a [Observation], iteration: usize) -> SearchContext<'a> {
        SearchContext {
            space: &self.space,
            encoder: &self.encoder,
            direction: Direction::Maximize,
            policy: &self.policy,
            history,
            iteration,
        }
    }
}

fn algorithms() -> Vec<Box<dyn SearchAlgorithm>> {
    vec![
        Box::new(RandomSearch::new()),
        Box::new(GridSearch::new(4)),
        Box::new(BayesOpt::new().with_pool(64)),
        Box::new(CausalSearch::new()),
    ]
}

/// Drives `warmup` full ask/evaluate/tell waves so model-based algorithms
/// get past their init phase, then returns the accumulated history.
fn warm_up(
    alg: &mut dyn SearchAlgorithm,
    fixture: &Fixture,
    rng: &mut StdRng,
    warmup: usize,
) -> Vec<Observation> {
    let mut history: Vec<Observation> = Vec::new();
    for _ in 0..warmup {
        let obs_batch: Vec<Observation> = {
            let ctx = fixture.ctx(&history, history.len());
            alg.propose_batch(4, &ctx, rng)
                .into_iter()
                .map(|c| {
                    let v = observe_value(&fixture.space, &c);
                    Observation::ok(c, v, 60.0)
                })
                .collect()
        };
        let ctx = fixture.ctx(&history, history.len());
        alg.observe_batch(&ctx, &obs_batch);
        history.extend(obs_batch);
    }
    history
}

#[test]
fn every_algorithm_proposes_exactly_n_in_space_candidates() {
    let fixture = Fixture::new();
    for mut alg in algorithms() {
        let mut rng = StdRng::seed_from_u64(7);
        // Both cold (empty history) and warm (past n_init) batches.
        for round in 0..6 {
            let history = if round < 3 {
                Vec::new()
            } else {
                warm_up(alg.as_mut(), &fixture, &mut rng, 4)
            };
            for n in [1usize, 3, 8] {
                let ctx = fixture.ctx(&history, history.len());
                let batch = alg.propose_batch(n, &ctx, &mut rng);
                assert_eq!(batch.len(), n, "{} returned a short batch", alg.name());
                for c in &batch {
                    assert_eq!(c.len(), fixture.space.len(), "{}", alg.name());
                    assert!(
                        fixture.space.violations(c).is_empty(),
                        "{} proposed an out-of-space candidate",
                        alg.name()
                    );
                }
            }
        }
    }
}

#[test]
fn grid_and_bayes_batches_have_no_intra_batch_duplicates() {
    let fixture = Fixture::new();

    // Grid: the sweep itself is duplicate-free.
    let mut grid = GridSearch::new(4);
    let mut rng = StdRng::seed_from_u64(11);
    let history = Vec::new();
    let ctx = fixture.ctx(&history, 0);
    let batch = grid.propose_batch(8, &ctx, &mut rng);
    let fps: HashSet<u64> = batch.iter().map(|c| c.fingerprint()).collect();
    assert_eq!(fps.len(), batch.len(), "grid wave duplicated a candidate");

    // Bayes: cold batches dedup samples, warm batches are penalized into
    // diversity. Check both.
    let mut bayes = BayesOpt::new().with_pool(64);
    let mut rng = StdRng::seed_from_u64(13);
    let cold_history = Vec::new();
    let ctx = fixture.ctx(&cold_history, 0);
    let cold = bayes.propose_batch(8, &ctx, &mut rng);
    let cold_fps: HashSet<u64> = cold.iter().map(|c| c.fingerprint()).collect();
    assert_eq!(cold_fps.len(), cold.len(), "cold bayes wave duplicated");

    let history = warm_up(&mut bayes, &fixture, &mut rng, 5);
    for _ in 0..5 {
        let ctx = fixture.ctx(&history, history.len());
        let warm = bayes.propose_batch(6, &ctx, &mut rng);
        let warm_fps: HashSet<u64> = warm.iter().map(|c| c.fingerprint()).collect();
        assert_eq!(warm_fps.len(), warm.len(), "warm bayes wave duplicated");
    }

    // Causal rides the same guarantee through its ranked-pool dedup.
    let mut causal = CausalSearch::new();
    let mut rng = StdRng::seed_from_u64(17);
    let history = warm_up(&mut causal, &fixture, &mut rng, 5);
    let ctx = fixture.ctx(&history, history.len());
    let wave = causal.propose_batch(6, &ctx, &mut rng);
    let fps: HashSet<u64> = wave.iter().map(|c| c.fingerprint()).collect();
    assert_eq!(fps.len(), wave.len(), "causal wave duplicated");
}

/// `observe_batch` must leave the model in the same state as n sequential
/// `observe` calls. Checked behaviorally for random and grid: two fresh
/// instances fed the same observations one way or the other must produce
/// identical future proposals from identically seeded RNGs.
#[test]
fn observe_batch_equals_sequential_observes_for_random_and_grid() {
    let fixture = Fixture::new();
    let make: Vec<fn() -> Box<dyn SearchAlgorithm>> =
        vec![|| Box::new(RandomSearch::new()), || {
            Box::new(GridSearch::new(4))
        }];
    for factory in make {
        let mut batched = factory();
        let mut sequential = factory();

        // A shared set of observations over policy samples.
        let mut sample_rng = StdRng::seed_from_u64(19);
        let history: Vec<Observation> = (0..12)
            .map(|i| {
                let c = fixture.space.sample(&mut sample_rng);
                if i % 4 == 0 {
                    Observation::crash(c, 20.0)
                } else {
                    let v = observe_value(&fixture.space, &c);
                    Observation::ok(c, v, 60.0)
                }
            })
            .collect();

        {
            let ctx = fixture.ctx(&[], 0);
            batched.observe_batch(&ctx, &history);
        }
        for obs in &history {
            let ctx = fixture.ctx(&[], 0);
            sequential.observe(&ctx, obs);
        }

        // Identically seeded proposal streams must now coincide.
        let mut rng_a = StdRng::seed_from_u64(23);
        let mut rng_b = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let ctx = fixture.ctx(&history, history.len());
            let a = batched.propose(&ctx, &mut rng_a);
            let ctx = fixture.ctx(&history, history.len());
            let b = sequential.propose(&ctx, &mut rng_b);
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{} diverged after batch vs sequential observes",
                batched.name()
            );
        }
    }
}

/// Bayes goes further than the contract requires: a single end-of-wave
/// refit reaches the exact same posterior as refitting after every
/// observation, because the refit is from scratch. Verify via proposals.
#[test]
fn bayes_single_refit_matches_sequential_refits() {
    let fixture = Fixture::new();
    let mut batched = BayesOpt::new().with_pool(32);
    let mut sequential = BayesOpt::new().with_pool(32);

    let mut sample_rng = StdRng::seed_from_u64(29);
    let history: Vec<Observation> = (0..16)
        .map(|_| {
            let c = fixture.space.sample(&mut sample_rng);
            let v = observe_value(&fixture.space, &c);
            Observation::ok(c, v, 60.0)
        })
        .collect();

    {
        let ctx = fixture.ctx(&[], 0);
        batched.observe_batch(&ctx, &history);
    }
    for obs in &history {
        let ctx = fixture.ctx(&[], 0);
        sequential.observe(&ctx, obs);
    }

    let mut rng_a = StdRng::seed_from_u64(31);
    let mut rng_b = StdRng::seed_from_u64(31);
    for _ in 0..10 {
        let ctx = fixture.ctx(&history, history.len());
        let a = batched.propose(&ctx, &mut rng_a);
        let ctx = fixture.ctx(&history, history.len());
        let b = sequential.propose(&ctx, &mut rng_b);
        assert_eq!(a.fingerprint(), b.fingerprint(), "posteriors diverged");
    }
}
