//! Byte accounting for algorithm data structures (Fig. 7's memory axis).
//!
//! The paper measures Unicorn's memory with Python's `tracemalloc`. Rust
//! has no equivalent tracing allocator in the sanctioned crate set, so the
//! algorithms *account* for their live structures explicitly: the same
//! quantity (peak bytes attributable to the algorithm), measured without a
//! tracing runtime.

/// A simple live/peak byte counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemTracker {
    live: usize,
    peak: usize,
}

impl MemTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: usize) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Records a release of `bytes` (saturating).
    pub fn free(&mut self, bytes: usize) {
        self.live = self.live.saturating_sub(bytes);
    }

    /// Replaces the live figure (for structures re-measured wholesale).
    pub fn set_live(&mut self, bytes: usize) {
        self.live = bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Currently live bytes.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak live bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// Bytes occupied by a `Vec<f64>`'s payload.
pub fn bytes_of_f64s(len: usize) -> usize {
    len * std::mem::size_of::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_live_and_peak() {
        let mut t = MemTracker::new();
        t.alloc(100);
        t.alloc(50);
        assert_eq!(t.live(), 150);
        t.free(120);
        assert_eq!(t.live(), 30);
        assert_eq!(t.peak(), 150);
        t.set_live(500);
        assert_eq!(t.peak(), 500);
    }

    #[test]
    fn free_saturates() {
        let mut t = MemTracker::new();
        t.alloc(10);
        t.free(100);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn f64_sizing() {
        assert_eq!(bytes_of_f64s(4), 32);
    }
}
