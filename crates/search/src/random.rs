//! Random search: the paper's baseline (§3.1, §4).
//!
//! "Each subsequent configuration to explore is generated randomly without
//! considering the exploration history" — except for uniqueness: the
//! platform's random search "continuously generat\[es\] *unique*
//! configurations", so previously seen fingerprints are rejected.

use crate::api::{Observation, SearchAlgorithm, SearchContext};
use rand::rngs::StdRng;
use std::collections::HashSet;
use wf_configspace::Configuration;

/// The random-search baseline.
#[derive(Debug, Default)]
pub struct RandomSearch {
    seen: HashSet<u64>,
}

impl RandomSearch {
    /// Creates a fresh random search.
    pub fn new() -> Self {
        Self::default()
    }
}

// Batch note: random search keeps the default `propose_batch` (n
// sequential `propose` calls). That IS its real batch strategy — `propose`
// inserts each accepted fingerprint into `seen` at proposal time, so a
// wave is intra-batch unique, and the RNG stream is identical to n
// single-candidate iterations, which is what makes same-seed sessions
// worker-count invariant.
impl SearchAlgorithm for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&mut self, ctx: &SearchContext<'_>, rng: &mut StdRng) -> Configuration {
        // Reject duplicates, but give up after a bounded number of tries:
        // tiny spaces can be exhausted, and the platform still needs a
        // configuration back.
        for _ in 0..64 {
            let c = ctx.policy.sample(ctx.space, rng);
            if self.seen.insert(c.fingerprint()) {
                return c;
            }
        }
        ctx.policy.sample(ctx.space, rng)
    }

    fn observe(&mut self, _ctx: &SearchContext<'_>, obs: &Observation) {
        self.seen.insert(obs.config.fingerprint());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SamplePolicy;
    use rand::SeedableRng;
    use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage};
    use wf_jobfile::Direction;

    fn ctx_fixture() -> (ConfigSpace, SamplePolicy) {
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new(
            "a",
            ParamKind::int(0, 1_000_000),
            Stage::Runtime,
        ));
        s.add(ParamSpec::new("b", ParamKind::Bool, Stage::Runtime));
        (s, SamplePolicy::Uniform)
    }

    #[test]
    fn proposals_are_unique() {
        let (space, policy) = ctx_fixture();
        let encoder = Encoder::new(&space);
        let mut alg = RandomSearch::new();
        let mut rng = StdRng::seed_from_u64(1);
        let history = Vec::new();
        let mut fingerprints = HashSet::new();
        for i in 0..200 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = alg.propose(&ctx, &mut rng);
            assert!(fingerprints.insert(c.fingerprint()), "duplicate at {i}");
        }
    }

    #[test]
    fn exhausted_space_still_returns() {
        // A 2-configuration space: after both are seen, propose must still
        // return something rather than spin forever.
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new("only", ParamKind::Bool, Stage::Runtime));
        let encoder = Encoder::new(&s);
        let policy = SamplePolicy::Uniform;
        let mut alg = RandomSearch::new();
        let mut rng = StdRng::seed_from_u64(2);
        let history = Vec::new();
        for i in 0..10 {
            let ctx = SearchContext {
                space: &s,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let _ = alg.propose(&ctx, &mut rng);
        }
    }
}
