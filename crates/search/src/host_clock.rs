//! The `algo_seconds` carve-out — the one place search code may read
//! the host wall clock.
//!
//! Every search algorithm reports how much *host* time its own
//! propose/observe work costs (`AlgoStats::last_update_seconds`, summed
//! into the session's `algo_seconds`). That measurement is explicitly
//! outside the determinism contract (docs/DETERMINISM.md): it is
//! reported for profiling, and nothing downstream — proposals,
//! observations, clocks, routing — is allowed to read it back. Keeping
//! the actual `Instant::now()` call here, behind a single annotated
//! type, means `wf-lint`'s `wall-clock-in-det-path` rule flags any
//! *new* wall-clock read at merge time while this documented carve-out
//! stays the only allowed one.

/// A started host-time measurement for `algo_seconds` reporting.
///
/// The elapsed value must only ever feed reporting fields
/// (`last_update_seconds` / `algo_seconds`), never a decision.
#[derive(Clone, Copy, Debug)]
pub struct HostTimer(std::time::Instant);

impl HostTimer {
    /// Starts measuring.
    pub fn start() -> Self {
        // wf-lint: allow(wall-clock-in-det-path, reason = "the documented algo_seconds carve-out: host cost of search-algorithm work, reported for profiling and never fed back into any decision (DETERMINISM.md)")
        HostTimer(std::time::Instant::now())
    }

    /// Host seconds since [`HostTimer::start`].
    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Runs `f`, returning its result and the elapsed host seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = HostTimer::start();
    let out = f();
    let s = t.seconds();
    (out, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_value_and_nonnegative_seconds() {
        let (v, s) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn timer_is_monotonic_nonnegative() {
        let t = HostTimer::start();
        assert!(t.seconds() >= 0.0);
    }
}
