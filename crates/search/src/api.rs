//! The pluggable search-algorithm API (§3.1).
//!
//! "Wayfinder offers a modular API to ease the integration of pluggable
//! search algorithms \[which\] decide what configuration to explore next."
//! Algorithms see the exploration history — configurations, their
//! performance, and which ones crashed — and propose the next candidate.

use rand::rngs::StdRng;
use wf_configspace::{ConfigSpace, Configuration, Encoder, Stage};
use wf_jobfile::Direction;

/// One completed evaluation, as visible to search algorithms.
///
/// Algorithms never see *why* a configuration crashed (the ground-truth
/// rule); they only observe that it did — the same signal the real
/// platform gets from a failed build or a dead VM.
#[derive(Clone, Debug)]
pub struct Observation {
    /// The evaluated configuration.
    pub config: Configuration,
    /// Metric value (present only when the run succeeded).
    pub value: Option<f64>,
    /// Whether the configuration crashed (build/boot/run).
    pub crashed: bool,
    /// Virtual seconds the evaluation cost.
    pub duration_s: f64,
}

impl Observation {
    /// Convenience constructor for a successful run.
    pub fn ok(config: Configuration, value: f64, duration_s: f64) -> Self {
        Observation {
            config,
            value: Some(value),
            crashed: false,
            duration_s,
        }
    }

    /// Convenience constructor for a crash.
    pub fn crash(config: Configuration, duration_s: f64) -> Self {
        Observation {
            config,
            value: None,
            crashed: true,
            duration_s,
        }
    }
}

/// How candidate configurations are drawn from the space (§3.5: jobs can
/// focus the search on a parameter stage; compile-focused searches explore
/// around the incumbent default rather than uniformly).
#[derive(Clone, Debug, PartialEq)]
pub enum SamplePolicy {
    /// Uniform over the whole space.
    Uniform,
    /// Randomize only one stage's parameters, defaults elsewhere.
    StageFocused(Stage),
    /// Mutate the default configuration in `1..=max_changes` random
    /// parameters (log-uniform change count). This is how compile-time
    /// spaces are explored: a fresh uniform sample of 20 000 options is
    /// never buildable in practice, while perturbing a known-good
    /// configuration is (§4.4).
    MutateDefault {
        /// Largest number of parameters changed per sample.
        max_changes: usize,
    },
}

impl SamplePolicy {
    /// Draws one configuration under this policy.
    pub fn sample(&self, space: &ConfigSpace, rng: &mut StdRng) -> Configuration {
        use rand::Rng;
        match self {
            SamplePolicy::Uniform => space.sample(rng),
            SamplePolicy::StageFocused(stage) => space.sample_stage(*stage, rng),
            SamplePolicy::MutateDefault { max_changes } => {
                let max = (*max_changes).max(1);
                // Log-uniform change count: most samples are small probes,
                // the tail reshapes large parts of the configuration.
                let span = (max as f64).ln();
                let k = (rng.random::<f64>() * span).exp().round() as usize;
                space.mutate(&space.default_config(), k.clamp(1, max), rng)
            }
        }
    }

    /// Draws a mutation of `base` honoring the policy's stage restriction
    /// (used by exploitation moves).
    pub fn mutate(
        &self,
        space: &ConfigSpace,
        base: &Configuration,
        changes: usize,
        rng: &mut StdRng,
    ) -> Configuration {
        use rand::Rng;
        match self {
            SamplePolicy::StageFocused(stage) => {
                let idxs = space.stage_indices(*stage);
                let free: Vec<usize> = idxs.into_iter().filter(|&i| !space.spec(i).fixed).collect();
                let mut out = base.clone();
                if free.is_empty() {
                    return out;
                }
                for _ in 0..changes {
                    let i = free[rng.random_range(0..free.len())];
                    out.set(i, space.sample_value(i, rng));
                }
                out
            }
            _ => space.mutate(base, changes, rng),
        }
    }
}

/// Everything an algorithm may consult when proposing or learning.
pub struct SearchContext<'a> {
    /// The configuration space under exploration.
    pub space: &'a ConfigSpace,
    /// Shared feature encoder over that space.
    pub encoder: &'a Encoder,
    /// Whether larger or smaller metric values are better.
    pub direction: Direction,
    /// Candidate sampling policy.
    pub policy: &'a SamplePolicy,
    /// All completed observations, oldest first.
    pub history: &'a [Observation],
    /// Zero-based index of the iteration being proposed.
    pub iteration: usize,
}

impl SearchContext<'_> {
    /// The best successful observation so far under the direction.
    pub fn best(&self) -> Option<&Observation> {
        self.history
            .iter()
            .filter(|o| o.value.is_some())
            .max_by(|a, b| {
                let (x, y) = (a.value.unwrap(), b.value.unwrap());
                match self.direction {
                    Direction::Maximize => x.partial_cmp(&y).unwrap(),
                    Direction::Minimize => y.partial_cmp(&x).unwrap(),
                }
            })
    }

    /// Crash rate over the history (1.0 = every evaluation crashed).
    pub fn crash_rate(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().filter(|o| o.crashed).count() as f64 / self.history.len() as f64
    }

    /// A sign-adjusted view of a metric value: larger is always better.
    pub fn goodness(&self, value: f64) -> f64 {
        match self.direction {
            Direction::Maximize => value,
            Direction::Minimize => -value,
        }
    }
}

/// Extends `out` to `n` configurations with policy samples whose
/// fingerprints are new to `seen`, recording each accepted fingerprint.
///
/// The shared workhorse behind every batch proposer's "fill the rest of
/// the wave with distinct samples" path. Each slot gets a bounded number
/// of rejection-sampling tries — tiny spaces may not hold `n` distinct
/// configurations, and a wave must come back full regardless, so the
/// slot then falls back to an arbitrary sample.
pub fn fill_distinct(
    out: &mut Vec<Configuration>,
    n: usize,
    ctx: &SearchContext<'_>,
    rng: &mut StdRng,
    seen: &mut std::collections::HashSet<u64>,
) {
    while out.len() < n {
        let mut accepted = None;
        for _ in 0..64 {
            let c = ctx.policy.sample(ctx.space, rng);
            if seen.insert(c.fingerprint()) {
                accepted = Some(c);
                break;
            }
        }
        out.push(accepted.unwrap_or_else(|| ctx.policy.sample(ctx.space, rng)));
    }
}

/// Per-iteration cost statistics (Fig. 7 and Fig. 8 instrument these).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AlgoStats {
    /// Seconds of *real* compute spent in the last `observe` + `propose`
    /// pair (model update time in Fig. 8).
    pub last_update_seconds: f64,
    /// Bytes of live memory attributable to the algorithm's data
    /// structures after the last iteration (Fig. 7's y-axis).
    pub memory_bytes: usize,
}

/// A pluggable search algorithm.
///
/// The driving loop alternates [`SearchAlgorithm::propose`] →
/// evaluate → [`SearchAlgorithm::observe`].
///
/// # The batch ask/tell protocol
///
/// A multi-worker platform evaluates several configurations concurrently,
/// so the driving loop becomes [`SearchAlgorithm::propose_batch`] ("ask
/// for a wave of candidates") → evaluate the wave across workers →
/// [`SearchAlgorithm::observe_batch`] ("tell the algorithm every
/// outcome"). The default implementations delegate to the
/// single-candidate methods, so existing algorithms keep working
/// unchanged; algorithms with a model override them to propose *diverse*
/// waves (no point paying for n workers that all test the same
/// hypothesis) and to amortize one model refit over the whole wave.
pub trait SearchAlgorithm {
    /// Algorithm name for reports (`random`, `bayesian`, `deeptune`, ...).
    fn name(&self) -> &'static str;

    /// Chooses the next configuration to evaluate.
    fn propose(&mut self, ctx: &SearchContext<'_>, rng: &mut StdRng) -> Configuration;

    /// Integrates a completed observation (model update).
    fn observe(&mut self, ctx: &SearchContext<'_>, obs: &Observation);

    /// Asks for `n` candidates to evaluate concurrently.
    ///
    /// The default draws `n` sequential [`SearchAlgorithm::propose`]
    /// calls, which consumes the RNG exactly like `n` single-candidate
    /// iterations would — history-independent algorithms therefore
    /// propose the same stream at every worker count.
    fn propose_batch(
        &mut self,
        n: usize,
        ctx: &SearchContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<Configuration> {
        (0..n).map(|_| self.propose(ctx, rng)).collect()
    }

    /// Tells the algorithm every outcome of a completed wave, in the
    /// order the candidates were proposed.
    ///
    /// The default replays `n` sequential [`SearchAlgorithm::observe`]
    /// calls; model-based algorithms override it to ingest the whole
    /// wave and refit once.
    fn observe_batch(&mut self, ctx: &SearchContext<'_>, batch: &[Observation]) {
        for obs in batch {
            self.observe(ctx, obs);
        }
    }

    /// Cost statistics for the most recent iteration.
    fn stats(&self) -> AlgoStats {
        AlgoStats::default()
    }

    /// Closes the algorithm's current specialization *epoch* (continuous
    /// sessions call this when confirmed workload drift triggers
    /// re-specialization).
    ///
    /// After this call the driving loop restarts the context history: the
    /// algorithm sees only observations made since the epoch began, so
    /// any per-observation state (replay buffers, kernels, incumbents)
    /// must be dropped. `transfer` asks the algorithm to seed the new
    /// epoch from whatever *model* it accumulated — the generalized
    /// `transfer_checkpoint` path; `false` demands a cold restart.
    ///
    /// The default implementation does nothing, which is correct only
    /// for algorithms that keep no observation state of their own
    /// (random search; grid, whose sweep is a pure function of the
    /// global iteration counter). Model-based algorithms must override.
    fn begin_epoch(&mut self, _transfer: bool) {}

    /// Downcast hook for algorithm-specific post-hoc queries (extracting a
    /// transfer checkpoint, importance analysis). Algorithms that support
    /// such queries return `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wf_configspace::{ParamKind, ParamSpec, Value};

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new("a", ParamKind::Bool, Stage::Runtime));
        s.add(ParamSpec::new("b", ParamKind::int(0, 100), Stage::Runtime));
        s.add(ParamSpec::new("c", ParamKind::Bool, Stage::CompileTime));
        s
    }

    #[test]
    fn stage_focus_leaves_other_stages_at_default() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        let p = SamplePolicy::StageFocused(Stage::Runtime);
        for _ in 0..50 {
            let c = p.sample(&s, &mut rng);
            assert_eq!(c.by_name(&s, "c"), Some(Value::Bool(false)));
        }
    }

    #[test]
    fn mutate_default_changes_few_params() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let p = SamplePolicy::MutateDefault { max_changes: 2 };
        let d = s.default_config();
        for _ in 0..50 {
            let c = p.sample(&s, &mut rng);
            assert!(c.diff_indices(&d).len() <= 2);
        }
    }

    #[test]
    fn stage_focused_mutation_respects_stage() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let p = SamplePolicy::StageFocused(Stage::Runtime);
        let base = s.default_config();
        for _ in 0..50 {
            let m = p.mutate(&s, &base, 3, &mut rng);
            assert_eq!(m.by_name(&s, "c"), Some(Value::Bool(false)));
        }
    }

    #[test]
    fn context_best_and_crash_rate() {
        let s = space();
        let enc = Encoder::new(&s);
        let d = s.default_config();
        let history = vec![
            Observation::ok(d.clone(), 10.0, 60.0),
            Observation::crash(d.clone(), 20.0),
            Observation::ok(d.clone(), 30.0, 60.0),
        ];
        let policy = SamplePolicy::Uniform;
        let ctx = SearchContext {
            space: &s,
            encoder: &enc,
            direction: Direction::Maximize,
            policy: &policy,
            history: &history,
            iteration: 3,
        };
        assert_eq!(ctx.best().unwrap().value, Some(30.0));
        assert!((ctx.crash_rate() - 1.0 / 3.0).abs() < 1e-12);

        let ctx_min = SearchContext {
            direction: Direction::Minimize,
            ..ctx
        };
        assert_eq!(ctx_min.best().unwrap().value, Some(10.0));
        assert_eq!(ctx_min.goodness(5.0), -5.0);
    }
}
