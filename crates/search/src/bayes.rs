//! Gaussian-process Bayesian optimization (§2.3, §3.1, Fig. 9).
//!
//! A from-scratch GP with an RBF kernel, Cholesky solves, and the
//! expected-improvement acquisition function. The paper's §2.3 critique —
//! that refitting a GP is O(n³) time and O(n²) memory in the number of
//! observations — is reproduced *verbatim* by [`BayesOpt::with_full_refit`],
//! which re-factors the full kernel matrix on every observation (the
//! `search/bayes/observe_propose_full` op in `wfctl bench`).
//!
//! The default surrogate is smarter about *when* it pays that cost:
//!
//! * a single [`SearchAlgorithm::observe`] appends one row to the packed
//!   Cholesky factor (a block update: forward-solve the new off-diagonal
//!   row, then one scalar pivot) and re-solves `α = K⁻¹y` against the
//!   extended factor — O(n²) instead of O(n³). The arithmetic performs
//!   exactly the operations a from-scratch factorization would perform
//!   for its last row, so the factor, `α`, and every subsequent proposal
//!   are **bit-for-bit identical** to the full refit (proven by the
//!   `refit_equivalence` proptests at the workspace root);
//! * wave boundaries ([`SearchAlgorithm::observe_batch`]) still refit
//!   from scratch: one O(n³) factorization amortized over the whole wave,
//!   which doubles as a periodic numerical re-anchor;
//! * if an incremental pivot ever comes out non-positive (the matrix
//!   needs jitter), the update falls back to the same jittered full refit
//!   the from-scratch path would run — the two modes cannot diverge.
//!
//! Unchanged limitations the paper holds against this class: categorical
//! parameters enter as one-hot features, which the RBF kernel treats
//! poorly (§2.3); crashes carry no signal of their own — they are imputed
//! with the worst observed value, so the optimizer keeps wandering into
//! crash regions it cannot represent (§3.2); and the factor is still
//! O(n²) memory however it is maintained.
//!
//! # Batched EI scoring
//!
//! Proposal scoring is the other profiled hot path: every candidate in
//! the pool needs one forward substitution against the packed factor —
//! O(n²) work and, at history 800, a ~2.5 MB streaming read of the factor
//! *per candidate*. The default scorer therefore batches the whole pool
//! into one matrix-level triangular solve: candidates are packed
//! interleaved into a kernel-column matrix and a single packed forward
//! substitution sweeps the factor across all columns at once (the factor
//! streams once per block of eight candidates, and the inner loops
//! vectorize across the candidate lane). Per candidate the scalar
//! operation sequence — operand order included — is exactly the
//! per-candidate loop's, so the scores and every downstream proposal are
//! **bit-for-bit identical** to the sequential path
//! ([`BayesOpt::with_scalar_ei`]), proven by the `refit_equivalence`
//! proptests and the doctest below.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage, Value};
//! use wf_jobfile::Direction;
//! use wf_search::api::{Observation, SamplePolicy, SearchAlgorithm, SearchContext};
//! use wf_search::BayesOpt;
//!
//! let mut space = ConfigSpace::new();
//! space.add(
//!     ParamSpec::new("x", ParamKind::int(0, 99), Stage::Runtime).with_default(Value::Int(0)),
//! );
//! let encoder = Encoder::new(&space);
//! let policy = SamplePolicy::Uniform;
//! let mut batched = BayesOpt::new(); // matrix-level pool scoring (default)
//! let mut scalar = BayesOpt::new().with_scalar_ei(true); // per-candidate reference
//! let mut history = Vec::new();
//! let mut rng = StdRng::seed_from_u64(7);
//! for i in 0..12 {
//!     let ctx = SearchContext {
//!         space: &space,
//!         encoder: &encoder,
//!         direction: Direction::Maximize,
//!         policy: &policy,
//!         history: &history,
//!         iteration: i,
//!     };
//!     let c = policy.sample(&space, &mut rng);
//!     let obs = Observation::ok(c, (i as f64).sin(), 1.0);
//!     batched.observe(&ctx, &obs);
//!     scalar.observe(&ctx, &obs);
//!     history.push(obs);
//! }
//! let ctx = SearchContext {
//!     space: &space,
//!     encoder: &encoder,
//!     direction: Direction::Maximize,
//!     policy: &policy,
//!     history: &history,
//!     iteration: 12,
//! };
//! let (mut r1, mut r2) = (StdRng::seed_from_u64(9), StdRng::seed_from_u64(9));
//! assert_eq!(batched.propose(&ctx, &mut r1), scalar.propose(&ctx, &mut r2));
//! ```

use crate::api::{fill_distinct, AlgoStats, Observation, SearchAlgorithm, SearchContext};
use crate::host_clock::HostTimer;
use crate::memtrack::{bytes_of_f64s, MemTracker};
use rand::rngs::StdRng;
use wf_configspace::Configuration;

/// Gaussian-process Bayesian optimization with expected improvement.
#[derive(Debug)]
pub struct BayesOpt {
    /// RBF length scale.
    length_scale: f64,
    /// Signal variance.
    signal_var: f64,
    /// Observation noise variance.
    noise_var: f64,
    /// Random proposals before the first fit.
    n_init: usize,
    /// Candidate pool size per proposal.
    pool: usize,
    /// Exploration margin ξ in EI.
    xi: f64,
    /// Refit from scratch on every single observe (the pre-optimization
    /// O(n³) path the paper critiques; kept for benches and equivalence
    /// proofs).
    full_refit_only: bool,
    /// Score proposal pools with the per-candidate EI loop instead of the
    /// batched matrix-level solve (bit-identical; kept for benches and
    /// equivalence proofs).
    scalar_ei: bool,

    // Fitted state.
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    chol: Option<Cholesky>,
    /// Whether the current factor needed diagonal jitter; a jittered
    /// factor is never extended incrementally (see module docs).
    jittered: bool,
    alpha: Vec<f64>,
    /// Mean/std of the targets at the last refit.
    y_stats: (f64, f64),
    mem: MemTracker,
    last_update_seconds: f64,
}

impl Default for BayesOpt {
    fn default() -> Self {
        Self::new()
    }
}

impl BayesOpt {
    /// Creates an optimizer with standard hyperparameters.
    pub fn new() -> Self {
        BayesOpt {
            length_scale: 1.0,
            signal_var: 1.0,
            noise_var: 1e-4,
            n_init: 8,
            pool: 200,
            xi: 0.01,
            full_refit_only: false,
            scalar_ei: false,
            xs: Vec::new(),
            ys: Vec::new(),
            chol: None,
            jittered: false,
            alpha: Vec::new(),
            y_stats: (0.0, 1.0),
            mem: MemTracker::new(),
            last_update_seconds: 0.0,
        }
    }

    /// Overrides the candidate pool size.
    pub fn with_pool(mut self, pool: usize) -> Self {
        self.pool = pool.max(8);
        self
    }

    /// Forces a from-scratch O(n³) refit on every `observe` — the
    /// pre-optimization cost profile §2.3 describes. The default (false)
    /// performs the bit-equivalent O(n²) incremental factor extension.
    pub fn with_full_refit(mut self, full: bool) -> Self {
        self.full_refit_only = full;
        self
    }

    /// Scores proposal pools with the per-candidate EI loop — one O(n²)
    /// triangular solve (and one full streaming read of the packed
    /// factor) per candidate — instead of the default matrix-level
    /// batched solve. The two paths are bit-identical (see the module
    /// docs); this toggle exists for the `search/bayes/propose_pool_scalar`
    /// bench op and the equivalence proptests.
    pub fn with_scalar_ei(mut self, scalar: bool) -> Self {
        self.scalar_ei = scalar;
        self
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum();
        self.signal_var * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// The packed kernel row for observation `i` against observations
    /// `0..=i`, with the noise term (plus `jitter`) on the diagonal.
    fn kernel_row(&self, i: usize, jitter: f64) -> Vec<f64> {
        let mut row: Vec<f64> = (0..=i)
            .map(|j| self.kernel(&self.xs[i], &self.xs[j]))
            .collect();
        row[i] += self.noise_var + jitter;
        row
    }

    /// Refits the GP on all stored observations (the O(n³) step), with
    /// jitter retries on numerical failure.
    fn refit(&mut self) {
        let n = self.xs.len();
        if n == 0 {
            self.chol = None;
            return;
        }
        // The retry ladder reproduces the classic "add diagonal jitter
        // until SPD" loop: attempt a grows the cumulative jitter by
        // 1e-8·10^a, exactly like repeatedly bumping the stored diagonal.
        let mut jitter = 0.0;
        for attempt in 0..6 {
            let mut chol = Cholesky::new();
            let ok = (0..n).all(|i| chol.try_extend(&self.kernel_row(i, jitter)));
            if ok {
                self.chol = Some(chol);
                self.jittered = attempt > 0;
                self.refresh_alpha();
                self.account();
                return;
            }
            jitter += 1e-8 * 10f64.powi(attempt);
        }
        panic!("kernel matrix is not SPD even after {jitter:e} diagonal jitter");
    }

    /// Extends the factor by the newest observation (O(n²)) — or falls
    /// back to a full refit when the factor is missing, jittered, or the
    /// new pivot is not positive. Bit-equivalent to [`BayesOpt::refit`]
    /// in every case.
    fn refit_incremental(&mut self) {
        let n = self.xs.len();
        let extendable =
            !self.jittered && self.chol.as_ref().is_some_and(|c| n > 0 && c.n() == n - 1);
        if !extendable {
            self.refit();
            return;
        }
        let row = self.kernel_row(n - 1, 0.0);
        let chol = self.chol.as_mut().expect("checked above");
        if !chol.try_extend(&row) {
            // The matrix needs jitter: hand over to the retry ladder.
            self.refit();
            return;
        }
        self.refresh_alpha();
        self.account();
    }

    /// Recomputes the target standardization and `α = K⁻¹ y` against the
    /// current factor (O(n²)). Shared by both refit paths so the fitted
    /// state is identical whichever maintained the factor.
    fn refresh_alpha(&mut self) {
        let n = self.ys.len();
        // Standardize targets so the kernel amplitudes stay sane.
        let mean = self.ys.iter().sum::<f64>() / n as f64;
        let std = (self.ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n as f64)
            .sqrt()
            .max(1e-9);
        let yn: Vec<f64> = self.ys.iter().map(|y| (y - mean) / std).collect();
        self.alpha = self.chol.as_ref().expect("factor exists").solve(&yn);
        self.y_stats = (mean, std);
    }

    /// Accounts live memory: packed factor + solve vectors + data.
    fn account(&mut self) {
        let n = self.xs.len();
        let data: usize = self.xs.iter().map(|x| bytes_of_f64s(x.len())).sum();
        self.mem
            .set_live(bytes_of_f64s(n * (n + 1) / 2) + bytes_of_f64s(n * 2) + data);
    }

    /// Posterior mean and variance at `x` (standardized units).
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let chol = match &self.chol {
            Some(c) => c,
            None => return (0.0, self.signal_var),
        };
        let kstar: Vec<f64> = self.xs.iter().map(|xi| self.kernel(x, xi)).collect();
        let mu: f64 = kstar
            .iter()
            .zip(self.alpha.iter())
            .map(|(a, b)| a * b)
            .sum();
        let v = chol.solve_lower(&kstar);
        let var = (self.kernel(x, x) - v.iter().map(|z| z * z).sum::<f64>()).max(1e-12);
        (mu, var)
    }

    /// Expected improvement over the incumbent (standardized units).
    fn expected_improvement(&self, x: &[f64], best: f64) -> f64 {
        let (mu, var) = self.predict(x);
        let sigma = var.sqrt();
        if sigma < 1e-12 {
            return 0.0;
        }
        let z = (mu - best - self.xi) / sigma;
        (mu - best - self.xi) * norm_cdf(z) + sigma * norm_pdf(z)
    }

    /// Expected improvement for a whole candidate pool: the batched
    /// matrix-level path by default, or the per-candidate reference loop
    /// under [`BayesOpt::with_scalar_ei`]. The outputs are bit-identical.
    fn pool_ei(&self, xs: &[Vec<f64>], best: f64) -> Vec<f64> {
        if self.scalar_ei {
            xs.iter()
                .map(|x| self.expected_improvement(x, best))
                .collect()
        } else {
            self.ei_batch(xs, best)
        }
    }

    /// Batched expected improvement: one matrix-level triangular solve
    /// across the candidate pool.
    ///
    /// Candidates are processed in blocks of [`EI_BLOCK`]. A block's
    /// kernel columns are packed candidate-interleaved (`ks[j·b + c]` is
    /// `k(x_c, xs[j])`), and both stages stream their big operand once
    /// per block instead of once per candidate: the kernel packing walks
    /// the stored history a single time (accumulating all of a block's
    /// squared distances dimension by dimension), and one packed forward
    /// substitution ([`Cholesky::solve_lower_multi`]) sweeps the factor
    /// across every column at once. The inner loops vectorize across the
    /// candidate lane. Per candidate the scalar operation sequence —
    /// accumulation order included — is exactly what
    /// [`BayesOpt::expected_improvement`] performs, so the scores are
    /// bit-for-bit identical to the sequential path; only the memory
    /// access pattern changes.
    fn ei_batch(&self, xs: &[Vec<f64>], best: f64) -> Vec<f64> {
        let chol = match &self.chol {
            Some(c) => c,
            None => {
                return xs
                    .iter()
                    .map(|x| self.expected_improvement(x, best))
                    .collect()
            }
        };
        let n = chol.n();
        let mut out = Vec::with_capacity(xs.len());
        let mut ks: Vec<f64> = Vec::new();
        let mut xt: Vec<f64> = Vec::new();
        for block in xs.chunks(EI_BLOCK) {
            let b = block.len();
            ks.clear();
            ks.resize(n * b, 0.0);
            // Transpose the block (xt[d·b + c] = x_c[d]) so the distance
            // accumulation reads contiguous candidate lanes, then stream
            // the history once for the whole block. Each candidate's
            // squared distance folds d-ascending from 0.0 and feeds the
            // exact `kernel` expression, so every packed value is
            // bit-identical to a scalar `kernel(x_c, xs[j])` call.
            let dim = block.first().map_or(0, |x| x.len());
            xt.clear();
            xt.resize(dim * b, 0.0);
            for (c, x) in block.iter().enumerate() {
                for (d, &v) in x.iter().enumerate() {
                    xt[d * b + c] = v;
                }
            }
            for (j, xi) in self.xs.iter().enumerate() {
                let mut d2 = [0.0f64; EI_BLOCK];
                for (d, &h) in xi.iter().enumerate().take(dim) {
                    let lane = &xt[d * b..(d + 1) * b];
                    for c in 0..b {
                        let diff = lane[c] - h;
                        d2[c] += diff * diff;
                    }
                }
                let row = &mut ks[j * b..(j + 1) * b];
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot = self.signal_var
                        * (-d2[c] / (2.0 * self.length_scale * self.length_scale)).exp();
                }
            }
            // μ_c = Σ_j k*(c, j)·α_j, accumulated j-ascending exactly like
            // the scalar dot product in `predict`.
            let mut mu = [0.0f64; EI_BLOCK];
            for j in 0..n {
                let a = self.alpha[j];
                for c in 0..b {
                    mu[c] += ks[j * b + c] * a;
                }
            }
            chol.solve_lower_multi(&mut ks, b);
            for (c, x) in block.iter().enumerate() {
                let mut ss = 0.0;
                for i in 0..n {
                    let z = ks[i * b + c];
                    ss += z * z;
                }
                let var = (self.kernel(x, x) - ss).max(1e-12);
                let sigma = var.sqrt();
                out.push(if sigma < 1e-12 {
                    0.0
                } else {
                    let z = (mu[c] - best - self.xi) / sigma;
                    (mu[c] - best - self.xi) * norm_cdf(z) + sigma * norm_pdf(z)
                });
            }
        }
        out
    }

    /// Kernel correlation in [0, 1]: 1 at zero distance, → 0 far away.
    fn correlation(&self, a: &[f64], b: &[f64]) -> f64 {
        (self.kernel(a, b) / self.signal_var.max(1e-12)).clamp(0.0, 1.0)
    }
}

/// Candidate-block width of the batched EI scorer: small enough that a
/// block's solve state stays cache-resident, wide enough to amortize each
/// factor-row load across several candidates and fill SIMD lanes.
const EI_BLOCK: usize = 8;

// Running target statistics captured at refit time.
impl BayesOpt {
    fn standardized_best(&self) -> f64 {
        if self.ys.is_empty() {
            return 0.0;
        }
        let (mean, std) = self.y_stats;
        let best = self.ys.iter().cloned().fold(f64::MIN, f64::max);
        (best - mean) / std
    }

    /// Stores one observation without refitting. Crashes are imputed with
    /// the worst value seen so far: the GP has no crash concept, which is
    /// exactly the §2.3 limitation.
    fn ingest(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let x = ctx.encoder.encode(ctx.space, &obs.config);
        let y = match obs.value {
            Some(v) => ctx.goodness(v),
            None => self
                .ys
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .min(0.0),
        };
        self.xs.push(x);
        self.ys.push(y);
    }
}

impl SearchAlgorithm for BayesOpt {
    fn name(&self) -> &'static str {
        "bayesian"
    }

    fn propose(&mut self, ctx: &SearchContext<'_>, rng: &mut StdRng) -> Configuration {
        let t0 = HostTimer::start();
        let out = if self.xs.len() < self.n_init || self.chol.is_none() {
            ctx.policy.sample(ctx.space, rng)
        } else {
            // Sample the pool first, then score it in one batched pass.
            // The RNG stream, the candidate order, and the strict-`>`
            // argmax are exactly the sequential loop's, so the proposal
            // is unchanged bit for bit.
            let best = self.standardized_best();
            let mut configs = Vec::with_capacity(self.pool);
            let mut xs = Vec::with_capacity(self.pool);
            for _ in 0..self.pool {
                let c = ctx.policy.sample(ctx.space, rng);
                xs.push(ctx.encoder.encode(ctx.space, &c));
                configs.push(c);
            }
            let eis = self.pool_ei(&xs, best);
            let mut best_idx = None;
            let mut best_ei = f64::MIN;
            for (i, ei) in eis.iter().enumerate() {
                if *ei > best_ei {
                    best_ei = *ei;
                    best_idx = Some(i);
                }
            }
            match best_idx {
                Some(i) => configs.swap_remove(i),
                None => ctx.policy.sample(ctx.space, rng),
            }
        };
        self.last_update_seconds += t0.seconds();
        out
    }

    fn propose_batch(
        &mut self,
        n: usize,
        ctx: &SearchContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<Configuration> {
        let t0 = HostTimer::start();
        let out = if self.xs.len() < self.n_init || self.chol.is_none() {
            let mut cold = Vec::with_capacity(n);
            fill_distinct(
                &mut cold,
                n,
                ctx,
                rng,
                &mut std::collections::HashSet::new(),
            );
            cold
        } else {
            // q-EI by local penalization [González et al., AISTATS'16
            // style]: greedily pick the EI maximizer, then discount every
            // remaining candidate by its kernel correlation with the
            // already-pending picks. Pending points thus repel the rest of
            // the wave — n workers explore n hypotheses instead of one.
            let best = self.standardized_best();
            let pool_n = self.pool.max(4 * n);
            struct PoolEntry {
                config: Configuration,
                x: Vec<f64>,
                ei: f64,
                fingerprint: u64,
            }
            let mut configs = Vec::with_capacity(pool_n);
            let mut xs = Vec::with_capacity(pool_n);
            for _ in 0..pool_n {
                let config = ctx.policy.sample(ctx.space, rng);
                xs.push(ctx.encoder.encode(ctx.space, &config));
                configs.push(config);
            }
            let eis = self.pool_ei(&xs, best);
            let pool: Vec<PoolEntry> = configs
                .into_iter()
                .zip(xs)
                .zip(eis)
                .map(|((config, x), ei)| {
                    let fingerprint = config.fingerprint();
                    PoolEntry {
                        config,
                        x,
                        ei,
                        fingerprint,
                    }
                })
                .collect();
            let mut picked: Vec<Configuration> = Vec::with_capacity(n);
            let mut picked_xs: Vec<&[f64]> = Vec::with_capacity(n);
            let mut picked_fps = std::collections::HashSet::new();
            let mut used = vec![false; pool.len()];
            for _ in 0..n {
                let mut best_idx = None;
                let mut best_score = f64::MIN;
                for (i, entry) in pool.iter().enumerate() {
                    if used[i] || picked_fps.contains(&entry.fingerprint) {
                        continue;
                    }
                    let penalty: f64 = picked_xs
                        .iter()
                        .map(|p| 1.0 - self.correlation(&entry.x, p))
                        .product();
                    let score = entry.ei * penalty;
                    if score > best_score {
                        best_score = score;
                        best_idx = Some(i);
                    }
                }
                match best_idx {
                    Some(i) => {
                        used[i] = true;
                        picked_fps.insert(pool[i].fingerprint);
                        picked.push(pool[i].config.clone());
                        picked_xs.push(&pool[i].x);
                    }
                    // Pool exhausted of distinct fingerprints: top up with
                    // fresh samples outside the pool.
                    None => break,
                }
            }
            fill_distinct(&mut picked, n, ctx, rng, &mut picked_fps);
            picked
        };
        self.last_update_seconds += t0.seconds();
        out
    }

    fn observe(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let t0 = HostTimer::start();
        self.ingest(ctx, obs);
        if self.full_refit_only {
            self.refit();
        } else {
            self.refit_incremental();
        }
        self.last_update_seconds = t0.seconds();
    }

    fn observe_batch(&mut self, ctx: &SearchContext<'_>, batch: &[Observation]) {
        // A wave boundary: one from-scratch refit over the whole wave
        // amortizes the O(n³) cost across every worker's observation and
        // re-anchors the incremental factor numerically.
        let t0 = HostTimer::start();
        for obs in batch {
            self.ingest(ctx, obs);
        }
        self.refit();
        self.last_update_seconds = t0.seconds();
    }

    fn begin_epoch(&mut self, _transfer: bool) {
        // A GP's kernel matrix *is* its observations — there is no model
        // to carry across a workload shift, so both transfer and cold
        // restart drop the fitted state (hyperparameters are config, not
        // state, and survive).
        self.xs.clear();
        self.ys.clear();
        self.chol = None;
        self.jittered = false;
        self.alpha.clear();
        self.y_stats = (0.0, 1.0);
        self.mem.set_live(0);
    }

    fn stats(&self) -> AlgoStats {
        AlgoStats {
            last_update_seconds: self.last_update_seconds,
            memory_bytes: self.mem.live(),
        }
    }
}

/// Dense Cholesky factor (lower triangular) in packed row storage: row `i`
/// occupies indices `i(i+1)/2 .. i(i+1)/2 + i + 1`. Packing is what makes
/// the incremental extension O(n²): appending a row never relayouts the
/// rows already factored.
#[derive(Debug)]
struct Cholesky {
    l: Vec<f64>,
    n: usize,
}

/// Start of packed row `i`.
#[inline]
fn tri(i: usize) -> usize {
    i * (i + 1) / 2
}

impl Cholesky {
    /// An empty (0×0) factor.
    fn new() -> Cholesky {
        Cholesky {
            l: Vec::new(),
            n: 0,
        }
    }

    /// Dimension of the factored matrix.
    fn n(&self) -> usize {
        self.n
    }

    /// Extends the factor of an n×n matrix to (n+1)×(n+1) given the new
    /// packed matrix row (`n + 1` entries, diagonal last, noise/jitter
    /// already applied). Performs exactly the operations a from-scratch
    /// factorization runs for its last row. Returns `false` — leaving the
    /// factor unchanged — if the new pivot is not positive.
    fn try_extend(&mut self, row: &[f64]) -> bool {
        let n = self.n;
        debug_assert_eq!(row.len(), n + 1);
        let start = self.l.len();
        self.l.extend_from_slice(row);
        for j in 0..n {
            let mut sum = self.l[start + j];
            for p in 0..j {
                sum -= self.l[start + p] * self.l[tri(j) + p];
            }
            self.l[start + j] = sum / self.l[tri(j) + j];
        }
        let mut sum = self.l[start + n];
        for p in 0..n {
            sum -= self.l[start + p] * self.l[start + p];
        }
        if sum <= 0.0 {
            self.l.truncate(start);
            return false;
        }
        self.l[start + n] = sum.sqrt();
        self.n = n + 1;
        true
    }

    /// Solves `L Lᵀ x = b`.
    #[allow(clippy::needless_range_loop)] // strided triangular indexing
    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        // Back substitution with Lᵀ: column `i` of the packed factor
        // below the diagonal is `l[tri(p) + i]` for `p > i`.
        let n = self.n;
        let mut x = y;
        for i in (0..n).rev() {
            let mut sum = x[i];
            for p in i + 1..n {
                sum -= self.l[tri(p) + i] * x[p];
            }
            x[i] = sum / self.l[tri(i) + i];
        }
        x
    }

    /// Forward substitution `L Y = B` over `width` right-hand sides in
    /// one sweep of the packed factor.
    ///
    /// `b` is candidate-interleaved — `b[i·width + c]` holds row `i` of
    /// column `c` — so each packed factor row `l[tri(i)..]` is loaded
    /// once and applied to every column, and the subtract/divide loops
    /// vectorize across `c`. Per column the scalar operation sequence is
    /// identical to [`Cholesky::solve_lower`]: start from the right-hand
    /// side, subtract `l[i][p]·y[p]` for `p` ascending, then divide by
    /// the pivot — so every column's solution is bit-for-bit the
    /// per-candidate result.
    #[allow(clippy::needless_range_loop)] // strided triangular indexing
    fn solve_lower_multi(&self, b: &mut [f64], width: usize) {
        debug_assert_eq!(b.len(), self.n * width);
        // Full blocks take the monomorphized kernel: with the width a
        // compile-time constant the candidate lane lives in registers and
        // the subtract loop unrolls into packed FMAs. The runtime-width
        // loop below serves the final partial block; both run the same
        // per-column operation sequence.
        if width == EI_BLOCK {
            return self.solve_lower_multi_w::<EI_BLOCK>(b);
        }
        let n = self.n;
        for i in 0..n {
            let row = tri(i);
            let (solved, rest) = b.split_at_mut(i * width);
            let cur = &mut rest[..width];
            for p in 0..i {
                let l = self.l[row + p];
                let y = &solved[p * width..(p + 1) * width];
                for c in 0..width {
                    cur[c] -= l * y[c];
                }
            }
            let d = self.l[row + i];
            for c in 0..width {
                cur[c] /= d;
            }
        }
    }

    /// [`Cholesky::solve_lower_multi`] at a const width: same arithmetic
    /// per column, but the current row accumulates in a `[f64; W]` held
    /// in registers for the whole factor-row sweep.
    fn solve_lower_multi_w<const W: usize>(&self, b: &mut [f64]) {
        let n = self.n;
        for i in 0..n {
            let row = &self.l[tri(i)..tri(i) + i + 1];
            let (solved, rest) = b.split_at_mut(i * W);
            let cur: &mut [f64; W] = (&mut rest[..W]).try_into().expect("exact width");
            let mut acc = *cur;
            for (p, &l) in row[..i].iter().enumerate() {
                let y: &[f64; W] = (&solved[p * W..(p + 1) * W]).try_into().expect("width");
                for c in 0..W {
                    acc[c] -= l * y[c];
                }
            }
            let d = row[i];
            for a in &mut acc {
                *a /= d;
            }
            *cur = acc;
        }
    }

    /// Solves `L y = b` (forward substitution).
    #[allow(clippy::needless_range_loop)] // strided triangular indexing
    fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = tri(i);
            let mut sum = b[i];
            for p in 0..i {
                sum -= self.l[row + p] * y[p];
            }
            y[i] = sum / self.l[row + i];
        }
        y
    }
}

/// Standard normal PDF.
fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| < 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SamplePolicy;
    use rand::Rng;
    use rand::SeedableRng;
    use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage, Value};
    use wf_jobfile::Direction;

    /// Builds a factor by extending row-by-row from a full row-major SPD
    /// matrix (test helper mirroring the old dense-factor entry point).
    fn factor_dense(k: &[f64], n: usize) -> Option<Cholesky> {
        let mut c = Cholesky::new();
        for i in 0..n {
            let row: Vec<f64> = (0..=i).map(|j| k[i * n + j]).collect();
            if !c.try_extend(&row) {
                return None;
            }
        }
        Some(c)
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // K = [[4,2],[2,3]], b = [8, 7] -> x = [1.25, 1.5].
        let k = vec![4.0, 2.0, 2.0, 3.0];
        let c = factor_dense(&k, 2).unwrap();
        let x = c.solve(&[8.0, 7.0]);
        assert!((x[0] - 1.25).abs() < 1e-10);
        assert!((x[1] - 1.5).abs() < 1e-10);
    }

    #[test]
    fn cholesky_extend_matches_from_scratch() {
        // Factor a 4×4 SPD matrix in one pass and by extending a 3×3
        // factor: the packed factors must be bit-identical.
        let k = vec![
            4.0, 1.0, 0.5, 0.2, //
            1.0, 5.0, 0.3, 0.1, //
            0.5, 0.3, 3.0, 0.4, //
            0.2, 0.1, 0.4, 2.0,
        ];
        let full = factor_dense(&k, 4).unwrap();
        let mut grown = factor_dense(&k[..0], 0).unwrap();
        for i in 0..4 {
            let row: Vec<f64> = (0..=i).map(|j| k[i * 4 + j]).collect();
            assert!(grown.try_extend(&row));
        }
        assert_eq!(full.l, grown.l);
    }

    #[test]
    fn cholesky_extend_rejects_non_spd_pivot() {
        let mut c = Cholesky::new();
        assert!(c.try_extend(&[1.0]));
        // Row making the matrix singular: [[1, 1], [1, 1]].
        assert!(!c.try_extend(&[1.0, 1.0]));
        // The factor is untouched and still usable.
        assert_eq!(c.n(), 1);
        assert_eq!(c.solve(&[2.0]), vec![2.0]);
    }

    #[test]
    fn erf_accuracy() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    fn one_d_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            ParamSpec::new("x", ParamKind::int(0, 100), Stage::Runtime)
                .with_default(Value::Int(50)),
        );
        s
    }

    /// A smooth 1-D objective the GP should optimize in few evaluations.
    fn objective(c: &Configuration, space: &ConfigSpace) -> f64 {
        let x = c.by_name(space, "x").unwrap().as_int().unwrap() as f64;
        // Peak at x = 73.
        -(x - 73.0) * (x - 73.0)
    }

    use wf_configspace::Configuration;

    #[test]
    fn gp_beats_random_on_smooth_objective() {
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let budget = 30;

        let run = |alg: &mut dyn SearchAlgorithm, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut history: Vec<Observation> = Vec::new();
            for i in 0..budget {
                let ctx = SearchContext {
                    space: &space,
                    encoder: &encoder,
                    direction: Direction::Maximize,
                    policy: &policy,
                    history: &history,
                    iteration: i,
                };
                let c = alg.propose(&ctx, &mut rng);
                let y = objective(&c, &space);
                let obs = Observation::ok(c, y, 1.0);
                let ctx = SearchContext {
                    space: &space,
                    encoder: &encoder,
                    direction: Direction::Maximize,
                    policy: &policy,
                    history: &history,
                    iteration: i,
                };
                alg.observe(&ctx, &obs);
                history.push(obs);
            }
            history
                .iter()
                .filter_map(|o| o.value)
                .fold(f64::MIN, f64::max)
        };

        let mut gp_wins = 0;
        for seed in 0..5 {
            let mut gp = BayesOpt::new().with_pool(64);
            let gp_best = run(&mut gp, seed);
            let mut rnd = crate::random::RandomSearch::new();
            let rnd_best = run(&mut rnd, seed);
            if gp_best >= rnd_best {
                gp_wins += 1;
            }
        }
        assert!(gp_wins >= 4, "GP won only {gp_wins}/5 runs");
    }

    /// Drives `alg` over `iters` random observations and returns it.
    fn drive(mut alg: BayesOpt, iters: usize, seed: u64) -> BayesOpt {
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..iters {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let obs = Observation::ok(c, rng.random::<f64>(), 1.0);
            alg.observe(&ctx, &obs);
            history.push(obs);
        }
        alg
    }

    #[test]
    fn incremental_observe_matches_full_refit_bit_for_bit() {
        let incremental = drive(BayesOpt::new(), 40, 5);
        let full = drive(BayesOpt::new().with_full_refit(true), 40, 5);
        let (ci, cf) = (incremental.chol.unwrap(), full.chol.unwrap());
        assert_eq!(ci.l, cf.l, "factors diverged");
        assert_eq!(
            incremental
                .alpha
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            full.alpha.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "alpha diverged"
        );
        assert_eq!(incremental.y_stats, full.y_stats);
    }

    #[test]
    fn solve_lower_multi_matches_per_column_bitwise() {
        let k = vec![
            4.0, 1.0, 0.5, 0.2, //
            1.0, 5.0, 0.3, 0.1, //
            0.5, 0.3, 3.0, 0.4, //
            0.2, 0.1, 0.4, 2.0,
        ];
        let c = factor_dense(&k, 4).unwrap();
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|j| {
                (0..4)
                    .map(|i| ((i * 7 + j * 3) % 11) as f64 - 5.0)
                    .collect()
            })
            .collect();
        // Interleave the columns, one multi-solve, then compare each
        // column against its scalar forward substitution bit for bit.
        let width = cols.len();
        let mut b = vec![0.0; 4 * width];
        for (j, col) in cols.iter().enumerate() {
            for i in 0..4 {
                b[i * width + j] = col[i];
            }
        }
        c.solve_lower_multi(&mut b, width);
        for (j, col) in cols.iter().enumerate() {
            let y = c.solve_lower(col);
            for i in 0..4 {
                assert_eq!(b[i * width + j].to_bits(), y[i].to_bits());
            }
        }
    }

    #[test]
    fn batched_ei_matches_scalar_ei_bitwise() {
        let alg = drive(BayesOpt::new(), 40, 11);
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let mut rng = StdRng::seed_from_u64(17);
        // 19 candidates: two full blocks of EI_BLOCK plus a remainder.
        let xs: Vec<Vec<f64>> = (0..19)
            .map(|_| {
                let c = SamplePolicy::Uniform.sample(&space, &mut rng);
                encoder.encode(&space, &c)
            })
            .collect();
        let best = alg.standardized_best();
        let batched = alg.ei_batch(&xs, best);
        for (x, ei) in xs.iter().zip(&batched) {
            assert_eq!(
                ei.to_bits(),
                alg.expected_improvement(x, best).to_bits(),
                "batched EI diverged from the per-candidate path"
            );
        }
    }

    #[test]
    fn duplicate_observations_stay_numerically_stable() {
        // Identical configurations give identical kernel rows; the noise
        // term must keep every incremental pivot positive (or trigger the
        // jittered fallback) without panicking.
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = BayesOpt::new();
        let history: Vec<Observation> = Vec::new();
        let cfg = space.default_config();
        for i in 0..30 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &Observation::ok(cfg.clone(), 1.0, 1.0));
        }
        let x = encoder.encode(&space, &cfg);
        let (mu, var) = alg.predict(&x);
        assert!(mu.is_finite() && var.is_finite());
    }

    #[test]
    fn memory_grows_quadratically() {
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = BayesOpt::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut history: Vec<Observation> = Vec::new();
        let mut mem_at = Vec::new();
        for i in 0..60 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let obs = Observation::ok(c, rng.random::<f64>(), 1.0);
            alg.observe(&ctx, &obs);
            history.push(obs);
            mem_at.push(alg.stats().memory_bytes);
        }
        // 60 observations vs 30: the packed factor alone quadruples.
        assert!(mem_at[59] as f64 > mem_at[29] as f64 * 3.0);
    }

    #[test]
    fn crashes_are_imputed_not_fatal() {
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = BayesOpt::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..20 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = alg.propose(&ctx, &mut rng);
            let obs = if i % 3 == 0 {
                Observation::crash(c, 10.0)
            } else {
                Observation::ok(c, 1.0, 1.0)
            };
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &obs);
            history.push(obs);
        }
        // Still produces finite predictions after crash imputation.
        let x = encoder.encode(&space, &space.default_config());
        let (mu, var) = alg.predict(&x);
        assert!(mu.is_finite() && var.is_finite() && var > 0.0);
    }
}
