//! Gaussian-process Bayesian optimization (§2.3, §3.1, Fig. 9).
//!
//! A from-scratch GP with an RBF kernel, Cholesky solves, and the
//! expected-improvement acquisition function. Every property the paper
//! holds against Bayesian optimization is visible here by construction:
//!
//! * refitting is O(n³) time and O(n²) memory in the number of
//!   observations (no incremental updates);
//! * categorical parameters enter as one-hot features, which the RBF
//!   kernel treats poorly (§2.3's "difficulty to fit categorical
//!   parameters");
//! * crashes carry no signal of their own — they are imputed with the
//!   worst observed value, so the optimizer keeps wandering into crash
//!   regions it cannot represent (§3.2: competing methods "lack" failure
//!   prediction).

use crate::api::{fill_distinct, AlgoStats, Observation, SearchAlgorithm, SearchContext};
use crate::memtrack::{bytes_of_f64s, MemTracker};
use rand::rngs::StdRng;
use std::time::Instant;
use wf_configspace::Configuration;

/// Gaussian-process Bayesian optimization with expected improvement.
#[derive(Debug)]
pub struct BayesOpt {
    /// RBF length scale.
    length_scale: f64,
    /// Signal variance.
    signal_var: f64,
    /// Observation noise variance.
    noise_var: f64,
    /// Random proposals before the first fit.
    n_init: usize,
    /// Candidate pool size per proposal.
    pool: usize,
    /// Exploration margin ξ in EI.
    xi: f64,

    // Fitted state.
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    chol: Option<Cholesky>,
    alpha: Vec<f64>,
    /// Mean/std of the targets at the last refit.
    y_stats: (f64, f64),
    mem: MemTracker,
    last_update_seconds: f64,
}

impl Default for BayesOpt {
    fn default() -> Self {
        Self::new()
    }
}

impl BayesOpt {
    /// Creates an optimizer with standard hyperparameters.
    pub fn new() -> Self {
        BayesOpt {
            length_scale: 1.0,
            signal_var: 1.0,
            noise_var: 1e-4,
            n_init: 8,
            pool: 200,
            xi: 0.01,
            xs: Vec::new(),
            ys: Vec::new(),
            chol: None,
            alpha: Vec::new(),
            y_stats: (0.0, 1.0),
            mem: MemTracker::new(),
            last_update_seconds: 0.0,
        }
    }

    /// Overrides the candidate pool size.
    pub fn with_pool(mut self, pool: usize) -> Self {
        self.pool = pool.max(8);
        self
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum();
        self.signal_var * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// Refits the GP on all stored observations (the O(n³) step).
    fn refit(&mut self) {
        let n = self.xs.len();
        if n == 0 {
            self.chol = None;
            return;
        }
        // Standardize targets so the kernel amplitudes stay sane.
        let mean = self.ys.iter().sum::<f64>() / n as f64;
        let std = (self.ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n as f64)
            .sqrt()
            .max(1e-9);
        let yn: Vec<f64> = self.ys.iter().map(|y| (y - mean) / std).collect();

        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = self.kernel(&self.xs[i], &self.xs[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
            k[i * n + i] += self.noise_var;
        }
        let chol = Cholesky::factor(k, n).expect("kernel matrix is SPD with jitter");
        self.alpha = chol.solve(&yn);
        // Account: kernel matrix + factor + data.
        let data: usize = self.xs.iter().map(|x| bytes_of_f64s(x.len())).sum();
        self.mem
            .set_live(bytes_of_f64s(2 * n * n) + bytes_of_f64s(n * 2) + data);
        self.chol = Some(chol);
        self.y_stats = (mean, std);
    }

    /// Posterior mean and variance at `x` (standardized units).
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let chol = match &self.chol {
            Some(c) => c,
            None => return (0.0, self.signal_var),
        };
        let kstar: Vec<f64> = self.xs.iter().map(|xi| self.kernel(x, xi)).collect();
        let mu: f64 = kstar
            .iter()
            .zip(self.alpha.iter())
            .map(|(a, b)| a * b)
            .sum();
        let v = chol.solve_lower(&kstar);
        let var = (self.kernel(x, x) - v.iter().map(|z| z * z).sum::<f64>()).max(1e-12);
        (mu, var)
    }

    /// Expected improvement over the incumbent (standardized units).
    fn expected_improvement(&self, x: &[f64], best: f64) -> f64 {
        let (mu, var) = self.predict(x);
        let sigma = var.sqrt();
        if sigma < 1e-12 {
            return 0.0;
        }
        let z = (mu - best - self.xi) / sigma;
        (mu - best - self.xi) * norm_cdf(z) + sigma * norm_pdf(z)
    }

    /// Kernel correlation in [0, 1]: 1 at zero distance, → 0 far away.
    fn correlation(&self, a: &[f64], b: &[f64]) -> f64 {
        (self.kernel(a, b) / self.signal_var.max(1e-12)).clamp(0.0, 1.0)
    }
}

// Running target statistics captured at refit time.
impl BayesOpt {
    fn standardized_best(&self) -> f64 {
        if self.ys.is_empty() {
            return 0.0;
        }
        let (mean, std) = self.y_stats;
        let best = self.ys.iter().cloned().fold(f64::MIN, f64::max);
        (best - mean) / std
    }

    /// Stores one observation without refitting. Crashes are imputed with
    /// the worst value seen so far: the GP has no crash concept, which is
    /// exactly the §2.3 limitation.
    fn ingest(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let x = ctx.encoder.encode(ctx.space, &obs.config);
        let y = match obs.value {
            Some(v) => ctx.goodness(v),
            None => self
                .ys
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .min(0.0),
        };
        self.xs.push(x);
        self.ys.push(y);
    }
}

impl SearchAlgorithm for BayesOpt {
    fn name(&self) -> &'static str {
        "bayesian"
    }

    fn propose(&mut self, ctx: &SearchContext<'_>, rng: &mut StdRng) -> Configuration {
        let t0 = Instant::now();
        let out = if self.xs.len() < self.n_init || self.chol.is_none() {
            ctx.policy.sample(ctx.space, rng)
        } else {
            let best = self.standardized_best();
            let mut best_cfg = None;
            let mut best_ei = f64::MIN;
            for _ in 0..self.pool {
                let c = ctx.policy.sample(ctx.space, rng);
                let x = ctx.encoder.encode(ctx.space, &c);
                let ei = self.expected_improvement(&x, best);
                if ei > best_ei {
                    best_ei = ei;
                    best_cfg = Some(c);
                }
            }
            best_cfg.unwrap_or_else(|| ctx.policy.sample(ctx.space, rng))
        };
        self.last_update_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn propose_batch(
        &mut self,
        n: usize,
        ctx: &SearchContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<Configuration> {
        let t0 = Instant::now();
        let out = if self.xs.len() < self.n_init || self.chol.is_none() {
            let mut cold = Vec::with_capacity(n);
            fill_distinct(
                &mut cold,
                n,
                ctx,
                rng,
                &mut std::collections::HashSet::new(),
            );
            cold
        } else {
            // q-EI by local penalization [González et al., AISTATS'16
            // style]: greedily pick the EI maximizer, then discount every
            // remaining candidate by its kernel correlation with the
            // already-pending picks. Pending points thus repel the rest of
            // the wave — n workers explore n hypotheses instead of one.
            let best = self.standardized_best();
            let pool_n = self.pool.max(4 * n);
            struct PoolEntry {
                config: Configuration,
                x: Vec<f64>,
                ei: f64,
                fingerprint: u64,
            }
            let pool: Vec<PoolEntry> = (0..pool_n)
                .map(|_| {
                    let config = ctx.policy.sample(ctx.space, rng);
                    let x = ctx.encoder.encode(ctx.space, &config);
                    let ei = self.expected_improvement(&x, best);
                    let fingerprint = config.fingerprint();
                    PoolEntry {
                        config,
                        x,
                        ei,
                        fingerprint,
                    }
                })
                .collect();
            let mut picked: Vec<Configuration> = Vec::with_capacity(n);
            let mut picked_xs: Vec<&[f64]> = Vec::with_capacity(n);
            let mut picked_fps = std::collections::HashSet::new();
            let mut used = vec![false; pool.len()];
            for _ in 0..n {
                let mut best_idx = None;
                let mut best_score = f64::MIN;
                for (i, entry) in pool.iter().enumerate() {
                    if used[i] || picked_fps.contains(&entry.fingerprint) {
                        continue;
                    }
                    let penalty: f64 = picked_xs
                        .iter()
                        .map(|p| 1.0 - self.correlation(&entry.x, p))
                        .product();
                    let score = entry.ei * penalty;
                    if score > best_score {
                        best_score = score;
                        best_idx = Some(i);
                    }
                }
                match best_idx {
                    Some(i) => {
                        used[i] = true;
                        picked_fps.insert(pool[i].fingerprint);
                        picked.push(pool[i].config.clone());
                        picked_xs.push(&pool[i].x);
                    }
                    // Pool exhausted of distinct fingerprints: top up with
                    // fresh samples outside the pool.
                    None => break,
                }
            }
            fill_distinct(&mut picked, n, ctx, rng, &mut picked_fps);
            picked
        };
        self.last_update_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn observe(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let t0 = Instant::now();
        self.ingest(ctx, obs);
        self.refit();
        self.last_update_seconds = t0.elapsed().as_secs_f64();
    }

    fn observe_batch(&mut self, ctx: &SearchContext<'_>, batch: &[Observation]) {
        // Refitting is O(n³) from scratch, so one refit over the whole
        // wave produces a model identical to per-observation refits at a
        // fraction of the cost — the batch protocol's main saving here.
        let t0 = Instant::now();
        for obs in batch {
            self.ingest(ctx, obs);
        }
        self.refit();
        self.last_update_seconds = t0.elapsed().as_secs_f64();
    }

    fn stats(&self) -> AlgoStats {
        AlgoStats {
            last_update_seconds: self.last_update_seconds,
            memory_bytes: self.mem.live(),
        }
    }
}

/// Dense Cholesky factorization (lower triangular), with jitter retries.
#[derive(Debug)]
struct Cholesky {
    l: Vec<f64>,
    n: usize,
}

impl Cholesky {
    /// Factors a row-major SPD matrix, adding diagonal jitter on failure.
    fn factor(mut k: Vec<f64>, n: usize) -> Option<Cholesky> {
        for attempt in 0..6 {
            match Self::try_factor(&k, n) {
                Some(c) => return Some(c),
                None => {
                    let jitter = 1e-8 * 10f64.powi(attempt);
                    for i in 0..n {
                        k[i * n + i] += jitter;
                    }
                }
            }
        }
        None
    }

    fn try_factor(k: &[f64], n: usize) -> Option<Cholesky> {
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = k[i * n + j];
                for p in 0..j {
                    sum -= l[i * n + p] * l[j * n + p];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Some(Cholesky { l, n })
    }

    /// Solves `L Lᵀ x = b`.
    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = self.solve_lower(b);
        // Back substitution with Lᵀ. Triangular solves index strided rows
        // and columns of the packed factor; iterator forms obscure that.
        #[allow(clippy::needless_range_loop)]
        {
            let n = self.n;
            let mut x = y;
            for i in (0..n).rev() {
                let mut sum = x[i];
                for p in i + 1..n {
                    sum -= self.l[p * n + i] * x[p];
                }
                x[i] = sum / self.l[i * n + i];
            }
            x
        }
    }

    /// Solves `L y = b` (forward substitution).
    #[allow(clippy::needless_range_loop)] // see `solve`
    fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for p in 0..i {
                sum -= self.l[i * n + p] * y[p];
            }
            y[i] = sum / self.l[i * n + i];
        }
        y
    }
}

/// Standard normal PDF.
fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn norm_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| < 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SamplePolicy;
    use rand::Rng;
    use rand::SeedableRng;
    use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage, Value};
    use wf_jobfile::Direction;

    #[test]
    fn cholesky_solves_spd_system() {
        // K = [[4,2],[2,3]], b = [8, 7] -> x = [1.25, 1.5].
        let k = vec![4.0, 2.0, 2.0, 3.0];
        let c = Cholesky::factor(k, 2).unwrap();
        let x = c.solve(&[8.0, 7.0]);
        assert!((x[0] - 1.25).abs() < 1e-10);
        assert!((x[1] - 1.5).abs() < 1e-10);
    }

    #[test]
    fn erf_accuracy() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    fn one_d_space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(
            ParamSpec::new("x", ParamKind::int(0, 100), Stage::Runtime)
                .with_default(Value::Int(50)),
        );
        s
    }

    /// A smooth 1-D objective the GP should optimize in few evaluations.
    fn objective(c: &Configuration, space: &ConfigSpace) -> f64 {
        let x = c.by_name(space, "x").unwrap().as_int().unwrap() as f64;
        // Peak at x = 73.
        -(x - 73.0) * (x - 73.0)
    }

    use wf_configspace::Configuration;

    #[test]
    fn gp_beats_random_on_smooth_objective() {
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let budget = 30;

        let run = |alg: &mut dyn SearchAlgorithm, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut history: Vec<Observation> = Vec::new();
            for i in 0..budget {
                let ctx = SearchContext {
                    space: &space,
                    encoder: &encoder,
                    direction: Direction::Maximize,
                    policy: &policy,
                    history: &history,
                    iteration: i,
                };
                let c = alg.propose(&ctx, &mut rng);
                let y = objective(&c, &space);
                let obs = Observation::ok(c, y, 1.0);
                let ctx = SearchContext {
                    space: &space,
                    encoder: &encoder,
                    direction: Direction::Maximize,
                    policy: &policy,
                    history: &history,
                    iteration: i,
                };
                alg.observe(&ctx, &obs);
                history.push(obs);
            }
            history
                .iter()
                .filter_map(|o| o.value)
                .fold(f64::MIN, f64::max)
        };

        let mut gp_wins = 0;
        for seed in 0..5 {
            let mut gp = BayesOpt::new().with_pool(64);
            let gp_best = run(&mut gp, seed);
            let mut rnd = crate::random::RandomSearch::new();
            let rnd_best = run(&mut rnd, seed);
            if gp_best >= rnd_best {
                gp_wins += 1;
            }
        }
        assert!(gp_wins >= 4, "GP won only {gp_wins}/5 runs");
    }

    #[test]
    fn memory_grows_quadratically() {
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = BayesOpt::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut history: Vec<Observation> = Vec::new();
        let mut mem_at = Vec::new();
        for i in 0..60 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let obs = Observation::ok(c, rng.random::<f64>(), 1.0);
            alg.observe(&ctx, &obs);
            history.push(obs);
            mem_at.push(alg.stats().memory_bytes);
        }
        // 60 observations vs 30: the kernel matrix alone quadruples.
        assert!(mem_at[59] as f64 > mem_at[29] as f64 * 3.0);
    }

    #[test]
    fn crashes_are_imputed_not_fatal() {
        let space = one_d_space();
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = BayesOpt::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..20 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = alg.propose(&ctx, &mut rng);
            let obs = if i % 3 == 0 {
                Observation::crash(c, 10.0)
            } else {
                Observation::ok(c, 1.0, 1.0)
            };
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &obs);
            history.push(obs);
        }
        // Still produces finite predictions after crash imputation.
        let x = encoder.encode(&space, &space.default_config());
        let (mu, var) = alg.predict(&x);
        assert!(mu.is_finite() && var.is_finite() && var > 0.0);
    }
}
