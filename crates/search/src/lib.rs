//! `wf-search`: the pluggable search-algorithm API and the paper's
//! baseline algorithms (§3.1, §2.3).
//!
//! * [`api`] — the [`SearchAlgorithm`] trait (single-candidate *and*
//!   batch ask/tell: `propose_batch`/`observe_batch`), observations,
//!   contexts, sampling policies, and per-iteration cost statistics;
//! * [`random`] — the random-search baseline;
//! * [`grid`] — systematic coordinate sweeps;
//! * [`bayes`] — Gaussian-process Bayesian optimization (RBF kernel,
//!   packed Cholesky, expected improvement). The default maintains the
//!   factor incrementally (O(n²) per observe) and scores proposal pools
//!   with one batched matrix-level triangular solve; the from-scratch
//!   O(n³)-per-observe profile the paper critiques (Fig. 9) survives
//!   behind `BayesOpt::with_full_refit`, bit-identical by proof;
//! * [`causal`] — a Unicorn-style PC-algorithm causal search. The default
//!   folds column statistics at ingest and persists the skeleton's
//!   adjacency/sepset state across waves; the recompute-everything cost
//!   profile that reproduces Fig. 7 survives behind
//!   `CausalSearch::with_scratch_stats`, bit-identical by proof;
//! * [`memtrack`] — explicit byte accounting (the `tracemalloc`
//!   substitute).
//!
//! DeepTune itself lives in `wf-deeptune` and implements the same trait.

pub mod api;
pub mod bayes;
pub mod causal;
pub mod grid;
pub mod host_clock;
pub mod memtrack;
pub mod random;

pub use api::{
    fill_distinct, AlgoStats, Observation, SamplePolicy, SearchAlgorithm, SearchContext,
};
pub use bayes::BayesOpt;
pub use causal::CausalSearch;
pub use grid::GridSearch;
pub use memtrack::MemTracker;
pub use random::RandomSearch;
