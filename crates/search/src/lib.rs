//! `wf-search`: the pluggable search-algorithm API and the paper's
//! baseline algorithms (§3.1, §2.3).
//!
//! * [`api`] — the [`SearchAlgorithm`] trait (single-candidate *and*
//!   batch ask/tell: `propose_batch`/`observe_batch`), observations,
//!   contexts, sampling policies, and per-iteration cost statistics;
//! * [`random`] — the random-search baseline;
//! * [`grid`] — systematic coordinate sweeps;
//! * [`bayes`] — from-scratch Gaussian-process Bayesian optimization
//!   (RBF kernel, Cholesky, expected improvement) with its O(n³)/O(n²)
//!   costs on display (Fig. 9);
//! * [`causal`] — a Unicorn-style PC-algorithm causal search whose
//!   recompute-everything cost profile reproduces Fig. 7;
//! * [`memtrack`] — explicit byte accounting (the `tracemalloc`
//!   substitute).
//!
//! DeepTune itself lives in `wf-deeptune` and implements the same trait.

pub mod api;
pub mod bayes;
pub mod causal;
pub mod grid;
pub mod host_clock;
pub mod memtrack;
pub mod random;

pub use api::{
    fill_distinct, AlgoStats, Observation, SamplePolicy, SearchAlgorithm, SearchContext,
};
pub use bayes::BayesOpt;
pub use causal::CausalSearch;
pub use grid::GridSearch;
pub use memtrack::MemTracker;
pub use random::RandomSearch;
