//! Unicorn-style causal-inference search (§2.3, Fig. 7).
//!
//! Unicorn [Iqbal et al., EuroSys'22] reasons about configuration
//! performance through a causal graph recomputed from the observation
//! history. This module implements that algorithm class: a PC-style
//! skeleton discovery over the configuration features plus the outcome
//! variable, using partial-correlation conditional-independence tests
//! (Fisher z), followed by interventions on the outcome's neighbors.
//!
//! The cost profile the paper holds against this class (Fig. 7) is
//! reproduced verbatim by [`CausalSearch::with_scratch_stats`], which
//! recomputes every column statistic over all `n` observations on each
//! rebuild and re-discovers the skeleton by full conditioning-set
//! enumeration — that variant drives the Fig. 7 regeneration. The
//! default maintains the intervention ranking *incrementally* along two
//! axes:
//!
//! * **statistics** — ingesting an observation folds the new row into
//!   running raw-moment sums (O(vars²)), so a rebuild assembles the
//!   correlation matrix from the sums instead of rescanning the history.
//!   A from-scratch rescan folds the rows in exactly the same order, so
//!   the two statistics modes are bit-identical;
//! * **skeleton** — the adjacency and the separating set that removed
//!   each edge persist across waves. On a rebuild, a previously separated
//!   edge re-tests its stored sepset *first*: while the new wave's
//!   sufficient statistics still support the separation (the common case
//!   once an edge has stabilized), the edge is re-confirmed with one
//!   conditional-independence test instead of a full conditioning-set
//!   enumeration. A failed re-test falls back to the full enumeration, so
//!   the edge decision — "does *some* candidate set separate the pair?" —
//!   is evaluated over exactly the sets the from-scratch sweep
//!   ([`CausalSearch::with_scratch_skeleton`]) would consider, and the
//!   resulting skeleton is **bit-identical** (proven by the
//!   `refit_equivalence` proptests at the workspace root and the doctest
//!   below).
//!
//! [`CausalSearch::with_ci_budget`] additionally caps the order ≥ 1
//! conditional tests a single rebuild may spend. Sepset reuse makes the
//! cap go far — stable edges cost one test each — but an exhausted budget
//! trusts the previous wave's verdicts for the rest of the sweep, so a
//! budgeted skeleton is an explicit approximation and is *not* covered by
//! the equivalence guarantee.
//!
//! What still grows: as data accumulates, more edges become statistically
//! significant, so node degrees grow and the number of conditional tests
//! grows superlinearly (sepset reuse blunts, budget caps). In the scratch
//! profile, test results are additionally cached across iterations keyed
//! by sample count (recomputation is the algorithm, caching is the
//! memory), so memory grows with every iteration — the Fig. 7 blow-up.
//! The default skips that cache — recomputing a Fisher z is cheaper than
//! hashing its key — and persists only the sepset map, bounded by the
//! number of edges ever separated.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage};
//! use wf_jobfile::Direction;
//! use wf_search::api::{Observation, SamplePolicy, SearchAlgorithm, SearchContext};
//! use wf_search::CausalSearch;
//!
//! let mut space = ConfigSpace::new();
//! for i in 0..6 {
//!     space.add(ParamSpec::new(
//!         format!("p{i}"),
//!         ParamKind::int(0, 100),
//!         Stage::Runtime,
//!     ));
//! }
//! let encoder = Encoder::new(&space);
//! let policy = SamplePolicy::Uniform;
//! let mut incremental = CausalSearch::new(); // persisted skeleton (default)
//! let mut scratch = CausalSearch::new().with_scratch_stats(true); // published profile
//! let mut history = Vec::new();
//! let mut rng = StdRng::seed_from_u64(5);
//! for i in 0..24 {
//!     let ctx = SearchContext {
//!         space: &space,
//!         encoder: &encoder,
//!         direction: Direction::Maximize,
//!         policy: &policy,
//!         history: &history,
//!         iteration: i,
//!     };
//!     let c = policy.sample(&space, &mut rng);
//!     let y = c.by_name(&space, "p0").unwrap().as_f64();
//!     let obs = Observation::ok(c, y, 1.0);
//!     incremental.observe(&ctx, &obs);
//!     scratch.observe(&ctx, &obs);
//!     history.push(obs);
//! }
//! let ctx = SearchContext {
//!     space: &space,
//!     encoder: &encoder,
//!     direction: Direction::Maximize,
//!     policy: &policy,
//!     history: &history,
//!     iteration: 24,
//! };
//! let (mut r1, mut r2) = (StdRng::seed_from_u64(9), StdRng::seed_from_u64(9));
//! assert_eq!(
//!     incremental.propose_batch(3, &ctx, &mut r1),
//!     scratch.propose_batch(3, &ctx, &mut r2),
//! );
//! ```

use crate::api::{fill_distinct, AlgoStats, Observation, SearchAlgorithm, SearchContext};
use crate::host_clock::HostTimer;
use crate::memtrack::{bytes_of_f64s, MemTracker};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use wf_configspace::Configuration;

/// PC-style causal search over configuration features.
#[derive(Debug)]
pub struct CausalSearch {
    /// Significance threshold for Fisher-z tests.
    z_threshold: f64,
    /// Highest conditioning-set order tested (Unicorn uses small orders).
    max_order: usize,
    /// Random proposals before the first graph is built.
    n_init: usize,
    /// Candidate pool size per proposal.
    pool: usize,
    /// Recompute the column statistics from the full history on every
    /// rebuild (the published Unicorn cost profile; used by Fig. 7).
    scratch_stats: bool,
    /// Re-discover the skeleton by full conditioning-set enumeration on
    /// every rebuild, with the sample-count-keyed test cache (the
    /// published profile; implied by `scratch_stats`).
    scratch_skeleton: bool,
    /// Cap on order ≥ 1 conditional-independence tests per rebuild
    /// (`None` = unlimited; the only mode covered by the equivalence
    /// guarantee).
    ci_budget: Option<usize>,

    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    /// Running per-variable sums Σv (features then outcome), folded in at
    /// ingest so rebuilds need no history rescan.
    sums: Vec<f64>,
    /// Running raw cross-moment sums Σ vᵢ·vⱼ, lower triangle of a
    /// `vars × vars` matrix in packed row order.
    cross: Vec<f64>,
    /// Adjacency of the last skeleton; index `f == n_features` is the
    /// outcome variable.
    adjacency: Vec<Vec<usize>>,
    /// Correlation of each feature with the outcome (last recompute).
    outcome_corr: Vec<f64>,
    /// Accumulated test cache: (i, j, conditioning-set hash, n) → p-ish
    /// statistic. Never evicted. Scratch-skeleton mode only.
    test_cache: HashMap<(u32, u32, u64, u32), f64>,
    /// Persisted incremental-skeleton state: for each edge `(i, j)`
    /// (`i > j`) currently separated, the conditioning set that last
    /// separated it. Re-tested first on the next rebuild.
    sepsets: HashMap<(u32, u32), Vec<usize>>,
    /// Running byte estimate of `sepsets` (wf-lint: hash maps are not
    /// iterated for accounting).
    sepset_bytes: usize,
    /// Fisher-z statistics actually computed (cache hits excluded).
    tests_run: usize,
    mem: MemTracker,
    last_update_seconds: f64,
}

impl Default for CausalSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl CausalSearch {
    /// Creates a causal search with Unicorn-like settings.
    pub fn new() -> Self {
        CausalSearch {
            z_threshold: 1.96,
            max_order: 2,
            n_init: 10,
            pool: 100,
            scratch_stats: false,
            scratch_skeleton: false,
            ci_budget: None,
            xs: Vec::new(),
            ys: Vec::new(),
            sums: Vec::new(),
            cross: Vec::new(),
            adjacency: Vec::new(),
            outcome_corr: Vec::new(),
            test_cache: HashMap::new(),
            sepsets: HashMap::new(),
            sepset_bytes: 0,
            tests_run: 0,
            mem: MemTracker::new(),
            last_update_seconds: 0.0,
        }
    }

    /// Number of conditional-independence test statistics actually
    /// computed so far (scratch-mode cache hits are not re-counted).
    pub fn tests_performed(&self) -> usize {
        self.tests_run
    }

    /// Recomputes everything from scratch on every rebuild — the
    /// published Unicorn cost profile, O(n·vars²) statistics plus a full
    /// conditioning-set enumeration per rebuild (Fig. 7 regenerates with
    /// this variant; it implies [`CausalSearch::with_scratch_skeleton`]).
    /// The default (false) maintains the same sums incrementally at
    /// ingest and the skeleton incrementally across waves; both axes are
    /// bit-identical to the scratch recomputation.
    pub fn with_scratch_stats(mut self, scratch: bool) -> Self {
        self.scratch_stats = scratch;
        self.scratch_skeleton = scratch;
        self
    }

    /// Re-discovers the skeleton by full conditioning-set enumeration on
    /// every rebuild, with the sample-count-keyed test cache — the
    /// published sweep, without also rescanning the column statistics.
    /// Bit-identical to the default sepset-reusing sweep (see the module
    /// docs); the equivalence proptests drive this toggle to isolate the
    /// skeleton axis.
    pub fn with_scratch_skeleton(mut self, scratch: bool) -> Self {
        self.scratch_skeleton = scratch;
        self
    }

    /// Caps the order ≥ 1 conditional-independence tests a single rebuild
    /// may spend (level-0 marginal tests are always run — they are the
    /// skeleton's base). Sepset reuse stretches the budget: a previously
    /// separated edge usually re-confirms with one test. When the budget
    /// is exhausted mid-sweep, the remaining edges inherit the previous
    /// wave's verdicts (separated edges stay separated, the rest keep
    /// their level-0 state) — an explicit approximation, excluded from
    /// the scratch-equivalence guarantee.
    pub fn with_ci_budget(mut self, budget: usize) -> Self {
        self.ci_budget = Some(budget);
        self
    }

    /// Bookkeeping for the persisted sepset map (hash maps are never
    /// iterated for accounting, so bytes are tracked at mutation).
    fn sepset_insert(&mut self, key: (u32, u32), s: Vec<usize>) {
        let added = SEPSET_ENTRY_BYTES + s.len() * 8;
        if let Some(old) = self.sepsets.insert(key, s) {
            self.sepset_bytes -= SEPSET_ENTRY_BYTES + old.len() * 8;
        }
        self.sepset_bytes += added;
    }

    fn sepset_remove(&mut self, key: &(u32, u32)) {
        if let Some(old) = self.sepsets.remove(key) {
            self.sepset_bytes -= SEPSET_ENTRY_BYTES + old.len() * 8;
        }
    }

    /// Folds one (features, outcome) row into the running raw-moment
    /// sums, sizing them on first use. Both statistics modes funnel
    /// through this function, which is what makes them bit-identical.
    fn fold_row(sums: &mut Vec<f64>, cross: &mut Vec<f64>, x: &[f64], y: f64) {
        let f = x.len();
        let vars = f + 1;
        if sums.is_empty() {
            sums.resize(vars, 0.0);
            cross.resize(vars * (vars + 1) / 2, 0.0);
        }
        debug_assert_eq!(sums.len(), vars, "feature width changed mid-run");
        let col = |v: usize| if v < f { x[v] } else { y };
        for i in 0..vars {
            let vi = col(i);
            sums[i] += vi;
            let row = i * (i + 1) / 2;
            for (j, slot) in cross[row..row + i + 1].iter_mut().enumerate() {
                *slot += vi * col(j);
            }
        }
    }

    /// Rebuilds the intervention ranking: correlation matrix from the
    /// (incrementally maintained or rescanned) raw-moment sums, then the
    /// PC-style skeleton.
    fn rebuild(&mut self) {
        let n = self.xs.len();
        if n < 4 {
            return;
        }
        let f = self.xs[0].len();
        let vars = f + 1; // features + outcome

        if self.scratch_stats {
            // The published algorithm: rescan all n observations.
            let mut sums = Vec::new();
            let mut cross = Vec::new();
            for (x, &y) in self.xs.iter().zip(self.ys.iter()) {
                Self::fold_row(&mut sums, &mut cross, x, y);
            }
            self.sums = sums;
            self.cross = cross;
        }

        // Means, stds, and the correlation matrix from the raw moments:
        // cov(i, j) = Σvᵢvⱼ/n − mean(i)·mean(j).
        let nf = n as f64;
        let at = |i: usize, j: usize| i * (i + 1) / 2 + j; // i >= j
        let mean: Vec<f64> = (0..vars).map(|v| self.sums[v] / nf).collect();
        let std: Vec<f64> = (0..vars)
            .map(|v| {
                (self.cross[at(v, v)] / nf - mean[v] * mean[v])
                    .max(0.0)
                    .sqrt()
            })
            .collect();
        let mut corr = vec![0.0; vars * vars];
        for i in 0..vars {
            for j in 0..=i {
                let c = if std[i] < 1e-12 || std[j] < 1e-12 {
                    0.0
                } else {
                    ((self.cross[at(i, j)] / nf - mean[i] * mean[j]) / (std[i] * std[j]))
                        .clamp(-1.0, 1.0)
                };
                corr[i * vars + j] = c;
                corr[j * vars + i] = c;
            }
        }

        // Level-0 skeleton: edges where marginal dependence is significant.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); vars];
        for i in 0..vars {
            for j in 0..i {
                let r = corr[i * vars + j];
                if self.fisher_dependent(i, j, &[], r, n) {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }

        // Level 1..max_order: try to separate each edge by conditioning on
        // common neighbors (PC algorithm). Degrees grow with data, so this
        // is the superlinear part. The incremental sweep re-tests each
        // previously separated edge's stored sepset first (one test while
        // the statistics keep supporting the separation) before falling
        // back to the full enumeration; the edge decision is the same
        // "does some candidate set separate the pair?" either way, so the
        // skeleton matches the scratch sweep bit for bit.
        let mut remaining: usize = self.ci_budget.unwrap_or(usize::MAX);
        for order in 1..=self.max_order {
            let edges: Vec<(usize, usize)> = (0..vars)
                .flat_map(|i| adj[i].iter().filter(move |&&j| j < i).map(move |&j| (i, j)))
                .collect();
            for (i, j) in edges {
                let key = (i as u32, j as u32);
                let mut neighbors: Vec<usize> = adj[i]
                    .iter()
                    .chain(adj[j].iter())
                    .copied()
                    .filter(|&k| k != i && k != j)
                    .collect();
                neighbors.sort_unstable();
                neighbors.dedup();
                let mut separated: Option<Vec<usize>> = None;
                if self.scratch_skeleton {
                    for s in conditioning_sets(&neighbors, order) {
                        let pr = partial_corr(&corr, vars, i, j, &s);
                        if !self.fisher_dependent(i, j, &s, pr, n) {
                            separated = Some(s);
                            break;
                        }
                    }
                } else {
                    if remaining == 0 {
                        // Budget exhausted: inherit the previous wave's
                        // verdict instead of testing.
                        if self.sepsets.contains_key(&key) {
                            adj[i].retain(|&k| k != j);
                            adj[j].retain(|&k| k != i);
                        }
                        continue;
                    }
                    // The stored sepset is only a reordering hint: it must
                    // be one of this sweep's candidate sets, otherwise the
                    // edge decision could diverge from the scratch sweep.
                    let hint: Option<Vec<usize>> = self
                        .sepsets
                        .get(&key)
                        .filter(|h| {
                            h.len() == order && h.iter().all(|k| neighbors.binary_search(k).is_ok())
                        })
                        .cloned();
                    let mut hint_failed = false;
                    if let Some(h) = hint {
                        remaining -= 1;
                        let pr = partial_corr(&corr, vars, i, j, &h);
                        if !self.fisher_dependent(i, j, &h, pr, n) {
                            separated = Some(h);
                        } else {
                            hint_failed = true;
                        }
                    }
                    if separated.is_none() {
                        let mut truncated = false;
                        for s in conditioning_sets(&neighbors, order) {
                            if remaining == 0 {
                                truncated = true;
                                break;
                            }
                            remaining -= 1;
                            let pr = partial_corr(&corr, vars, i, j, &s);
                            if !self.fisher_dependent(i, j, &s, pr, n) {
                                separated = Some(s);
                                break;
                            }
                        }
                        // Drop a stored separation once it is disproven:
                        // either its re-test failed, or the edge survived
                        // a complete final-order enumeration. (A sweep at
                        // a lower order must not evict a higher-order
                        // sepset it never re-tested.)
                        if separated.is_none()
                            && (hint_failed || (order == self.max_order && !truncated))
                        {
                            self.sepset_remove(&key);
                        }
                    }
                }
                if let Some(s) = separated {
                    adj[i].retain(|&k| k != j);
                    adj[j].retain(|&k| k != i);
                    if !self.scratch_skeleton {
                        self.sepset_insert(key, s);
                    }
                }
            }
        }

        self.outcome_corr = (0..f).map(|i| corr[f * vars + i]).collect();
        self.adjacency = adj;

        // Account memory: raw data + correlation matrix + running moment
        // sums + adjacency + the persisted sepsets + (scratch profile
        // only) the ever-growing test cache (3 u32 + u64 key ≈ 24 B +
        // 8 B value).
        let data = self
            .xs
            .iter()
            .map(|x| bytes_of_f64s(x.len()))
            .sum::<usize>()
            + bytes_of_f64s(self.ys.len());
        let matrices = bytes_of_f64s(vars * vars)
            + bytes_of_f64s(vars * 2)
            + bytes_of_f64s(self.sums.len() + self.cross.len());
        let graph: usize = self.adjacency.iter().map(|a| a.len() * 8).sum();
        let cache = self.test_cache.len() * 48;
        self.mem
            .set_live(data + matrices + graph + cache + self.sepset_bytes);
    }

    /// Stores one observation without rebuilding the skeleton, folding it
    /// into the running moment sums. Crashes are imputed with the worst
    /// observed value (no crash concept).
    fn ingest(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let x = ctx.encoder.encode(ctx.space, &obs.config);
        let y = match obs.value {
            Some(v) => ctx.goodness(v),
            None => self
                .ys
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .min(0.0),
        };
        Self::fold_row(&mut self.sums, &mut self.cross, &x, y);
        self.xs.push(x);
        self.ys.push(y);
    }

    /// The linear causal estimate of the outcome for an encoded candidate:
    /// correlation-weighted sum over the outcome's causal neighbors (or
    /// all features while the skeleton has none).
    fn causal_score(&self, x: &[f64]) -> f64 {
        let f = self.outcome_corr.len();
        let outcome = f; // outcome variable index in the skeleton
        let causal_features: Vec<usize> = self
            .adjacency
            .get(outcome)
            .map(|adj| adj.iter().copied().filter(|&k| k < f).collect())
            .unwrap_or_default();
        if causal_features.is_empty() {
            self.outcome_corr
                .iter()
                .zip(x.iter())
                .map(|(r, v)| r * v)
                .sum()
        } else {
            causal_features
                .iter()
                .map(|&k| self.outcome_corr[k] * x[k])
                .sum()
        }
    }

    /// Draws `pool_n` candidates (half fresh samples, half mutations of
    /// the incumbent) and scores each by the causal estimate.
    fn scored_pool(
        &self,
        ctx: &SearchContext<'_>,
        rng: &mut StdRng,
        pool_n: usize,
    ) -> Vec<(f64, Configuration)> {
        (0..pool_n)
            .map(|_| {
                let c = if rng.random::<f64>() < 0.5 {
                    ctx.policy.sample(ctx.space, rng)
                } else if let Some(b) = ctx.best() {
                    ctx.policy.mutate(ctx.space, &b.config, 2, rng)
                } else {
                    ctx.policy.sample(ctx.space, rng)
                };
                let x = ctx.encoder.encode(ctx.space, &c);
                (self.causal_score(&x), c)
            })
            .collect()
    }

    /// The Fisher z statistic for correlation `r` with a conditioning set
    /// of `s_len` variables over `n` samples. Both skeleton modes funnel
    /// through this function, which is what makes their decisions
    /// identical.
    fn z_stat(r: f64, s_len: usize, n: usize) -> f64 {
        let df = n as f64 - s_len as f64 - 3.0;
        if df <= 0.0 {
            return 0.0;
        }
        let r = r.clamp(-0.999_999, 0.999_999);
        df.sqrt() * 0.5 * ((1.0 + r) / (1.0 - r)).ln()
    }

    /// Fisher-z conditional dependence test. The scratch profile caches
    /// every statistic forever, keyed by the sample count — so every
    /// iteration adds fresh entries (the Fig. 7 memory story). The
    /// incremental profile recomputes: the statistic is a handful of
    /// flops, cheaper than hashing its key.
    fn fisher_dependent(&mut self, i: usize, j: usize, s: &[usize], r: f64, n: usize) -> bool {
        let z = if self.scratch_skeleton {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &v in s {
                h ^= v as u64 + 1;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let key = (i as u32, j as u32, h, n as u32);
            match self.test_cache.get(&key) {
                Some(&z) => z,
                None => {
                    let z = Self::z_stat(r, s.len(), n);
                    self.tests_run += 1;
                    self.test_cache.insert(key, z);
                    z
                }
            }
        } else {
            self.tests_run += 1;
            Self::z_stat(r, s.len(), n)
        };
        z.abs() > self.z_threshold
    }
}

/// Estimated bytes per sepset map entry beyond the set itself: the edge
/// key, the `Vec` header, and hash-table slot overhead.
const SEPSET_ENTRY_BYTES: usize = 40;

/// All conditioning sets of exactly `order` elements (bounded enumeration).
fn conditioning_sets(neighbors: &[usize], order: usize) -> Vec<Vec<usize>> {
    let mut uniq: Vec<usize> = neighbors.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    match order {
        1 => uniq.iter().map(|&k| vec![k]).collect(),
        2 => {
            let mut out = Vec::new();
            for a in 0..uniq.len() {
                for b in a + 1..uniq.len() {
                    out.push(vec![uniq[a], uniq[b]]);
                }
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Partial correlation of (i, j) given S (|S| ≤ 2), by recursion.
fn partial_corr(corr: &[f64], vars: usize, i: usize, j: usize, s: &[usize]) -> f64 {
    let r = |a: usize, b: usize| corr[a * vars + b];
    match s {
        [] => r(i, j),
        [k] => {
            let num = r(i, j) - r(i, *k) * r(j, *k);
            let den = ((1.0 - r(i, *k).powi(2)) * (1.0 - r(j, *k).powi(2))).sqrt();
            if den < 1e-12 {
                0.0
            } else {
                num / den
            }
        }
        [k, l] => {
            let rij_k = partial_corr(corr, vars, i, j, &[*k]);
            let ril_k = partial_corr(corr, vars, i, *l, &[*k]);
            let rjl_k = partial_corr(corr, vars, j, *l, &[*k]);
            let den = ((1.0 - ril_k * ril_k) * (1.0 - rjl_k * rjl_k)).sqrt();
            if den < 1e-12 {
                0.0
            } else {
                (rij_k - ril_k * rjl_k) / den
            }
        }
        _ => r(i, j),
    }
}

impl SearchAlgorithm for CausalSearch {
    fn name(&self) -> &'static str {
        "causal"
    }

    fn propose(&mut self, ctx: &SearchContext<'_>, rng: &mut StdRng) -> Configuration {
        let t0 = HostTimer::start();
        let out = if self.xs.len() < self.n_init || self.outcome_corr.is_empty() {
            ctx.policy.sample(ctx.space, rng)
        } else {
            // Intervene: score candidates by the linear causal estimate of
            // the outcome from features adjacent to it.
            let scored = self.scored_pool(ctx, rng, self.pool);
            scored
                .into_iter()
                .reduce(|best, cand| if cand.0 > best.0 { cand } else { best })
                .expect("pool is non-empty")
                .1
        };
        self.last_update_seconds += t0.seconds();
        out
    }

    fn propose_batch(
        &mut self,
        n: usize,
        ctx: &SearchContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<Configuration> {
        let t0 = HostTimer::start();
        let out = if self.xs.len() < self.n_init || self.outcome_corr.is_empty() {
            (0..n).map(|_| ctx.policy.sample(ctx.space, rng)).collect()
        } else {
            // Score one shared candidate pool by the causal estimate, then
            // take the top `n` distinct configurations: the wave walks the
            // ranked interventions instead of re-testing the single best.
            let scored = self.scored_pool(ctx, rng, (self.pool).max(4 * n));
            let mut ranked: Vec<usize> = (0..scored.len()).collect();
            ranked.sort_by(|&a, &b| {
                scored[b]
                    .0
                    .partial_cmp(&scored[a].0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut picked: Vec<Configuration> = Vec::with_capacity(n);
            let mut fps = std::collections::HashSet::new();
            for i in ranked {
                if picked.len() == n {
                    break;
                }
                if fps.insert(scored[i].1.fingerprint()) {
                    picked.push(scored[i].1.clone());
                }
            }
            // Pool held fewer than n distinct fingerprints (tiny spaces):
            // top up with fresh distinct policy samples.
            fill_distinct(&mut picked, n, ctx, rng, &mut fps);
            picked
        };
        self.last_update_seconds += t0.seconds();
        out
    }

    fn observe(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let t0 = HostTimer::start();
        self.ingest(ctx, obs);
        self.rebuild();
        self.last_update_seconds = t0.seconds();
    }

    fn observe_batch(&mut self, ctx: &SearchContext<'_>, batch: &[Observation]) {
        // The skeleton is recomputed from scratch anyway, so one rebuild
        // over the whole wave reaches the same graph as per-observation
        // rebuilds while skipping the intermediate recomputes.
        let t0 = HostTimer::start();
        for obs in batch {
            self.ingest(ctx, obs);
        }
        self.rebuild();
        self.last_update_seconds = t0.seconds();
    }

    fn begin_epoch(&mut self, _transfer: bool) {
        // The causal graph is estimated from per-epoch observations; a
        // workload shift invalidates the correlations it encodes, so both
        // modes restart from scratch. The conditional-independence test
        // cache is keyed by sample count and data hashes, so stale entries
        // can never be re-hit; dropping it (and the persisted sepsets,
        // which encode the invalidated graph) keeps memory honest.
        self.xs.clear();
        self.ys.clear();
        self.sums.clear();
        self.cross.clear();
        self.adjacency.clear();
        self.outcome_corr.clear();
        self.test_cache.clear();
        self.sepsets.clear();
        self.sepset_bytes = 0;
        self.tests_run = 0;
        self.mem.set_live(0);
    }

    fn stats(&self) -> AlgoStats {
        AlgoStats {
            last_update_seconds: self.last_update_seconds,
            memory_bytes: self.mem.live(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SamplePolicy;
    use rand::SeedableRng;
    use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage};
    use wf_jobfile::Direction;

    fn space(dims: usize) -> ConfigSpace {
        let mut s = ConfigSpace::new();
        for i in 0..dims {
            s.add(ParamSpec::new(
                format!("p{i}"),
                ParamKind::int(0, 100),
                Stage::Runtime,
            ));
        }
        s
    }

    #[test]
    fn partial_correlation_chain_rule() {
        // X -> Z -> Y: r_xy should vanish conditioned on Z.
        // Construct correlations of a linear chain with unit coefficients.
        let vars = 3;
        let r_xz = 0.8;
        let r_zy = 0.7;
        let r_xy = r_xz * r_zy;
        let corr = vec![
            1.0, r_xz, r_xy, //
            r_xz, 1.0, r_zy, //
            r_xy, r_zy, 1.0,
        ];
        let pc = partial_corr(&corr, vars, 0, 2, &[1]);
        assert!(pc.abs() < 1e-9, "pc={pc}");
    }

    #[test]
    fn conditioning_sets_enumerate() {
        assert_eq!(conditioning_sets(&[3, 5], 1), vec![vec![3], vec![5]]);
        assert_eq!(conditioning_sets(&[3, 5, 7], 2).len(), 3);
        assert_eq!(conditioning_sets(&[3, 3, 5], 1).len(), 2, "dedup");
    }

    /// Drives the search on a linear ground truth and returns per-iteration
    /// (time, memory) stats.
    fn drive(dims: usize, iters: usize) -> Vec<AlgoStats> {
        let space = space(dims);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = CausalSearch::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut history: Vec<Observation> = Vec::new();
        let mut out = Vec::new();
        for i in 0..iters {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = alg.propose(&ctx, &mut rng);
            // Outcome depends on p0 and p1 only.
            let y = c.by_name(&space, "p0").unwrap().as_f64()
                + 0.5 * c.by_name(&space, "p1").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &obs);
            history.push(obs);
            out.push(alg.stats());
        }
        out
    }

    #[test]
    fn incremental_sums_match_a_scratch_rescan_bit_for_bit() {
        // Two searches over the same stream, one folding rows at ingest,
        // one rescanning the history per rebuild: identical correlations,
        // skeletons, and therefore identical intervention rankings.
        let space = space(12);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut incremental = CausalSearch::new();
        let mut scratch = CausalSearch::new().with_scratch_stats(true);
        let mut rng = StdRng::seed_from_u64(33);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..40 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let y = c.by_name(&space, "p0").unwrap().as_f64()
                - 0.3 * c.by_name(&space, "p3").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            incremental.observe(&ctx, &obs);
            scratch.observe(&ctx, &obs);
            history.push(obs);
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&incremental.sums), bits(&scratch.sums));
        assert_eq!(bits(&incremental.cross), bits(&scratch.cross));
        assert_eq!(bits(&incremental.outcome_corr), bits(&scratch.outcome_corr));
        assert_eq!(incremental.adjacency, scratch.adjacency);
        // Same model ⇒ same proposals from the same RNG state.
        let ctx = SearchContext {
            space: &space,
            encoder: &encoder,
            direction: Direction::Maximize,
            policy: &policy,
            history: &history,
            iteration: 40,
        };
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        assert_eq!(
            incremental.propose_batch(4, &ctx, &mut rng_a),
            scratch.propose_batch(4, &ctx, &mut rng_b)
        );
    }

    /// Feeds the same observation stream to two searches and asserts they
    /// agree on skeleton, ranking, and proposals bit for bit.
    fn assert_equivalent(mut a: CausalSearch, mut b: CausalSearch, seed: u64) {
        let space = space(12);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..48 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let y = c.by_name(&space, "p0").unwrap().as_f64()
                - 0.3 * c.by_name(&space, "p3").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            // Alternate single observes and wave boundaries so rebuilds
            // happen at several history lengths.
            if i % 5 == 4 {
                let wave = [obs.clone()];
                a.observe_batch(&ctx, &wave);
                b.observe_batch(&ctx, &wave);
            } else {
                a.observe(&ctx, &obs);
                b.observe(&ctx, &obs);
            }
            history.push(obs);
            assert_eq!(a.adjacency, b.adjacency, "skeletons diverged at i={i}");
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.outcome_corr), bits(&b.outcome_corr));
        let ctx = SearchContext {
            space: &space,
            encoder: &encoder,
            direction: Direction::Maximize,
            policy: &policy,
            history: &history,
            iteration: 48,
        };
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        assert_eq!(
            a.propose_batch(4, &ctx, &mut rng_a),
            b.propose_batch(4, &ctx, &mut rng_b)
        );
    }

    #[test]
    fn incremental_skeleton_matches_scratch_sweep_bit_for_bit() {
        // Isolates the skeleton axis: both sides fold statistics
        // incrementally; only the sweep differs.
        assert_equivalent(
            CausalSearch::new(),
            CausalSearch::new().with_scratch_skeleton(true),
            41,
        );
    }

    #[test]
    fn incremental_everything_matches_full_scratch_profile() {
        // Both axes at once: the published Fig. 7 profile.
        assert_equivalent(
            CausalSearch::new(),
            CausalSearch::new().with_scratch_stats(true),
            42,
        );
    }

    #[test]
    fn sepset_reuse_cuts_conditional_tests() {
        // Same stream, with and without the persisted skeleton: the
        // sepset-reusing sweep must compute strictly fewer statistics.
        let space = space(12);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut incremental = CausalSearch::new();
        let mut scratch = CausalSearch::new().with_scratch_skeleton(true);
        let mut rng = StdRng::seed_from_u64(13);
        let history: Vec<Observation> = Vec::new();
        for i in 0..60 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let y = c.by_name(&space, "p0").unwrap().as_f64()
                + 0.5 * c.by_name(&space, "p1").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            incremental.observe(&ctx, &obs);
            scratch.observe(&ctx, &obs);
        }
        assert_eq!(incremental.adjacency, scratch.adjacency);
        // The scratch count excludes cache hits, so this compares unique
        // statistics against the incremental sweep's total work.
        assert!(
            incremental.tests_performed() < scratch.tests_performed(),
            "incremental {} vs scratch {}",
            incremental.tests_performed(),
            scratch.tests_performed()
        );
    }

    #[test]
    fn ci_budget_caps_conditional_tests_per_rebuild() {
        let space = space(16);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let budget = 10;
        let mut alg = CausalSearch::new().with_ci_budget(budget);
        let mut rng = StdRng::seed_from_u64(21);
        let history: Vec<Observation> = Vec::new();
        let vars = 17; // 16 features + outcome
        let level0 = vars * (vars - 1) / 2;
        let mut prev = 0;
        for i in 0..50 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let y = c.by_name(&space, "p0").unwrap().as_f64();
            alg.observe(&ctx, &Observation::ok(c, y, 1.0));
            let spent = alg.tests_performed() - prev;
            prev = alg.tests_performed();
            assert!(
                spent <= level0 + budget,
                "rebuild at i={i} spent {spent} tests (level-0 cap {level0} + budget {budget})"
            );
        }
    }

    #[test]
    fn budgeted_search_still_finds_the_influential_parameter() {
        let space = space(10);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = CausalSearch::new().with_ci_budget(25);
        let mut rng = StdRng::seed_from_u64(11);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..60 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = alg.propose(&ctx, &mut rng);
            let y = c.by_name(&space, "p0").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &obs);
            history.push(obs);
        }
        let late: Vec<f64> = history[40..]
            .iter()
            .map(|o| o.config.by_name(&space, "p0").unwrap().as_f64())
            .collect();
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(mean > 65.0, "late p0 mean {mean} (random would be ~50)");
    }

    #[test]
    fn memory_grows_across_iterations() {
        let stats = drive(20, 40);
        assert!(stats[39].memory_bytes > stats[10].memory_bytes);
        // Growth continues (cache never shrinks).
        assert!(stats[39].memory_bytes > stats[25].memory_bytes);
    }

    #[test]
    fn finds_the_influential_parameter() {
        let space = space(10);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = CausalSearch::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..60 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = alg.propose(&ctx, &mut rng);
            let y = c.by_name(&space, "p0").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &obs);
            history.push(obs);
        }
        // The last third of proposals should push p0 high.
        let late: Vec<f64> = history[40..]
            .iter()
            .map(|o| o.config.by_name(&space, "p0").unwrap().as_f64())
            .collect();
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(mean > 65.0, "late p0 mean {mean} (random would be ~50)");
    }
}
