//! Unicorn-style causal-inference search (§2.3, Fig. 7).
//!
//! Unicorn [Iqbal et al., EuroSys'22] reasons about configuration
//! performance through a causal graph recomputed from the observation
//! history. This module implements that algorithm class: a PC-style
//! skeleton discovery over the configuration features plus the outcome
//! variable, using partial-correlation conditional-independence tests
//! (Fisher z), followed by interventions on the outcome's neighbors.
//!
//! The cost profile the paper holds against this class (Fig. 7) is
//! reproduced verbatim by [`CausalSearch::with_scratch_stats`], which
//! recomputes every column statistic over all `n` observations on each
//! rebuild — that variant drives the Fig. 7 regeneration. The default
//! maintains the intervention ranking *incrementally*: ingesting an
//! observation folds the new row into running raw-moment sums (O(vars²)),
//! so a rebuild assembles the correlation matrix from the sums instead of
//! rescanning the history — the rebuild cost stops growing with `n`.
//! Because a from-scratch recomputation sums the rows in exactly the same
//! order, the two modes produce **bit-identical** correlations, skeletons,
//! and intervention rankings (proven by the `refit_equivalence` proptests
//! at the workspace root).
//!
//! What still grows, in both modes:
//!
//! * as data accumulates, more edges become statistically significant, so
//!   node degrees grow and the number of order-1/order-2 conditional
//!   tests grows superlinearly;
//! * test results are cached across iterations keyed by sample count
//!   (recomputation is the algorithm, caching is the memory), so memory
//!   grows with every iteration — the Fig. 7 blow-up.

use crate::api::{fill_distinct, AlgoStats, Observation, SearchAlgorithm, SearchContext};
use crate::host_clock::HostTimer;
use crate::memtrack::{bytes_of_f64s, MemTracker};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use wf_configspace::Configuration;

/// PC-style causal search over configuration features.
#[derive(Debug)]
pub struct CausalSearch {
    /// Significance threshold for Fisher-z tests.
    z_threshold: f64,
    /// Highest conditioning-set order tested (Unicorn uses small orders).
    max_order: usize,
    /// Random proposals before the first graph is built.
    n_init: usize,
    /// Candidate pool size per proposal.
    pool: usize,
    /// Recompute the column statistics from the full history on every
    /// rebuild (the published Unicorn cost profile; used by Fig. 7).
    scratch_stats: bool,

    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    /// Running per-variable sums Σv (features then outcome), folded in at
    /// ingest so rebuilds need no history rescan.
    sums: Vec<f64>,
    /// Running raw cross-moment sums Σ vᵢ·vⱼ, lower triangle of a
    /// `vars × vars` matrix in packed row order.
    cross: Vec<f64>,
    /// Adjacency of the last skeleton; index `f == n_features` is the
    /// outcome variable.
    adjacency: Vec<Vec<usize>>,
    /// Correlation of each feature with the outcome (last recompute).
    outcome_corr: Vec<f64>,
    /// Accumulated test cache: (i, j, conditioning-set hash, n) → p-ish
    /// statistic. Never evicted.
    test_cache: HashMap<(u32, u32, u64, u32), f64>,
    mem: MemTracker,
    last_update_seconds: f64,
}

impl Default for CausalSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl CausalSearch {
    /// Creates a causal search with Unicorn-like settings.
    pub fn new() -> Self {
        CausalSearch {
            z_threshold: 1.96,
            max_order: 2,
            n_init: 10,
            pool: 100,
            scratch_stats: false,
            xs: Vec::new(),
            ys: Vec::new(),
            sums: Vec::new(),
            cross: Vec::new(),
            adjacency: Vec::new(),
            outcome_corr: Vec::new(),
            test_cache: HashMap::new(),
            mem: MemTracker::new(),
            last_update_seconds: 0.0,
        }
    }

    /// Number of conditional-independence tests performed so far.
    pub fn tests_performed(&self) -> usize {
        self.test_cache.len()
    }

    /// Recomputes the column statistics from the full history on every
    /// rebuild — the published Unicorn cost profile, O(n·vars²) per
    /// rebuild (Fig. 7 regenerates with this variant). The default
    /// (false) maintains the same sums incrementally at ingest, which is
    /// bit-identical because a rescan folds the rows in the same order.
    pub fn with_scratch_stats(mut self, scratch: bool) -> Self {
        self.scratch_stats = scratch;
        self
    }

    /// Folds one (features, outcome) row into the running raw-moment
    /// sums, sizing them on first use. Both statistics modes funnel
    /// through this function, which is what makes them bit-identical.
    fn fold_row(sums: &mut Vec<f64>, cross: &mut Vec<f64>, x: &[f64], y: f64) {
        let f = x.len();
        let vars = f + 1;
        if sums.is_empty() {
            sums.resize(vars, 0.0);
            cross.resize(vars * (vars + 1) / 2, 0.0);
        }
        debug_assert_eq!(sums.len(), vars, "feature width changed mid-run");
        let col = |v: usize| if v < f { x[v] } else { y };
        for i in 0..vars {
            let vi = col(i);
            sums[i] += vi;
            let row = i * (i + 1) / 2;
            for (j, slot) in cross[row..row + i + 1].iter_mut().enumerate() {
                *slot += vi * col(j);
            }
        }
    }

    /// Rebuilds the intervention ranking: correlation matrix from the
    /// (incrementally maintained or rescanned) raw-moment sums, then the
    /// PC-style skeleton.
    fn rebuild(&mut self) {
        let n = self.xs.len();
        if n < 4 {
            return;
        }
        let f = self.xs[0].len();
        let vars = f + 1; // features + outcome

        if self.scratch_stats {
            // The published algorithm: rescan all n observations.
            let mut sums = Vec::new();
            let mut cross = Vec::new();
            for (x, &y) in self.xs.iter().zip(self.ys.iter()) {
                Self::fold_row(&mut sums, &mut cross, x, y);
            }
            self.sums = sums;
            self.cross = cross;
        }

        // Means, stds, and the correlation matrix from the raw moments:
        // cov(i, j) = Σvᵢvⱼ/n − mean(i)·mean(j).
        let nf = n as f64;
        let at = |i: usize, j: usize| i * (i + 1) / 2 + j; // i >= j
        let mean: Vec<f64> = (0..vars).map(|v| self.sums[v] / nf).collect();
        let std: Vec<f64> = (0..vars)
            .map(|v| {
                (self.cross[at(v, v)] / nf - mean[v] * mean[v])
                    .max(0.0)
                    .sqrt()
            })
            .collect();
        let mut corr = vec![0.0; vars * vars];
        for i in 0..vars {
            for j in 0..=i {
                let c = if std[i] < 1e-12 || std[j] < 1e-12 {
                    0.0
                } else {
                    ((self.cross[at(i, j)] / nf - mean[i] * mean[j]) / (std[i] * std[j]))
                        .clamp(-1.0, 1.0)
                };
                corr[i * vars + j] = c;
                corr[j * vars + i] = c;
            }
        }

        // Level-0 skeleton: edges where marginal dependence is significant.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); vars];
        for i in 0..vars {
            for j in 0..i {
                let r = corr[i * vars + j];
                if self.fisher_dependent(i, j, &[], r, n) {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }

        // Level 1..max_order: try to separate each edge by conditioning on
        // common neighbors (PC algorithm). Degrees grow with data, so this
        // is the superlinear part.
        for order in 1..=self.max_order {
            let edges: Vec<(usize, usize)> = (0..vars)
                .flat_map(|i| adj[i].iter().filter(move |&&j| j < i).map(move |&j| (i, j)))
                .collect();
            for (i, j) in edges {
                let neighbors: Vec<usize> = adj[i]
                    .iter()
                    .chain(adj[j].iter())
                    .copied()
                    .filter(|&k| k != i && k != j)
                    .collect();
                let sets = conditioning_sets(&neighbors, order);
                let mut separated = false;
                for s in sets {
                    let pr = partial_corr(&corr, vars, i, j, &s);
                    if !self.fisher_dependent(i, j, &s, pr, n) {
                        separated = true;
                        break;
                    }
                }
                if separated {
                    adj[i].retain(|&k| k != j);
                    adj[j].retain(|&k| k != i);
                }
            }
        }

        self.outcome_corr = (0..f).map(|i| corr[f * vars + i]).collect();
        self.adjacency = adj;

        // Account memory: raw data + correlation matrix + running moment
        // sums + adjacency + the ever-growing test cache (3 u32 + u64 key
        // ≈ 24 B + 8 B value).
        let data = self
            .xs
            .iter()
            .map(|x| bytes_of_f64s(x.len()))
            .sum::<usize>()
            + bytes_of_f64s(self.ys.len());
        let matrices = bytes_of_f64s(vars * vars)
            + bytes_of_f64s(vars * 2)
            + bytes_of_f64s(self.sums.len() + self.cross.len());
        let graph: usize = self.adjacency.iter().map(|a| a.len() * 8).sum();
        let cache = self.test_cache.len() * 48;
        self.mem.set_live(data + matrices + graph + cache);
    }

    /// Stores one observation without rebuilding the skeleton, folding it
    /// into the running moment sums. Crashes are imputed with the worst
    /// observed value (no crash concept).
    fn ingest(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let x = ctx.encoder.encode(ctx.space, &obs.config);
        let y = match obs.value {
            Some(v) => ctx.goodness(v),
            None => self
                .ys
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .min(0.0),
        };
        Self::fold_row(&mut self.sums, &mut self.cross, &x, y);
        self.xs.push(x);
        self.ys.push(y);
    }

    /// The linear causal estimate of the outcome for an encoded candidate:
    /// correlation-weighted sum over the outcome's causal neighbors (or
    /// all features while the skeleton has none).
    fn causal_score(&self, x: &[f64]) -> f64 {
        let f = self.outcome_corr.len();
        let outcome = f; // outcome variable index in the skeleton
        let causal_features: Vec<usize> = self
            .adjacency
            .get(outcome)
            .map(|adj| adj.iter().copied().filter(|&k| k < f).collect())
            .unwrap_or_default();
        if causal_features.is_empty() {
            self.outcome_corr
                .iter()
                .zip(x.iter())
                .map(|(r, v)| r * v)
                .sum()
        } else {
            causal_features
                .iter()
                .map(|&k| self.outcome_corr[k] * x[k])
                .sum()
        }
    }

    /// Draws `pool_n` candidates (half fresh samples, half mutations of
    /// the incumbent) and scores each by the causal estimate.
    fn scored_pool(
        &self,
        ctx: &SearchContext<'_>,
        rng: &mut StdRng,
        pool_n: usize,
    ) -> Vec<(f64, Configuration)> {
        (0..pool_n)
            .map(|_| {
                let c = if rng.random::<f64>() < 0.5 {
                    ctx.policy.sample(ctx.space, rng)
                } else if let Some(b) = ctx.best() {
                    ctx.policy.mutate(ctx.space, &b.config, 2, rng)
                } else {
                    ctx.policy.sample(ctx.space, rng)
                };
                let x = ctx.encoder.encode(ctx.space, &c);
                (self.causal_score(&x), c)
            })
            .collect()
    }

    /// Fisher-z conditional dependence test, cached forever (keyed by the
    /// sample count, so every iteration adds fresh entries).
    fn fisher_dependent(&mut self, i: usize, j: usize, s: &[usize], r: f64, n: usize) -> bool {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &v in s {
            h ^= v as u64 + 1;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let key = (i as u32, j as u32, h, n as u32);
        let z = *self.test_cache.entry(key).or_insert_with(|| {
            let df = n as f64 - s.len() as f64 - 3.0;
            if df <= 0.0 {
                return 0.0;
            }
            let r = r.clamp(-0.999_999, 0.999_999);
            df.sqrt() * 0.5 * ((1.0 + r) / (1.0 - r)).ln()
        });
        z.abs() > self.z_threshold
    }
}

/// All conditioning sets of exactly `order` elements (bounded enumeration).
fn conditioning_sets(neighbors: &[usize], order: usize) -> Vec<Vec<usize>> {
    let mut uniq: Vec<usize> = neighbors.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    match order {
        1 => uniq.iter().map(|&k| vec![k]).collect(),
        2 => {
            let mut out = Vec::new();
            for a in 0..uniq.len() {
                for b in a + 1..uniq.len() {
                    out.push(vec![uniq[a], uniq[b]]);
                }
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Partial correlation of (i, j) given S (|S| ≤ 2), by recursion.
fn partial_corr(corr: &[f64], vars: usize, i: usize, j: usize, s: &[usize]) -> f64 {
    let r = |a: usize, b: usize| corr[a * vars + b];
    match s {
        [] => r(i, j),
        [k] => {
            let num = r(i, j) - r(i, *k) * r(j, *k);
            let den = ((1.0 - r(i, *k).powi(2)) * (1.0 - r(j, *k).powi(2))).sqrt();
            if den < 1e-12 {
                0.0
            } else {
                num / den
            }
        }
        [k, l] => {
            let rij_k = partial_corr(corr, vars, i, j, &[*k]);
            let ril_k = partial_corr(corr, vars, i, *l, &[*k]);
            let rjl_k = partial_corr(corr, vars, j, *l, &[*k]);
            let den = ((1.0 - ril_k * ril_k) * (1.0 - rjl_k * rjl_k)).sqrt();
            if den < 1e-12 {
                0.0
            } else {
                (rij_k - ril_k * rjl_k) / den
            }
        }
        _ => r(i, j),
    }
}

impl SearchAlgorithm for CausalSearch {
    fn name(&self) -> &'static str {
        "causal"
    }

    fn propose(&mut self, ctx: &SearchContext<'_>, rng: &mut StdRng) -> Configuration {
        let t0 = HostTimer::start();
        let out = if self.xs.len() < self.n_init || self.outcome_corr.is_empty() {
            ctx.policy.sample(ctx.space, rng)
        } else {
            // Intervene: score candidates by the linear causal estimate of
            // the outcome from features adjacent to it.
            let scored = self.scored_pool(ctx, rng, self.pool);
            scored
                .into_iter()
                .reduce(|best, cand| if cand.0 > best.0 { cand } else { best })
                .expect("pool is non-empty")
                .1
        };
        self.last_update_seconds += t0.seconds();
        out
    }

    fn propose_batch(
        &mut self,
        n: usize,
        ctx: &SearchContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<Configuration> {
        let t0 = HostTimer::start();
        let out = if self.xs.len() < self.n_init || self.outcome_corr.is_empty() {
            (0..n).map(|_| ctx.policy.sample(ctx.space, rng)).collect()
        } else {
            // Score one shared candidate pool by the causal estimate, then
            // take the top `n` distinct configurations: the wave walks the
            // ranked interventions instead of re-testing the single best.
            let scored = self.scored_pool(ctx, rng, (self.pool).max(4 * n));
            let mut ranked: Vec<usize> = (0..scored.len()).collect();
            ranked.sort_by(|&a, &b| {
                scored[b]
                    .0
                    .partial_cmp(&scored[a].0)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut picked: Vec<Configuration> = Vec::with_capacity(n);
            let mut fps = std::collections::HashSet::new();
            for i in ranked {
                if picked.len() == n {
                    break;
                }
                if fps.insert(scored[i].1.fingerprint()) {
                    picked.push(scored[i].1.clone());
                }
            }
            // Pool held fewer than n distinct fingerprints (tiny spaces):
            // top up with fresh distinct policy samples.
            fill_distinct(&mut picked, n, ctx, rng, &mut fps);
            picked
        };
        self.last_update_seconds += t0.seconds();
        out
    }

    fn observe(&mut self, ctx: &SearchContext<'_>, obs: &Observation) {
        let t0 = HostTimer::start();
        self.ingest(ctx, obs);
        self.rebuild();
        self.last_update_seconds = t0.seconds();
    }

    fn observe_batch(&mut self, ctx: &SearchContext<'_>, batch: &[Observation]) {
        // The skeleton is recomputed from scratch anyway, so one rebuild
        // over the whole wave reaches the same graph as per-observation
        // rebuilds while skipping the intermediate recomputes.
        let t0 = HostTimer::start();
        for obs in batch {
            self.ingest(ctx, obs);
        }
        self.rebuild();
        self.last_update_seconds = t0.seconds();
    }

    fn begin_epoch(&mut self, _transfer: bool) {
        // The causal graph is estimated from per-epoch observations; a
        // workload shift invalidates the correlations it encodes, so both
        // modes restart from scratch. The conditional-independence test
        // cache is keyed by sample count and data hashes, so stale entries
        // can never be re-hit; dropping it keeps memory honest.
        self.xs.clear();
        self.ys.clear();
        self.sums.clear();
        self.cross.clear();
        self.adjacency.clear();
        self.outcome_corr.clear();
        self.test_cache.clear();
        self.mem.set_live(0);
    }

    fn stats(&self) -> AlgoStats {
        AlgoStats {
            last_update_seconds: self.last_update_seconds,
            memory_bytes: self.mem.live(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SamplePolicy;
    use rand::SeedableRng;
    use wf_configspace::{ConfigSpace, Encoder, ParamKind, ParamSpec, Stage};
    use wf_jobfile::Direction;

    fn space(dims: usize) -> ConfigSpace {
        let mut s = ConfigSpace::new();
        for i in 0..dims {
            s.add(ParamSpec::new(
                format!("p{i}"),
                ParamKind::int(0, 100),
                Stage::Runtime,
            ));
        }
        s
    }

    #[test]
    fn partial_correlation_chain_rule() {
        // X -> Z -> Y: r_xy should vanish conditioned on Z.
        // Construct correlations of a linear chain with unit coefficients.
        let vars = 3;
        let r_xz = 0.8;
        let r_zy = 0.7;
        let r_xy = r_xz * r_zy;
        let corr = vec![
            1.0, r_xz, r_xy, //
            r_xz, 1.0, r_zy, //
            r_xy, r_zy, 1.0,
        ];
        let pc = partial_corr(&corr, vars, 0, 2, &[1]);
        assert!(pc.abs() < 1e-9, "pc={pc}");
    }

    #[test]
    fn conditioning_sets_enumerate() {
        assert_eq!(conditioning_sets(&[3, 5], 1), vec![vec![3], vec![5]]);
        assert_eq!(conditioning_sets(&[3, 5, 7], 2).len(), 3);
        assert_eq!(conditioning_sets(&[3, 3, 5], 1).len(), 2, "dedup");
    }

    /// Drives the search on a linear ground truth and returns per-iteration
    /// (time, memory) stats.
    fn drive(dims: usize, iters: usize) -> Vec<AlgoStats> {
        let space = space(dims);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = CausalSearch::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut history: Vec<Observation> = Vec::new();
        let mut out = Vec::new();
        for i in 0..iters {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = alg.propose(&ctx, &mut rng);
            // Outcome depends on p0 and p1 only.
            let y = c.by_name(&space, "p0").unwrap().as_f64()
                + 0.5 * c.by_name(&space, "p1").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &obs);
            history.push(obs);
            out.push(alg.stats());
        }
        out
    }

    #[test]
    fn incremental_sums_match_a_scratch_rescan_bit_for_bit() {
        // Two searches over the same stream, one folding rows at ingest,
        // one rescanning the history per rebuild: identical correlations,
        // skeletons, and therefore identical intervention rankings.
        let space = space(12);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut incremental = CausalSearch::new();
        let mut scratch = CausalSearch::new().with_scratch_stats(true);
        let mut rng = StdRng::seed_from_u64(33);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..40 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = ctx.policy.sample(ctx.space, &mut rng);
            let y = c.by_name(&space, "p0").unwrap().as_f64()
                - 0.3 * c.by_name(&space, "p3").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            incremental.observe(&ctx, &obs);
            scratch.observe(&ctx, &obs);
            history.push(obs);
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&incremental.sums), bits(&scratch.sums));
        assert_eq!(bits(&incremental.cross), bits(&scratch.cross));
        assert_eq!(bits(&incremental.outcome_corr), bits(&scratch.outcome_corr));
        assert_eq!(incremental.adjacency, scratch.adjacency);
        // Same model ⇒ same proposals from the same RNG state.
        let ctx = SearchContext {
            space: &space,
            encoder: &encoder,
            direction: Direction::Maximize,
            policy: &policy,
            history: &history,
            iteration: 40,
        };
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        assert_eq!(
            incremental.propose_batch(4, &ctx, &mut rng_a),
            scratch.propose_batch(4, &ctx, &mut rng_b)
        );
    }

    #[test]
    fn memory_grows_across_iterations() {
        let stats = drive(20, 40);
        assert!(stats[39].memory_bytes > stats[10].memory_bytes);
        // Growth continues (cache never shrinks).
        assert!(stats[39].memory_bytes > stats[25].memory_bytes);
    }

    #[test]
    fn finds_the_influential_parameter() {
        let space = space(10);
        let encoder = Encoder::new(&space);
        let policy = SamplePolicy::Uniform;
        let mut alg = CausalSearch::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut history: Vec<Observation> = Vec::new();
        for i in 0..60 {
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let c = alg.propose(&ctx, &mut rng);
            let y = c.by_name(&space, "p0").unwrap().as_f64();
            let obs = Observation::ok(c, y, 1.0);
            let ctx = SearchContext {
                space: &space,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            alg.observe(&ctx, &obs);
            history.push(obs);
        }
        // The last third of proposals should push p0 high.
        let late: Vec<f64> = history[40..]
            .iter()
            .map(|o| o.config.by_name(&space, "p0").unwrap().as_f64())
            .collect();
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(mean > 65.0, "late p0 mean {mean} (random would be ~50)");
    }
}
