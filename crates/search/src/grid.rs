//! Grid search: systematic coordinate sweeps (§3.1).
//!
//! "All possible configurations are explored systematically, one parameter
//! value after the other": the sweep holds every parameter at its default
//! and walks one parameter at a time through a quantized set of its values
//! (log-spaced for log-scaled integers). The paper omits grid search from
//! the evaluation because it is well-known to be inferior to random search
//! on large spaces (§4) — it is provided for completeness and for tiny
//! spaces where exhaustiveness is affordable.

use crate::api::{fill_distinct, Observation, SearchAlgorithm, SearchContext};
use rand::rngs::StdRng;
use wf_configspace::{ConfigSpace, Configuration, ParamKind, Tristate, Value};

/// Coordinate-sweep grid search.
#[derive(Debug)]
pub struct GridSearch {
    /// Number of quantized values per integer parameter.
    steps_per_int: usize,
    /// Current (parameter, step) cursor.
    param: usize,
    step: usize,
}

impl GridSearch {
    /// Creates a grid search with `steps_per_int` values per integer axis.
    ///
    /// # Panics
    ///
    /// Panics if `steps_per_int < 2`.
    pub fn new(steps_per_int: usize) -> Self {
        assert!(steps_per_int >= 2, "need at least two steps per axis");
        GridSearch {
            steps_per_int,
            param: 0,
            step: 0,
        }
    }

    /// The values this sweep visits for parameter `idx`.
    fn axis(&self, space: &ConfigSpace, idx: usize) -> Vec<Value> {
        let spec = space.spec(idx);
        if spec.fixed {
            return vec![spec.default];
        }
        match &spec.kind {
            ParamKind::Bool => vec![Value::Bool(false), Value::Bool(true)],
            ParamKind::Tristate => Tristate::ALL.iter().map(|t| Value::Tristate(*t)).collect(),
            ParamKind::Enum { choices } => (0..choices.len()).map(Value::Choice).collect(),
            ParamKind::Int {
                min,
                max,
                log_scale,
            } => quantize(*min, *max, *log_scale, self.steps_per_int),
            ParamKind::Hex { min, max } => quantize(*min, *max, false, self.steps_per_int),
        }
    }

    /// Whether the sweep has visited every axis value once.
    pub fn exhausted(&self, space: &ConfigSpace) -> bool {
        self.param >= space.len()
    }
}

/// `steps` values spanning `[min, max]`, inclusive of both ends.
fn quantize(min: i64, max: i64, log_scale: bool, steps: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(steps);
    for k in 0..steps {
        let t = k as f64 / (steps - 1) as f64;
        let v = if log_scale && min >= 0 {
            let span = ((max - min) as f64 + 1.0).ln();
            min + ((t * span).exp() - 1.0).round() as i64
        } else {
            min + ((max - min) as f64 * t).round() as i64
        };
        let v = v.clamp(min, max);
        if out.last() != Some(&Value::Int(v)) {
            out.push(Value::Int(v));
        }
    }
    out
}

impl SearchAlgorithm for GridSearch {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn propose(&mut self, ctx: &SearchContext<'_>, rng: &mut StdRng) -> Configuration {
        // Advance past exhausted axes.
        while self.param < ctx.space.len() {
            let axis = self.axis(ctx.space, self.param);
            if self.step < axis.len() {
                let mut c = ctx.space.default_config();
                c.set(self.param, axis[self.step]);
                self.step += 1;
                return c;
            }
            self.param += 1;
            self.step = 0;
        }
        // Grid exhausted: fall back to random sampling.
        ctx.policy.sample(ctx.space, rng)
    }

    fn propose_batch(
        &mut self,
        n: usize,
        ctx: &SearchContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<Configuration> {
        // A wave of grid search is the next `n` *distinct* sweep points.
        // Consecutive sweep points can collide: every axis contains the
        // parameter's default value, and that point is the default
        // configuration on every axis — a sequential sweep re-evaluates
        // it once per axis, but a wave must not waste two workers on it.
        // Post-exhaustion random fill is deduped the same way.
        let mut out: Vec<Configuration> = Vec::with_capacity(n);
        let mut fps = std::collections::HashSet::new();
        while out.len() < n && !self.exhausted(ctx.space) {
            let c = self.propose(ctx, rng);
            if fps.insert(c.fingerprint()) {
                out.push(c);
            }
        }
        fill_distinct(&mut out, n, ctx, rng, &mut fps);
        out
    }

    fn observe(&mut self, _ctx: &SearchContext<'_>, _obs: &Observation) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SamplePolicy;
    use rand::SeedableRng;
    use wf_configspace::{Encoder, ParamSpec, Stage};
    use wf_jobfile::Direction;

    fn space() -> ConfigSpace {
        let mut s = ConfigSpace::new();
        s.add(ParamSpec::new("flag", ParamKind::Bool, Stage::Runtime));
        s.add(
            ParamSpec::new("size", ParamKind::log_int(1, 4096), Stage::Runtime)
                .with_default(Value::Int(64)),
        );
        s.add(ParamSpec::new(
            "mode",
            ParamKind::choices(vec!["a", "b", "c"]),
            Stage::Runtime,
        ));
        s
    }

    #[test]
    fn sweeps_one_parameter_at_a_time() {
        let s = space();
        let encoder = Encoder::new(&s);
        let policy = SamplePolicy::Uniform;
        let mut alg = GridSearch::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let history = Vec::new();
        let d = s.default_config();
        let mut configs = Vec::new();
        for i in 0..(2 + 4 + 3) {
            let ctx = SearchContext {
                space: &s,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            configs.push(alg.propose(&ctx, &mut rng));
        }
        // Every proposal differs from the default in at most one parameter.
        for c in &configs {
            assert!(c.diff_indices(&d).len() <= 1);
        }
        // The flag axis comes first: false then true.
        assert_eq!(configs[0].by_name(&s, "flag"), Some(Value::Bool(false)));
        assert_eq!(configs[1].by_name(&s, "flag"), Some(Value::Bool(true)));
        // The integer axis covers both ends.
        let sizes: Vec<i64> = configs[2..6]
            .iter()
            .filter_map(|c| c.by_name(&s, "size").and_then(|v| v.as_int()))
            .collect();
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&4096));
        // The enum axis enumerates all choices.
        let modes: Vec<usize> = configs[6..9]
            .iter()
            .filter_map(|c| c.by_name(&s, "mode").and_then(|v| v.as_choice()))
            .collect();
        assert_eq!(modes, vec![0, 1, 2]);
    }

    #[test]
    fn falls_back_to_random_when_exhausted() {
        let s = space();
        let encoder = Encoder::new(&s);
        let policy = SamplePolicy::Uniform;
        let mut alg = GridSearch::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        let history = Vec::new();
        for i in 0..30 {
            let ctx = SearchContext {
                space: &s,
                encoder: &encoder,
                direction: Direction::Maximize,
                policy: &policy,
                history: &history,
                iteration: i,
            };
            let _ = alg.propose(&ctx, &mut rng);
        }
        assert!(alg.exhausted(&s));
    }

    #[test]
    fn log_quantization_is_log_spaced() {
        let vals = quantize(1, 1_000_000, true, 4);
        let ints: Vec<i64> = vals.iter().filter_map(|v| v.as_int()).collect();
        assert_eq!(ints.first(), Some(&1));
        assert_eq!(ints.last(), Some(&1_000_000));
        // Middle points are geometric, not arithmetic.
        assert!(ints[1] < 2_000);
    }
}
