//! Deterministic, seeded workload-signal streams.
//!
//! A signal models the telemetry a production system emits about its
//! workload (request rate, hit ratio, measured throughput of the
//! deployed configuration). Samples are indexed — the `index`-th sample
//! of a stream draws from an RNG derived from `(seed, index)`, never
//! from a shared stream — so a sample's value does not depend on when,
//! where, or in what batch it was taken. That is the property that
//! makes drift detection invariant to worker count and backend.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer over a `(seed, index)` pair: an independent
/// stream seed per sample. Same construction as the platform's
/// `derive_seed`, duplicated here so the signal layer stays
/// dependency-free.
pub fn mix64(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream of workload observations on virtual time.
///
/// `sample(index, t_s)` returns the `index`-th observation of the
/// stream, taken at virtual time `t_s`. Implementations must be pure in
/// `(construction state, index, t_s)`: calling `sample` twice with the
/// same arguments returns the bit-identical value, and samples at
/// different indices must not share RNG state.
pub trait WorkloadSignal {
    /// The `index`-th observation of the stream at virtual time `t_s`.
    fn sample(&mut self, index: u64, t_s: f64) -> f64;
}

/// A piecewise-constant level with multiplicative noise — the synthetic
/// stand-in for tests and `wfctl bench`.
///
/// The level at time `t` is the last segment whose start is `<= t`;
/// each sample multiplies it by `1 + noise * u` where `u` is a centered
/// uniform draw from the per-index stream.
#[derive(Clone, Debug)]
pub struct SyntheticSignal {
    /// `(starts_at_s, level)` segments, sorted by start; first at 0.
    segments: Vec<(f64, f64)>,
    /// Relative noise amplitude.
    noise: f64,
    /// Stream seed.
    seed: u64,
}

impl SyntheticSignal {
    /// Builds a signal from `(starts_at_s, level)` segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, unsorted, or does not start at 0.
    pub fn new(segments: Vec<(f64, f64)>, noise: f64, seed: u64) -> Self {
        assert!(!segments.is_empty(), "signal needs at least one segment");
        assert_eq!(segments[0].0, 0.0, "first segment must start at t=0");
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segments must be strictly sorted by start time"
        );
        Self {
            segments,
            noise,
            seed,
        }
    }

    /// A single step: `before` until `at_s`, `after` from then on.
    pub fn step(before: f64, after: f64, at_s: f64, noise: f64, seed: u64) -> Self {
        Self::new(vec![(0.0, before), (at_s, after)], noise, seed)
    }

    /// The noise-free level at `t_s`.
    pub fn level_at(&self, t_s: f64) -> f64 {
        self.segments
            .iter()
            .rev()
            .find(|(start, _)| *start <= t_s)
            .map(|(_, level)| *level)
            .unwrap_or(self.segments[0].1)
    }
}

impl WorkloadSignal for SyntheticSignal {
    fn sample(&mut self, index: u64, t_s: f64) -> f64 {
        let level = self.level_at(t_s);
        if self.noise <= 0.0 {
            return level;
        }
        let mut rng = StdRng::seed_from_u64(mix64(self.seed, index));
        level * (1.0 + self.noise * (rng.random::<f64>() - 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_pure_in_seed_and_index() {
        let mut a = SyntheticSignal::step(10.0, 6.0, 100.0, 0.05, 42);
        let mut b = SyntheticSignal::step(10.0, 6.0, 100.0, 0.05, 42);
        for i in 0..32 {
            let t = i as f64 * 10.0;
            assert_eq!(a.sample(i, t).to_bits(), b.sample(i, t).to_bits());
        }
    }

    #[test]
    fn level_follows_segments() {
        let s = SyntheticSignal::new(vec![(0.0, 1.0), (50.0, 2.0), (90.0, 0.5)], 0.0, 1);
        assert_eq!(s.level_at(0.0), 1.0);
        assert_eq!(s.level_at(49.9), 1.0);
        assert_eq!(s.level_at(50.0), 2.0);
        assert_eq!(s.level_at(1e9), 0.5);
    }

    #[test]
    fn different_indices_draw_independent_noise() {
        let mut s = SyntheticSignal::step(10.0, 10.0, 1e9, 0.5, 7);
        let a = s.sample(0, 0.0);
        let b = s.sample(1, 0.0);
        assert_ne!(a.to_bits(), b.to_bits());
    }
}
