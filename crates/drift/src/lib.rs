//! `wf-drift`: workload-signal streams and drift detection for
//! *continuous specialization* (ROADMAP item 3; Iridescent in PAPERS.md
//! specializes systems online as the workload shifts).
//!
//! A Wayfinder session normally runs to a budget and stops. In
//! continuous mode the platform keeps a telemetry stream on the
//! *deployed* configuration — a [`WorkloadSignal`] — and folds it
//! through a [`DriftDetector`]. When the detector confirms a shift, the
//! session closes its specialization *epoch* and re-specializes, seeded
//! from the prior optimum (see `wf_platform`'s epoch engine).
//!
//! Everything here operates on **virtual time** and per-sample seeded
//! RNG streams, so detection is bit-reproducible: the same session seed
//! produces the same samples, the same detector folds, and the same
//! drift decisions — on any worker count, backend, or host.
//!
//! * [`signal`] — the [`WorkloadSignal`] stream abstraction plus a
//!   deterministic [`SyntheticSignal`] for tests and benchmarks;
//! * [`detector`] — the [`DriftDetector`] trait and two detectors:
//!   a windowed [`MeanShift`] test and a [`PageHinkley`]-style
//!   cumulative (CUSUM) test.

pub mod detector;
pub mod signal;

pub use detector::{
    run_until_drift, DetectorSnapshot, DriftDetector, MeanShift, PageHinkley, SignalSample, Verdict,
};
pub use signal::{mix64, SyntheticSignal, WorkloadSignal};
