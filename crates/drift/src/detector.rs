//! Drift detectors over workload-signal streams.
//!
//! A detector folds [`SignalSample`]s one at a time and answers "has the
//! workload shifted since this epoch began?". Detectors are plain f64
//! state machines — no RNG, no clocks — so their decisions are a pure
//! function of the sample sequence, which the platform's proptests
//! exploit to show detection is invariant to worker count and backend.
//!
//! Two detectors ship:
//!
//! * [`MeanShift`] — freezes a baseline window at epoch start and
//!   compares it against a sliding recent window; fires when the means
//!   diverge by more than a relative threshold. Robust, easy to reason
//!   about, detection latency ≈ two windows.
//! * [`PageHinkley`] — a Page–Hinkley-style two-sided cumulative
//!   (CUSUM) test on relative deviations from the baseline mean; fires
//!   as soon as the accumulated drift mass crosses `lambda`, so large
//!   shifts are confirmed within a couple of samples.

use crate::signal::WorkloadSignal;

/// One observation handed to a detector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SignalSample {
    /// Stream index of the sample (the session's iteration counter).
    pub index: u64,
    /// Virtual time the sample was taken at.
    pub t_s: f64,
    /// Observed value.
    pub value: f64,
}

/// A detector's verdict after folding one sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No confirmed shift.
    Stable,
    /// The workload has shifted since the epoch began.
    Drift,
}

/// Diagnostic view of a detector's internal means (event payloads).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectorSnapshot {
    /// Mean of the epoch's baseline window (0 until established).
    pub baseline: f64,
    /// Current estimate of the recent signal level.
    pub current: f64,
}

/// Folds workload samples and decides when the epoch's workload has
/// drifted. Implementations must be deterministic: the verdict sequence
/// is a pure function of the sample sequence since the last `reset`.
pub trait DriftDetector: Send {
    /// Stable identifier, stored in `DriftDetected` events.
    fn name(&self) -> &'static str;
    /// Folds one sample; returns the verdict *after* this sample.
    fn observe(&mut self, sample: &SignalSample) -> Verdict;
    /// Forgets everything — called when a new epoch starts.
    fn reset(&mut self);
    /// Diagnostic means for event payloads.
    fn snapshot(&self) -> DetectorSnapshot;
}

/// Windowed mean-shift detector.
///
/// The first `window` samples of the epoch freeze the baseline mean;
/// afterwards a sliding window of the most recent `window` samples is
/// compared against it. Drift is confirmed when the relative shift
/// `|recent - baseline| / |baseline|` exceeds `threshold`.
#[derive(Clone, Debug)]
pub struct MeanShift {
    window: usize,
    threshold: f64,
    baseline: Vec<f64>,
    recent: std::collections::VecDeque<f64>,
}

impl MeanShift {
    /// A detector with the given window length and relative threshold.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `threshold <= 0`.
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(threshold > 0.0, "threshold must be positive");
        Self {
            window,
            threshold,
            baseline: Vec::with_capacity(window),
            recent: std::collections::VecDeque::with_capacity(window),
        }
    }

    fn baseline_mean(&self) -> f64 {
        mean(self.baseline.iter().copied())
    }
}

impl DriftDetector for MeanShift {
    fn name(&self) -> &'static str {
        "mean-shift"
    }

    fn observe(&mut self, sample: &SignalSample) -> Verdict {
        if self.baseline.len() < self.window {
            self.baseline.push(sample.value);
            return Verdict::Stable;
        }
        self.recent.push_back(sample.value);
        if self.recent.len() > self.window {
            self.recent.pop_front();
        }
        if self.recent.len() < self.window {
            return Verdict::Stable;
        }
        let base = self.baseline_mean();
        let cur = mean(self.recent.iter().copied());
        let scale = base.abs().max(f64::MIN_POSITIVE);
        if (cur - base).abs() > self.threshold * scale {
            Verdict::Drift
        } else {
            Verdict::Stable
        }
    }

    fn reset(&mut self) {
        self.baseline.clear();
        self.recent.clear();
    }

    fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot {
            baseline: if self.baseline.len() < self.window {
                0.0
            } else {
                self.baseline_mean()
            },
            current: if self.recent.is_empty() {
                0.0
            } else {
                mean(self.recent.iter().copied())
            },
        }
    }
}

/// Page–Hinkley-style two-sided cumulative test.
///
/// The first `warmup` samples freeze the baseline mean `b`. Each later
/// sample contributes its relative deviation `y = (x - b) / |b|` to two
/// one-sided CUSUM accumulators (`max(0, m + y - delta)` upward,
/// `max(0, m - y - delta)` downward); drift is confirmed when either
/// exceeds `lambda`. `delta` absorbs measurement noise, `lambda` sets
/// how much cumulative drift mass is required.
#[derive(Clone, Debug)]
pub struct PageHinkley {
    warmup: usize,
    delta: f64,
    lambda: f64,
    baseline: Vec<f64>,
    m_up: f64,
    m_dn: f64,
    last: f64,
}

impl PageHinkley {
    /// A detector with `warmup` baseline samples, insensitivity `delta`
    /// and threshold `lambda` (both relative to the baseline mean).
    ///
    /// # Panics
    ///
    /// Panics if `warmup == 0` or `lambda <= 0`.
    pub fn new(warmup: usize, delta: f64, lambda: f64) -> Self {
        assert!(warmup > 0, "warmup must be positive");
        assert!(lambda > 0.0, "lambda must be positive");
        Self {
            warmup,
            delta,
            lambda,
            baseline: Vec::with_capacity(warmup),
            m_up: 0.0,
            m_dn: 0.0,
            last: 0.0,
        }
    }

    fn baseline_mean(&self) -> f64 {
        mean(self.baseline.iter().copied())
    }
}

impl DriftDetector for PageHinkley {
    fn name(&self) -> &'static str {
        "page-hinkley"
    }

    fn observe(&mut self, sample: &SignalSample) -> Verdict {
        self.last = sample.value;
        if self.baseline.len() < self.warmup {
            self.baseline.push(sample.value);
            return Verdict::Stable;
        }
        let b = self.baseline_mean();
        let y = (sample.value - b) / b.abs().max(f64::MIN_POSITIVE);
        self.m_up = (self.m_up + y - self.delta).max(0.0);
        self.m_dn = (self.m_dn - y - self.delta).max(0.0);
        if self.m_up > self.lambda || self.m_dn > self.lambda {
            Verdict::Drift
        } else {
            Verdict::Stable
        }
    }

    fn reset(&mut self) {
        self.baseline.clear();
        self.m_up = 0.0;
        self.m_dn = 0.0;
        self.last = 0.0;
    }

    fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot {
            baseline: if self.baseline.len() < self.warmup {
                0.0
            } else {
                self.baseline_mean()
            },
            current: self.last,
        }
    }
}

/// Streams `samples` (as `(index, t_s)` pairs) from `signal` into
/// `detector`; returns the position of the first confirming sample.
/// Used by tests and the `drift/detector_step` bench op.
pub fn run_until_drift(
    signal: &mut dyn WorkloadSignal,
    detector: &mut dyn DriftDetector,
    samples: &[(u64, f64)],
) -> Option<usize> {
    for (pos, &(index, t_s)) in samples.iter().enumerate() {
        let value = signal.sample(index, t_s);
        let sample = SignalSample { index, t_s, value };
        if detector.observe(&sample) == Verdict::Drift {
            return Some(pos);
        }
    }
    None
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SyntheticSignal;
    use proptest::prelude::*;

    fn points(n: usize, dt: f64) -> Vec<(u64, f64)> {
        (0..n).map(|i| (i as u64, i as f64 * dt)).collect()
    }

    #[test]
    fn mean_shift_fires_on_a_step_and_not_on_stable() {
        let pts = points(64, 10.0);
        let mut stable = SyntheticSignal::step(10.0, 10.0, 1e9, 0.04, 11);
        let mut det = MeanShift::new(6, 0.12);
        assert_eq!(run_until_drift(&mut stable, &mut det, &pts), None);

        det.reset();
        let mut shifted = SyntheticSignal::step(10.0, 6.5, 200.0, 0.04, 11);
        let hit = run_until_drift(&mut shifted, &mut det, &pts).expect("step must be detected");
        // The shift lands at t=200 (sample 20); detection needs most of a
        // recent window past it.
        assert!(hit >= 20, "fired before the shift: {hit}");
        assert!(hit <= 20 + 12, "fired too late: {hit}");
    }

    #[test]
    fn page_hinkley_fires_fast_on_large_steps_both_directions() {
        let pts = points(64, 10.0);
        for (before, after) in [(10.0, 6.0), (10.0, 16.0)] {
            let mut sig = SyntheticSignal::step(before, after, 200.0, 0.04, 5);
            let mut det = PageHinkley::new(6, 0.05, 0.8);
            let hit = run_until_drift(&mut sig, &mut det, &pts).expect("step must be detected");
            assert!((20..=26).contains(&hit), "hit={hit}");
        }
    }

    #[test]
    fn page_hinkley_ignores_noise() {
        let pts = points(128, 10.0);
        let mut sig = SyntheticSignal::step(10.0, 10.0, 1e9, 0.08, 9);
        let mut det = PageHinkley::new(6, 0.05, 0.8);
        assert_eq!(run_until_drift(&mut sig, &mut det, &pts), None);
    }

    #[test]
    fn reset_forgets_the_baseline() {
        let pts = points(64, 10.0);
        let mut sig = SyntheticSignal::step(10.0, 6.5, 200.0, 0.0, 3);
        let mut det = MeanShift::new(4, 0.1);
        run_until_drift(&mut sig, &mut det, &pts).expect("detects");
        det.reset();
        // Post-reset, the shifted level becomes the new baseline: stable.
        let tail: Vec<_> = (40..104).map(|i| (i as u64, i as f64 * 10.0)).collect();
        assert_eq!(run_until_drift(&mut sig, &mut det, &tail), None);
    }

    #[test]
    fn snapshot_reports_means() {
        let mut det = MeanShift::new(2, 0.1);
        for (i, v) in [10.0, 10.0, 4.0, 4.0].iter().enumerate() {
            det.observe(&SignalSample {
                index: i as u64,
                t_s: i as f64,
                value: *v,
            });
        }
        let snap = det.snapshot();
        assert_eq!(snap.baseline, 10.0);
        assert_eq!(snap.current, 4.0);
    }

    proptest! {
        /// Detector folds are a pure function of the sample sequence:
        /// feeding identical sequences (regardless of how the caller
        /// batches them) yields identical verdict sequences. This is the
        /// unit-level half of the platform's worker-count invariance
        /// proptest.
        #[test]
        fn verdicts_are_pure_in_the_sample_sequence(
            seed in 0u64..1000,
            window in 2usize..8,
            shift_at in 10usize..40,
        ) {
            let pts = points(64, 10.0);
            let run = |det: &mut dyn DriftDetector| -> Vec<bool> {
                let mut sig =
                    SyntheticSignal::step(10.0, 7.0, shift_at as f64 * 10.0, 0.05, seed);
                pts.iter()
                    .map(|&(i, t)| {
                        let v = sig.sample(i, t);
                        det.observe(&SignalSample { index: i, t_s: t, value: v })
                            == Verdict::Drift
                    })
                    .collect()
            };
            let mut a = MeanShift::new(window, 0.12);
            let mut b = MeanShift::new(window, 0.12);
            prop_assert_eq!(run(&mut a), run(&mut b));
            let mut c = PageHinkley::new(window, 0.05, 0.8);
            let mut d = PageHinkley::new(window, 0.05, 0.8);
            prop_assert_eq!(run(&mut c), run(&mut d));
        }
    }
}
