//! Random sampling helpers built on top of [`rand`].
//!
//! The sanctioned offline crate set includes `rand` but not `rand_distr`, so
//! Gaussian sampling is implemented here via the Box–Muller transform.

use rand::Rng;

/// Draws one sample from `N(mean, std^2)` using the Box–Muller transform.
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    // Avoid `ln(0)` by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + std * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one sample from a log-normal distribution with the given log-space
/// mean and standard deviation.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Fills `out` with i.i.d. samples from `N(0, std^2)`.
pub fn fill_normal(rng: &mut impl Rng, out: &mut [f64], std: f64) {
    for v in out.iter_mut() {
        *v = normal(rng, 0.0, std);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(lognormal(&mut rng, 0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn fill_normal_fills_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0.0; 64];
        fill_normal(&mut rng, &mut buf, 1.0);
        assert!(buf.iter().any(|v| *v != 0.0));
        assert!(buf.iter().all(|v| v.is_finite()));
    }
}
