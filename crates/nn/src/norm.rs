//! Feature and target normalization.
//!
//! DeepTune z-scores its input features (the paper notes that the RBF
//! smoothing parameter gamma = 0.1 "is appropriate if input features are
//! z-score normalized") and its regression targets.

use crate::matrix::Matrix;

/// Per-column z-score normalizer for feature matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct ZScore {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl ZScore {
    /// Fits a normalizer on the columns of `data`.
    ///
    /// Columns with (near-)zero variance get std 1 so they map to 0.
    ///
    /// # Panics
    ///
    /// Panics if `data` has no rows.
    pub fn fit(data: &Matrix) -> Self {
        assert!(data.rows() > 0, "cannot fit a normalizer on zero rows");
        let n = data.rows() as f64;
        let mut mean = vec![0.0; data.cols()];
        for r in 0..data.rows() {
            for (m, v) in mean.iter_mut().zip(data.row(r).iter()) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut std = vec![0.0; data.cols()];
        for r in 0..data.rows() {
            for (c, v) in data.row(r).iter().enumerate() {
                let d = v - mean[c];
                std[c] += d * d;
            }
        }
        for s in std.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-9 {
                *s = 1.0;
            }
        }
        Self { mean, std }
    }

    /// Creates an identity normalizer of the given width.
    pub fn identity(cols: usize) -> Self {
        Self {
            mean: vec![0.0; cols],
            std: vec![1.0; cols],
        }
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.mean.len()
    }

    /// The fitted column means.
    pub fn means(&self) -> &[f64] {
        &self.mean
    }

    /// The fitted column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.std
    }

    /// Reconstructs a normalizer from its raw statistics (checkpoint load).
    pub fn from_stats(mean: Vec<f64>, std: Vec<f64>) -> Self {
        assert_eq!(mean.len(), std.len());
        assert!(std.iter().all(|s| *s > 0.0), "std must be positive");
        Self { mean, std }
    }

    /// Normalizes a feature matrix.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mean.len());
        Matrix::from_fn(data.rows(), data.cols(), |r, c| {
            (data.get(r, c) - self.mean[c]) / self.std[c]
        })
    }

    /// Inverse of [`ZScore::transform`].
    pub fn inverse(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mean.len());
        Matrix::from_fn(data.rows(), data.cols(), |r, c| {
            data.get(r, c) * self.std[c] + self.mean[c]
        })
    }
}

/// Scalar z-score normalizer for regression targets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalarNorm {
    mean: f64,
    std: f64,
}

impl ScalarNorm {
    /// Fits on a slice of target values.
    pub fn fit(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                mean: 0.0,
                std: 1.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        Self { mean, std }
    }

    /// The identity transform.
    pub fn identity() -> Self {
        Self {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Reconstructs from raw statistics.
    pub fn from_stats(mean: f64, std: f64) -> Self {
        assert!(std > 0.0);
        Self { mean, std }
    }

    /// Fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fitted standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Normalizes one value.
    pub fn transform(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Inverse of [`ScalarNorm::transform`].
    pub fn inverse(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }

    /// Converts a standard deviation from normalized to original units.
    pub fn inverse_scale(&self, sigma: f64) -> f64 {
        sigma * self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_roundtrip() {
        let data = Matrix::from_vec(3, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        let n = ZScore::fit(&data);
        let t = n.transform(&data);
        // Each column has mean 0.
        let sums = t.sum_rows();
        assert!(sums.max_abs() < 1e-9);
        let back = n.inverse(&t);
        for i in 0..data.len() {
            assert!((back.data()[i] - data.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zscore_constant_column_maps_to_zero() {
        let data = Matrix::from_vec(3, 1, vec![5.0, 5.0, 5.0]);
        let n = ZScore::fit(&data);
        let t = n.transform(&data);
        assert!(t.max_abs() < 1e-12);
    }

    #[test]
    fn scalar_norm_roundtrip() {
        let n = ScalarNorm::fit(&[10.0, 20.0, 30.0]);
        assert!((n.mean() - 20.0).abs() < 1e-12);
        let v = n.transform(25.0);
        assert!((n.inverse(v) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_norm_empty_is_identity() {
        let n = ScalarNorm::fit(&[]);
        assert_eq!(n.transform(3.0), 3.0);
    }
}
