//! A sequential container of layers plus a small MLP builder.

use crate::layer::{Dense, Dropout, Layer, Relu, Tensor};
use crate::matrix::Matrix;
use rand::Rng;

/// A stack of layers executed in order.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if there are no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs a forward pass through all layers.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut cur = x.clone();
        for l in self.layers.iter_mut() {
            cur = l.forward(&cur, train);
        }
        cur
    }

    /// Runs a forward pass and returns the output of *every* layer; used by
    /// the DeepTune model, whose uncertainty branch consumes intermediate
    /// latents.
    pub fn forward_collect(&mut self, x: &Matrix, train: bool) -> Vec<Matrix> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for l in self.layers.iter_mut() {
            cur = l.forward(&cur, train);
            outputs.push(cur.clone());
        }
        outputs
    }

    /// Backpropagates through all layers and returns the input gradient.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        let mut cur = grad.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    /// Backpropagates starting from layer `from` (inclusive) downward; used
    /// to inject gradients that attach to an intermediate latent.
    pub fn backward_from(&mut self, from: usize, grad: &Matrix) -> Matrix {
        let mut cur = grad.clone();
        for l in self.layers[..=from].iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    /// All trainable tensors, in a stable layer order.
    pub fn tensors(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(|l| l.tensors()).collect()
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        for l in self.layers.iter_mut() {
            l.zero_grad();
        }
    }

    /// Access to a layer by index (for weight export).
    pub fn layer(&self, idx: usize) -> &dyn Layer {
        self.layers[idx].as_ref()
    }

    /// Mutable access to a layer by index (for weight import).
    pub fn layer_mut(&mut self, idx: usize) -> &mut dyn Layer {
        self.layers[idx].as_mut()
    }
}

/// Builds a Dense → ReLU → Dropout stack for each hidden dimension, followed
/// by a final Dense projection to `out_dim`.
pub fn mlp(
    in_dim: usize,
    hidden: &[usize],
    out_dim: usize,
    dropout: f64,
    rng: &mut impl Rng,
) -> Sequential {
    let mut net = Sequential::new();
    let mut prev = in_dim;
    for (i, &h) in hidden.iter().enumerate() {
        net.push(Box::new(Dense::new(prev, h, rng)));
        net.push(Box::new(Relu::new()));
        if dropout > 0.0 {
            net.push(Box::new(Dropout::new(dropout, 0x5eed + i as u64)));
        }
        prev = h;
    }
    net.push(Box::new(Dense::new(prev, out_dim, rng)));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(4, &[8, 8], 2, 0.0, &mut rng);
        let out = net.forward(&Matrix::zeros(3, 4), false);
        assert_eq!((out.rows(), out.cols()), (3, 2));
    }

    #[test]
    fn forward_collect_returns_every_layer_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(4, &[8], 2, 0.1, &mut rng);
        // Dense, ReLU, Dropout, Dense = 4 layers.
        let outs = net.forward_collect(&Matrix::zeros(2, 4), false);
        assert_eq!(outs.len(), 4);
        assert_eq!(outs.last().unwrap().cols(), 2);
    }

    #[test]
    fn mlp_learns_linear_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = mlp(2, &[16], 1, 0.0, &mut rng);
        let mut opt = Adam::new(0.01);

        // y = 2 x0 - x1 + 0.5.
        let xs = Matrix::from_fn(64, 2, |r, c| ((r * 2 + c) % 7) as f64 / 7.0 - 0.5);
        let ys: Vec<f64> = (0..64)
            .map(|r| 2.0 * xs.get(r, 0) - xs.get(r, 1) + 0.5)
            .collect();

        let mut last = f64::INFINITY;
        for _ in 0..400 {
            let pred = net.forward(&xs, true);
            let (loss, grad) = mse(&pred, &ys);
            net.zero_grad();
            net.backward(&grad);
            let mut tensors = net.tensors();
            opt.step(&mut tensors);
            last = loss;
        }
        assert!(last < 1e-3, "final loss {last}");
    }

    #[test]
    fn backward_from_only_touches_prefix() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = mlp(3, &[4], 1, 0.0, &mut rng);
        let x = Matrix::zeros(2, 3);
        // `train = true` so the layers cache for the backward pass below
        // (the builder's dropout is 0.0, so the forward is deterministic).
        let outs = net.forward_collect(&x, true);
        // Inject a gradient at the ReLU output (layer index 1).
        let g = Matrix::filled(outs[1].rows(), outs[1].cols(), 1.0);
        net.zero_grad();
        let gin = net.backward_from(1, &g);
        assert_eq!((gin.rows(), gin.cols()), (2, 3));
    }
}
