//! `wf-nn`: a minimal, from-scratch neural-network library.
//!
//! This crate is the substrate for the DeepTune Model (DTM) of the Wayfinder
//! paper (§3.2). It provides exactly what the DTM needs and nothing more:
//!
//! * a dense row-major [`matrix::Matrix`] whose blocked `matmul` kernel
//!   (bit-identical to the naive triple loop it replaced) carries every
//!   `Dense` forward pass;
//! * [`layer`]s: fully connected ([`layer::Dense`]), ReLU, inverted dropout,
//!   and the Gaussian radial-basis-function layer of Eq. 1;
//! * [`loss`]es: categorical cross-entropy (`L_CCE`), the Kendall-&-Gal
//!   heteroscedastic regression loss (`L_Reg`), and the Chamfer centroid
//!   regularizer (`L_Cham`);
//! * [`optim`]izers: SGD with momentum and Adam;
//! * [`norm`]: z-score feature/target normalization;
//! * [`rng`]: Box–Muller Gaussian sampling on top of `rand`.
//!
//! All backward passes are verified against finite differences in the unit
//! tests, which is what makes the hand-wired multi-branch DTM in
//! `wf-deeptune` trustworthy.

pub mod layer;
pub mod loss;
pub mod matrix;
pub mod net;
pub mod norm;
pub mod optim;
pub mod rng;

pub use layer::{Dense, Dropout, Layer, Rbf, Relu, Tensor};
pub use matrix::Matrix;
pub use net::{mlp, Sequential};
pub use norm::{ScalarNorm, ZScore};
pub use optim::{Adam, Optimizer, Sgd};

/// Numerically stable sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Softplus `ln(1 + e^x)`, numerically stable for large |x|.
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Derivative of softplus, i.e. the sigmoid.
pub fn softplus_grad(x: f64) -> f64 {
    sigmoid(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
    }

    #[test]
    fn softplus_matches_definition_midrange() {
        for x in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            let expected = (1.0_f64 + f64::exp(x)).ln();
            assert!((softplus(x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn softplus_stable_at_extremes() {
        assert!(softplus(1000.0).is_finite());
        assert!(softplus(-1000.0) >= 0.0);
    }

    #[test]
    fn softplus_grad_is_sigmoid() {
        let eps = 1e-6;
        for x in [-2.0, 0.0, 2.0] {
            let num = (softplus(x + eps) - softplus(x - eps)) / (2.0 * eps);
            assert!((num - softplus_grad(x)).abs() < 1e-6);
        }
    }
}
