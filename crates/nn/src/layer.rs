//! Trainable layers: dense, ReLU, dropout, and Gaussian RBF.
//!
//! Layers cache whatever they need during a *training* `forward`
//! (`train == true`) and consume that cache in `backward`; calling
//! `backward` without a preceding training forward panics. Inference
//! forwards (`train == false`) allocate no caches at all — the DTM's
//! scoring path calls `predict` over large candidate pools every
//! iteration, and those forwards are pure. The RBF layer implements Eq. 1
//! of the Wayfinder paper: `phi(z) = exp(-||z - c||^2 / (2 gamma^2))`.

use crate::matrix::Matrix;
use crate::rng::fill_normal;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A trainable parameter: its value and the gradient accumulated by the most
/// recent backward pass.
#[derive(Clone, Debug)]
pub struct Tensor {
    /// Current parameter values.
    pub value: Matrix,
    /// Gradient of the loss with respect to [`Tensor::value`].
    pub grad: Matrix,
}

impl Tensor {
    /// Creates a tensor with the given values and a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A differentiable layer.
pub trait Layer {
    /// Computes the layer output for a `batch x in_dim` input.
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix;

    /// Backpropagates `grad` (gradient w.r.t. the forward output) and returns
    /// the gradient w.r.t. the forward input. Parameter gradients are
    /// *accumulated* into the layer's tensors.
    ///
    /// # Panics
    ///
    /// Panics if called before a [`Layer::forward`] with `train == true`
    /// (inference forwards skip the caches backward consumes).
    fn backward(&mut self, grad: &Matrix) -> Matrix;

    /// Mutable access to the layer's trainable tensors (empty by default).
    fn tensors(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Zeroes the gradients of all trainable tensors.
    fn zero_grad(&mut self) {
        for t in self.tensors() {
            t.zero_grad();
        }
    }

    /// Human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Fully connected layer: `y = x W + b`.
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with He-style initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let std = (2.0 / in_dim.max(1) as f64).sqrt();
        let mut w = Matrix::zeros(in_dim, out_dim);
        fill_normal(rng, w.data_mut(), std);
        Self {
            weight: Tensor::new(w),
            bias: Tensor::new(Matrix::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Immutable access to the weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable access to the bias tensor.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Overwrites the parameters (used by transfer learning).
    pub fn load(&mut self, weight: Matrix, bias: Matrix) {
        assert_eq!(
            (weight.rows(), weight.cols()),
            (self.weight.value.rows(), self.weight.value.cols()),
            "weight shape mismatch"
        );
        assert_eq!(
            (bias.rows(), bias.cols()),
            (self.bias.value.rows(), self.bias.value.cols()),
            "bias shape mismatch"
        );
        self.weight.value = weight;
        self.bias.value = bias;
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut out = x.matmul(&self.weight.value);
        out.add_row_broadcast(&self.bias.value);
        self.cached_input = train.then(|| x.clone());
        out
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("Dense::backward called before forward");
        self.weight.grad.add_assign(&x.t_matmul(grad));
        self.bias.grad.add_assign(&grad.sum_rows());
        grad.matmul_t(&self.weight.value)
    }

    fn tensors(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Option<Matrix>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if !train {
            // Inference: one allocation, no mask to keep.
            self.mask = None;
            return x.map(|v| v.max(0.0));
        }
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        let out = x.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward called before forward");
        grad.hadamard(mask)
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// Inverted dropout: active only when `train == true`.
pub struct Dropout {
    rate: f64,
    rng: StdRng,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer dropping activations with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        Self {
            rate,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if !train || self.rate == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
            if self.rng.random::<f64>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = x.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad.hadamard(mask),
            None => grad.clone(),
        }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

/// Gaussian radial-basis-function layer (Eq. 1 of the paper).
///
/// Each of the `k` neurons holds a learned centroid `c_j`; the activation for
/// an input `z` is `exp(-||z - c_j||^2 / (2 gamma^2))`. Centroids are trained
/// both by gradients flowing from downstream layers and by the Chamfer
/// regularizer in [`crate::loss::chamfer`].
pub struct Rbf {
    centroids: Tensor,
    gamma: f64,
    cached_input: Option<Matrix>,
    cached_output: Option<Matrix>,
}

impl Rbf {
    /// Creates an RBF layer with `k` centroids over `in_dim`-dimensional
    /// inputs, initialized from `N(0, 1)` (inputs are expected z-scored).
    pub fn new(in_dim: usize, k: usize, gamma: f64, rng: &mut impl Rng) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        let mut c = Matrix::zeros(k, in_dim);
        fill_normal(rng, c.data_mut(), 1.0);
        Self {
            centroids: Tensor::new(c),
            gamma,
            cached_input: None,
            cached_output: None,
        }
    }

    /// The smoothing parameter `gamma`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of centroids.
    pub fn num_centroids(&self) -> usize {
        self.centroids.value.rows()
    }

    /// Immutable access to the centroid tensor.
    pub fn centroids(&self) -> &Tensor {
        &self.centroids
    }

    /// Mutable access to the centroid tensor (used by the Chamfer loss).
    pub fn centroids_mut(&mut self) -> &mut Tensor {
        &mut self.centroids
    }

    /// Overwrites the centroids (used by transfer learning).
    pub fn load(&mut self, centroids: Matrix) {
        assert_eq!(
            (centroids.rows(), centroids.cols()),
            (self.centroids.value.rows(), self.centroids.value.cols()),
            "centroid shape mismatch"
        );
        self.centroids.value = centroids;
    }
}

impl Layer for Rbf {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let k = self.centroids.value.rows();
        let denom = 2.0 * self.gamma * self.gamma;
        let out = Matrix::from_fn(x.rows(), k, |r, j| {
            let d2 = x.row_sq_dist(r, &self.centroids.value, j);
            (-d2 / denom).exp()
        });
        if train {
            self.cached_input = Some(x.clone());
            self.cached_output = Some(out.clone());
        } else {
            self.cached_input = None;
            self.cached_output = None;
        }
        out
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("Rbf::backward called before forward");
        let phi = self
            .cached_output
            .as_ref()
            .expect("Rbf::backward called before forward");
        let g2 = self.gamma * self.gamma;
        let mut grad_in = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            for j in 0..self.centroids.value.rows() {
                // d phi / d z = phi * (c - z) / gamma^2
                // d phi / d c = phi * (z - c) / gamma^2
                let coeff = grad.get(r, j) * phi.get(r, j) / g2;
                if coeff == 0.0 {
                    continue;
                }
                for d in 0..x.cols() {
                    let diff = self.centroids.value.get(j, d) - x.get(r, d);
                    grad_in.set(r, d, grad_in.get(r, d) + coeff * diff);
                    self.centroids
                        .grad
                        .set(j, d, self.centroids.grad.get(j, d) - coeff * diff);
                }
            }
        }
        grad_in
    }

    fn tensors(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.centroids]
    }

    fn name(&self) -> &'static str {
        "RBF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut r = rng();
        let mut d = Dense::new(3, 2, &mut r);
        d.load(Matrix::zeros(3, 2), Matrix::row_vector(&[1.0, -1.0]));
        let out = d.forward(&Matrix::zeros(4, 3), false);
        assert_eq!((out.rows(), out.cols()), (4, 2));
        assert_eq!(out.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn relu_masks_negative_values() {
        let mut l = Relu::new();
        let out = l.forward(&Matrix::row_vector(&[-1.0, 0.0, 2.0]), true);
        assert_eq!(out.data(), &[0.0, 0.0, 2.0]);
        let g = l.backward(&Matrix::row_vector(&[1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut l = Dropout::new(0.5, 1);
        let x = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let out = l.forward(&x, false);
        assert_eq!(out.data(), x.data());
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut l = Dropout::new(0.5, 9);
        let x = Matrix::filled(1, 10_000, 1.0);
        let out = l.forward(&x, true);
        let mean = out.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn rbf_activation_peaks_at_centroid() {
        let mut r = rng();
        let mut l = Rbf::new(2, 1, 0.5, &mut r);
        l.load(Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let near = l.forward(&Matrix::row_vector(&[1.0, 1.0]), false);
        assert!((near.get(0, 0) - 1.0).abs() < 1e-12);
        let far = l.forward(&Matrix::row_vector(&[5.0, 5.0]), false);
        assert!(far.get(0, 0) < 1e-10);
    }

    /// Finite-difference gradient check for a layer's parameters and inputs.
    /// Backward-feeding forwards run with `train = true` (inference
    /// forwards no longer cache); the probe forwards stay inference-mode.
    fn grad_check(layer: &mut dyn Layer, x: &Matrix, eps: f64, tol: f64) {
        // Scalar loss = sum of outputs; then dL/dout = 1 everywhere.
        let out = layer.forward(x, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        layer.zero_grad();
        let grad_in = layer.backward(&ones);

        // Check input gradients.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = layer.forward(&xp, false).sum();
            let fm = layer.forward(&xm, false).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grad_in.data()[i];
            assert!(
                (num - ana).abs() < tol,
                "input grad {i}: numeric {num} vs analytic {ana}"
            );
        }

        // Check parameter gradients: recompute analytic grads cleanly first.
        layer.forward(x, true);
        layer.zero_grad();
        layer.backward(&ones);
        let analytic: Vec<Vec<f64>> = layer
            .tensors()
            .iter()
            .map(|t| t.grad.data().to_vec())
            .collect();
        let n_tensors = analytic.len();
        // Index loops on purpose: each probe re-borrows `layer.tensors()`
        // mutably, so iterating `analytic` by reference would alias.
        #[allow(clippy::needless_range_loop)]
        for ti in 0..n_tensors {
            let n = analytic[ti].len();
            for i in 0..n {
                {
                    let mut ts = layer.tensors();
                    ts[ti].value.data_mut()[i] += eps;
                }
                let fp = layer.forward(x, false).sum();
                {
                    let mut ts = layer.tensors();
                    ts[ti].value.data_mut()[i] -= 2.0 * eps;
                }
                let fm = layer.forward(x, false).sum();
                {
                    let mut ts = layer.tensors();
                    ts[ti].value.data_mut()[i] += eps;
                }
                let num = (fp - fm) / (2.0 * eps);
                let ana = analytic[ti][i];
                assert!(
                    (num - ana).abs() < tol,
                    "tensor {ti} grad {i}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut r = rng();
        let mut l = Dense::new(3, 2, &mut r);
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]);
        grad_check(&mut l, &x, 1e-5, 1e-6);
    }

    #[test]
    fn rbf_gradients_match_finite_differences() {
        let mut r = rng();
        let mut l = Rbf::new(2, 3, 0.7, &mut r);
        let x = Matrix::from_vec(2, 2, vec![0.2, -0.4, 1.1, 0.9]);
        grad_check(&mut l, &x, 1e-5, 1e-6);
    }
}
