//! Dense row-major matrix used throughout the neural-network substrate.
//!
//! The matrix sizes involved in DeepTune are modest (hundreds of rows and
//! columns), so a `Vec<f64>`-backed implementation with cache-friendly
//! row-major loops is sufficient; no BLAS is required. The one kernel hot
//! enough to matter is [`Matrix::matmul`] — it sits under every
//! `Dense::forward`, so the `deeptune/forward_batch` scoring path runs it
//! once per layer per wave — and it uses a blocked loop: small output
//! tiles stay cache-resident while each row of the right-hand
//! matrix is streamed once per row-block instead of once per output row.
//! Per output element the accumulation still walks `k` in ascending order
//! and keeps the zero-skip, so the result is **bit-for-bit identical** to
//! the straightforward triple loop, which survives as
//! [`Matrix::matmul_naive`] (the exactness oracle for the unit tests and
//! the `nn/matmul_*` bench ops).
//!
//! ```
//! use wf_nn::Matrix;
//! // Mixed signs and exact zeros (ReLU-style sparsity), with dimensions
//! // that exercise the blocked kernel's remainder edges.
//! let a = Matrix::from_fn(13, 9, |r, c| (((r * 9 + c) % 5) as f64 - 2.0).max(0.0));
//! let b = Matrix::from_fn(9, 70, |r, c| ((r * 70 + c) % 11) as f64 / 3.0 - 1.5);
//! assert_eq!(a.matmul(&b).data(), a.matmul_naive(&b).data());
//! ```

use std::fmt;

/// Row-block size of the blocked [`Matrix::matmul`]: each right-hand row
/// slice is reused across this many left-hand rows while it is hot.
const MC: usize = 8;
/// Column-block size of the blocked [`Matrix::matmul`]: the `MC`×`NC`
/// output tile (4 KiB) and the `NC`-wide row slice stay L1-resident.
const NC: usize = 64;

/// A dense, row-major `rows x cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)` to `v`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Matrix product `self * other` — the blocked kernel (see the module
    /// docs).
    ///
    /// Output tiles of `MC`×`NC` elements are filled one `k` step at a
    /// time, so the tile and the active slice of `other`'s row stay in
    /// cache: each row of `other` is streamed once per `MC`-row block of
    /// `self` instead of once per output row, which is where the naive
    /// row-major loop spends its memory bandwidth. The per-element
    /// accumulation order (ascending `k`) and the `a == 0.0` skip (ReLU
    /// activations make whole columns vanish) are exactly
    /// [`Matrix::matmul_naive`]'s, so the product is bit-for-bit
    /// identical to the naive kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let n = other.cols;
        let mut out = Matrix::zeros(self.rows, n);
        for i0 in (0..self.rows).step_by(MC) {
            let i1 = (i0 + MC).min(self.rows);
            for j0 in (0..n).step_by(NC) {
                let j1 = (j0 + NC).min(n);
                for k in 0..self.cols {
                    let b_row = &other.data[k * n + j0..k * n + j1];
                    for i in i0..i1 {
                        let a = self.data[i * self.cols + k];
                        if a == 0.0 {
                            continue;
                        }
                        let out_row = &mut out.data[i * n + j0..i * n + j1];
                        for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self * other` by the straightforward row-major
    /// triple loop — the reference kernel [`Matrix::matmul`] is proven
    /// bit-identical against (unit tests, the module doctest, and the
    /// `nn/matmul_naive` bench op).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Product `self^T * other`, computed without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul dimension mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Product `self * other^T`, computed without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (a, b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise addition into `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise subtraction into `self`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f64) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// Returns `self + other` as a new matrix.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Returns `self - other` as a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Element-wise (Hadamard) product as a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|v| f(*v)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Adds a `1 x cols` row vector to every row (broadcast).
    pub fn add_row_broadcast(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1);
        assert_eq!(row.cols, self.cols);
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, s) in dst.iter_mut().zip(row.data.iter()) {
                *d += s;
            }
        }
    }

    /// Sums the rows, producing a `1 x cols` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Squared Euclidean distance between row `r` of `self` and row `s` of `other`.
    pub fn row_sq_dist(&self, r: usize, other: &Matrix, s: usize) -> f64 {
        assert_eq!(self.cols, other.cols);
        self.row(r)
            .iter()
            .zip(other.row(s).iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Horizontally concatenates `self` and `other` (same number of rows).
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows);
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Splits the columns at `at`, returning the left and right parts.
    pub fn split_cols(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols);
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..at]);
            right.row_mut(r).copy_from_slice(&self.row(r)[at..]);
        }
        (left, right)
    }

    /// Extracts the rows with the given indices into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_set() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 0.0);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).data(), a.data());
        assert_eq!(i.matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    /// Deterministic pseudo-random fill with mixed signs, magnitudes, and
    /// exact zeros (the ReLU-sparsity case the kernels special-case).
    fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut s = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            match s % 7 {
                0 => 0.0,
                1 => -0.0,
                r => (s % 1000) as f64 / 999.0 - 0.5 + r as f64,
            }
        })
    }

    #[test]
    fn blocked_matmul_matches_naive_bit_for_bit() {
        // Shapes around the MC/NC block edges, degenerate strips, and the
        // forward_batch-like shape (wave × features times features ×
        // hidden).
        let shapes = [
            (1, 1, 1),
            (MC, 3, NC),
            (MC + 1, 5, NC + 1),
            (MC - 1, 4, NC - 1),
            (2 * MC + 3, 17, 2 * NC + 5),
            (1, 9, 2 * NC),
            (3 * MC, 1, 7),
            (64, 56, 48),
        ];
        for (si, &(m, k, n)) in shapes.iter().enumerate() {
            let a = fill(m, k, si as u64 * 2 + 1);
            let b = fill(k, n, si as u64 * 2 + 2);
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            assert_eq!(blocked.rows(), naive.rows());
            assert_eq!(blocked.cols(), naive.cols());
            let bits = |m: &Matrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&blocked), bits(&naive), "shape {m}x{k}*{k}x{n}");
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|v| v as f64).collect());
        let fast = a.t_matmul(&b);
        let slow = a.transposed().matmul(&b);
        assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f64).collect());
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transposed());
        assert_eq!(fast.data(), slow.data());
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let mut m = Matrix::zeros(2, 2);
        m.add_row_broadcast(&Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(m.data(), &[1.0, 2.0, 1.0, 2.0]);
        let s = m.sum_rows();
        assert_eq!(s.data(), &[2.0, 4.0]);
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 1, vec![5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        let (l, r) = c.split_cols(2);
        assert_eq!(l.data(), a.data());
        assert_eq!(r.data(), b.data());
    }

    #[test]
    fn row_sq_dist_known() {
        let a = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.row_sq_dist(0, &b, 0), 25.0);
    }

    #[test]
    fn select_rows_picks_expected() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn map_and_hadamard() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = a.map(f64::abs);
        assert_eq!(b.data(), &[1.0, 2.0, 3.0]);
        let h = a.hadamard(&b);
        assert_eq!(h.data(), &[1.0, -4.0, 9.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f64::NAN);
        assert!(a.has_non_finite());
    }
}
