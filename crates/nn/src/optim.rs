//! Gradient-based optimizers: SGD with momentum and Adam.
//!
//! Optimizers hold per-parameter state keyed by the *position* of each tensor
//! in the list passed to [`Optimizer::step`]; callers must therefore pass the
//! tensors of a given model in a stable order (which is what
//! [`crate::net::Sequential::tensors`] and the DeepTune model do).

use crate::layer::Tensor;
use crate::matrix::Matrix;

/// A gradient-descent optimizer.
pub trait Optimizer {
    /// Applies one update step to every tensor using its accumulated
    /// gradient, then leaves the gradients untouched (callers typically zero
    /// them before the next backward pass).
    fn step(&mut self, tensors: &mut [&mut Tensor]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate.
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, tensors: &mut [&mut Tensor]) {
        if self.velocity.len() != tensors.len() {
            self.velocity = tensors
                .iter()
                .map(|t| Matrix::zeros(t.value.rows(), t.value.cols()))
                .collect();
        }
        for (t, v) in tensors.iter_mut().zip(self.velocity.iter_mut()) {
            for i in 0..t.value.len() {
                let g = t.grad.data()[i];
                let vel = self.momentum * v.data()[i] - self.lr * g;
                v.data_mut()[i] = vel;
                t.value.data_mut()[i] += vel;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba).
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual default betas.
    pub fn new(lr: f64) -> Self {
        Self::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit hyperparameters.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Resets the moment estimates (used when a model is re-initialized).
    pub fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, tensors: &mut [&mut Tensor]) {
        if self.m.len() != tensors.len() {
            self.m = tensors
                .iter()
                .map(|t| Matrix::zeros(t.value.rows(), t.value.cols()))
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((t, m), v) in tensors
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            for i in 0..t.value.len() {
                let g = t.grad.data()[i];
                if !g.is_finite() {
                    continue;
                }
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                t.value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x - 3)^2 must converge to x = 3.
    fn optimize_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut t = Tensor::new(Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..steps {
            let x = t.value.get(0, 0);
            t.grad.set(0, 0, 2.0 * (x - 3.0));
            opt.step(&mut [&mut t]);
        }
        t.value.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.5);
        let x = optimize_quadratic(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = optimize_quadratic(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_skips_non_finite_gradients() {
        let mut opt = Adam::new(0.1);
        let mut t = Tensor::new(Matrix::from_vec(1, 1, vec![1.0]));
        t.grad.set(0, 0, f64::NAN);
        opt.step(&mut [&mut t]);
        assert!((t.value.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn learning_rate_roundtrip() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-15);
    }
}
