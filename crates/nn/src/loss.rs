//! Loss functions used by the DeepTune Model.
//!
//! The paper trains the DTM end-to-end with `L = L_CCE + L_Reg + L_Cham`:
//! categorical cross-entropy for the crash head, the Kendall-&-Gal
//! heteroscedastic regression loss for the performance head coupled with the
//! uncertainty branch, and the Chamfer distance as a centroid regularizer for
//! the RBF layers. Each function returns the scalar loss together with the
//! gradients with respect to its inputs.

use crate::matrix::Matrix;

/// Numerically stable softmax of each row.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for &v in row {
            denom += (v - max).exp();
        }
        for (c, &v) in row.iter().enumerate() {
            out.set(r, c, (v - max).exp() / denom);
        }
    }
    out
}

/// Categorical cross-entropy over row logits.
///
/// `targets[r]` is the class index for row `r`. Returns the mean loss and the
/// gradient with respect to the logits.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target is out of range.
pub fn categorical_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f64, Matrix) {
    let uniform = vec![1.0; logits.cols()];
    weighted_categorical_cross_entropy(logits, targets, &uniform)
}

/// Class-weighted categorical cross-entropy over row logits.
///
/// Like [`categorical_cross_entropy`], but each row's loss and gradient are
/// scaled by `class_weights[targets[r]]`. Used with inverse-frequency
/// weights to keep a minority class (crashing configurations are roughly a
/// third of observations) from being drowned out by the majority.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()`, a target is out of range, or
/// `class_weights.len() != logits.cols()`.
pub fn weighted_categorical_cross_entropy(
    logits: &Matrix,
    targets: &[usize],
    class_weights: &[f64],
) -> (f64, Matrix) {
    assert_eq!(targets.len(), logits.rows(), "target/batch size mismatch");
    assert_eq!(
        class_weights.len(),
        logits.cols(),
        "one weight per class required"
    );
    let probs = softmax_rows(logits);
    let b = logits.rows() as f64;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target class {t} out of range");
        let w = class_weights[t];
        let p = probs.get(r, t).max(1e-12);
        loss -= w * p.ln();
        grad.set(r, t, grad.get(r, t) - 1.0);
        for c in 0..logits.cols() {
            grad.set(r, c, grad.get(r, c) * w);
        }
    }
    grad.scale(1.0 / b);
    (loss / b, grad)
}

/// Heteroscedastic regression loss (Kendall & Gal, NeurIPS'17).
///
/// `mu` is the predicted mean and `log_var` the predicted log-variance
/// (`s = log sigma^2`), both `batch x 1`; `targets` holds the true values.
/// The per-sample loss is `0.5 * exp(-s) * (y - mu)^2 + 0.5 * s`.
/// Returns `(mean loss, grad_mu, grad_log_var)`.
pub fn heteroscedastic_regression(
    mu: &Matrix,
    log_var: &Matrix,
    targets: &[f64],
) -> (f64, Matrix, Matrix) {
    assert_eq!(mu.cols(), 1);
    assert_eq!(log_var.cols(), 1);
    assert_eq!(mu.rows(), log_var.rows());
    assert_eq!(targets.len(), mu.rows());
    let b = mu.rows() as f64;
    let mut loss = 0.0;
    let mut grad_mu = Matrix::zeros(mu.rows(), 1);
    let mut grad_s = Matrix::zeros(mu.rows(), 1);
    for (r, &y) in targets.iter().enumerate() {
        // Clamp s so exp(-s) cannot explode early in training.
        let s = log_var.get(r, 0).clamp(-10.0, 10.0);
        let m = mu.get(r, 0);
        let inv_var = (-s).exp();
        let diff = m - y;
        loss += 0.5 * inv_var * diff * diff + 0.5 * s;
        grad_mu.set(r, 0, inv_var * diff / b);
        grad_s.set(r, 0, 0.5 * (1.0 - inv_var * diff * diff) / b);
    }
    (loss / b, grad_mu, grad_s)
}

/// Symmetric Chamfer distance between a centroid set and a batch of points.
///
/// `L = (1/k) sum_j min_i ||c_j - z_i||^2 + (1/b) sum_i min_j ||z_i - c_j||^2`.
/// Returns the loss and the gradient with respect to the centroids. Gradients
/// with respect to the batch points are intentionally not propagated: the
/// Chamfer term is a *centroid* regularizer (it pulls prototypes onto the
/// latent distribution, cf. §3.2), and letting it also reshape the latents
/// would fight the prediction losses.
pub fn chamfer(centroids: &Matrix, batch: &Matrix) -> (f64, Matrix) {
    assert_eq!(centroids.cols(), batch.cols(), "dimension mismatch");
    let k = centroids.rows();
    let b = batch.rows();
    let mut grad_c = Matrix::zeros(k, centroids.cols());
    if k == 0 || b == 0 {
        return (0.0, grad_c);
    }
    let mut loss = 0.0;

    // Centroid -> nearest point.
    for j in 0..k {
        let mut best = f64::INFINITY;
        let mut best_i = 0;
        for i in 0..b {
            let d2 = centroids.row_sq_dist(j, batch, i);
            if d2 < best {
                best = d2;
                best_i = i;
            }
        }
        loss += best / k as f64;
        for d in 0..centroids.cols() {
            let g = 2.0 * (centroids.get(j, d) - batch.get(best_i, d)) / k as f64;
            grad_c.set(j, d, grad_c.get(j, d) + g);
        }
    }

    // Point -> nearest centroid.
    for i in 0..b {
        let mut best = f64::INFINITY;
        let mut best_j = 0;
        for j in 0..k {
            let d2 = batch.row_sq_dist(i, centroids, j);
            if d2 < best {
                best = d2;
                best_j = j;
            }
        }
        loss += best / b as f64;
        for d in 0..centroids.cols() {
            let g = 2.0 * (centroids.get(best_j, d) - batch.get(i, d)) / b as f64;
            grad_c.set(best_j, d, grad_c.get(best_j, d) + g);
        }
    }

    (loss, grad_c)
}

/// Mean squared error with gradient with respect to the predictions.
pub fn mse(pred: &Matrix, targets: &[f64]) -> (f64, Matrix) {
    assert_eq!(pred.cols(), 1);
    assert_eq!(pred.rows(), targets.len());
    let b = pred.rows() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), 1);
    for (r, &y) in targets.iter().enumerate() {
        let d = pred.get(r, 0) - y;
        loss += d * d;
        grad.set(r, 0, 2.0 * d / b);
    }
    (loss / b, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn cce_perfect_prediction_is_near_zero() {
        let logits = Matrix::from_vec(1, 2, vec![100.0, -100.0]);
        let (loss, _) = categorical_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cce_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 2, vec![0.3, -0.2, 1.0, 0.5]);
        let targets = [1usize, 0usize];
        let (_, grad) = categorical_cross_entropy(&logits, &targets);
        let eps = 1e-6;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = categorical_cross_entropy(&lp, &targets);
            let (fm, _) = categorical_cross_entropy(&lm, &targets);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn heteroscedastic_gradients_match_finite_difference() {
        let mu = Matrix::col_vector(&[0.5, -0.3]);
        let s = Matrix::col_vector(&[0.1, -0.4]);
        let y = [1.0, 0.0];
        let (_, gmu, gs) = heteroscedastic_regression(&mu, &s, &y);
        let eps = 1e-6;
        for r in 0..2 {
            let mut mp = mu.clone();
            mp.set(r, 0, mp.get(r, 0) + eps);
            let mut mm = mu.clone();
            mm.set(r, 0, mm.get(r, 0) - eps);
            let (fp, _, _) = heteroscedastic_regression(&mp, &s, &y);
            let (fm, _, _) = heteroscedastic_regression(&mm, &s, &y);
            assert!(((fp - fm) / (2.0 * eps) - gmu.get(r, 0)).abs() < 1e-6);

            let mut sp = s.clone();
            sp.set(r, 0, sp.get(r, 0) + eps);
            let mut sm = s.clone();
            sm.set(r, 0, sm.get(r, 0) - eps);
            let (fp, _, _) = heteroscedastic_regression(&mu, &sp, &y);
            let (fm, _, _) = heteroscedastic_regression(&mu, &sm, &y);
            assert!(((fp - fm) / (2.0 * eps) - gs.get(r, 0)).abs() < 1e-6);
        }
    }

    #[test]
    fn heteroscedastic_penalizes_overconfidence() {
        let mu = Matrix::col_vector(&[0.0]);
        let confident = Matrix::col_vector(&[-5.0]);
        let humble = Matrix::col_vector(&[0.0]);
        let y = [3.0];
        let (l_conf, _, _) = heteroscedastic_regression(&mu, &confident, &y);
        let (l_humble, _, _) = heteroscedastic_regression(&mu, &humble, &y);
        assert!(
            l_conf > l_humble,
            "being wrong and confident must cost more"
        );
    }

    #[test]
    fn chamfer_zero_when_centroids_cover_points() {
        let pts = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let (loss, grad) = chamfer(&pts, &pts);
        assert!(loss.abs() < 1e-12);
        assert!(grad.max_abs() < 1e-12);
    }

    #[test]
    fn chamfer_gradient_matches_finite_difference() {
        let c = Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.9, 1.1]);
        let z = Matrix::from_vec(3, 2, vec![0.0, 0.0, 1.0, 1.0, 0.5, 0.4]);
        let (_, grad) = chamfer(&c, &z);
        let eps = 1e-6;
        for i in 0..c.len() {
            let mut cp = c.clone();
            cp.data_mut()[i] += eps;
            let mut cm = c.clone();
            cm.data_mut()[i] -= eps;
            let (fp, _) = chamfer(&cp, &z);
            let (fm, _) = chamfer(&cm, &z);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-5,
                "i={i} num={num} ana={}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn chamfer_pulls_lone_centroid_toward_points() {
        let c = Matrix::from_vec(1, 1, vec![10.0]);
        let z = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        let (_, grad) = chamfer(&c, &z);
        // Gradient must be positive: moving the centroid down (toward the
        // points) reduces the loss.
        assert!(grad.get(0, 0) > 0.0);
    }

    #[test]
    fn mse_known_value() {
        let pred = Matrix::col_vector(&[1.0, 2.0]);
        let (loss, grad) = mse(&pred, &[0.0, 2.0]);
        assert!((loss - 0.5).abs() < 1e-12);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(grad.get(1, 0), 0.0);
    }
}
