//! Golden tests: the analyzer's exact output over a fixture crate, and
//! the cleanliness of the real workspace it guards.
//!
//! The fixture under `tests/fixture/` is a miniature workspace with one
//! deliberate violation per rule family, one reasonless allow (which
//! must fail the run — the acceptance criterion for undocumented
//! carve-outs), and one justified allow (which must land in the
//! suppressed list with its reason intact).

use std::path::{Path, PathBuf};
use wf_lint::{lint_workspace, load_config, render_json, Config};

const FIXTURE_FILE: &str = "crates/demo/src/lib.rs";

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixture")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn fixture_findings_match_exactly() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("scan fixture");
    assert_eq!(report.files_scanned, 1);
    let got: Vec<(&str, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule.as_str()))
        .collect();
    let expected = vec![
        (FIXTURE_FILE, 8, "wall-clock-in-det-path"),
        (FIXTURE_FILE, 12, "unordered-map-iteration"),
        (FIXTURE_FILE, 16, "process-exit-in-lib"),
        (FIXTURE_FILE, 20, "lock-unwrap"),
        (FIXTURE_FILE, 24, "bad-suppression"),
        (FIXTURE_FILE, 25, "wall-clock-in-det-path"),
    ];
    assert_eq!(got, expected);
}

#[test]
fn fixture_justified_allow_is_suppressed_with_its_reason() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("scan fixture");
    let sup: Vec<(&str, u32, &str, &str)> = report
        .suppressed
        .iter()
        .map(|s| (s.file.as_str(), s.line, s.rule.as_str(), s.reason.as_str()))
        .collect();
    assert_eq!(
        sup,
        vec![(
            FIXTURE_FILE,
            30,
            "wall-clock-in-det-path",
            "fixture: the documented shape of a justified carve-out",
        )]
    );
}

/// The acceptance criterion for undocumented carve-outs: stripping the
/// reason from an allow (line 24 of the fixture) yields a
/// `bad-suppression` finding AND leaves the original violation
/// unsuppressed, so the run — and therefore CI — fails.
#[test]
fn reasonless_allow_fails_the_run() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("scan fixture");
    assert!(!report.clean(), "a reasonless allow must fail the run");
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "bad-suppression" && f.line == 24));
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "wall-clock-in-det-path" && f.line == 25),
        "a reasonless allow must not suppress the violation it targets"
    );
}

#[test]
fn fixture_json_report_is_stable() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("scan fixture");
    let json = render_json(&report);
    assert!(json.starts_with(
        "{\"version\":1,\"files_scanned\":1,\"findings\":6,\"suppressed\":1,\"items\":[\
         {\"file\":\"crates/demo/src/lib.rs\",\"line\":8,\"rule\":\"wall-clock-in-det-path\""
    ));
    assert!(json.contains(
        "\"allows\":[{\"file\":\"crates/demo/src/lib.rs\",\"line\":30,\
         \"rule\":\"wall-clock-in-det-path\",\"reason\":\"fixture: the documented shape \
         of a justified carve-out\"}]"
    ));
}

/// The tentpole invariant: the workspace this analyzer guards is clean
/// under its checked-in `wf-lint.toml` — zero unsuppressed findings,
/// and every carve-out carries a non-empty reason.
#[test]
fn workspace_is_clean_and_every_allow_has_a_reason() {
    let root = repo_root();
    let cfg = load_config(&root).expect("wf-lint.toml parses");
    let report = lint_workspace(&root, &cfg).expect("scan workspace");
    assert!(
        report.files_scanned > 100,
        "scanned {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{} {}", f.file, f.line, f.rule))
        .collect();
    assert!(
        report.clean(),
        "unsuppressed findings:\n{}",
        rendered.join("\n")
    );
    assert!(!report.suppressed.is_empty(), "carve-outs should exist");
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} allow({}) has no reason",
            s.file,
            s.line,
            s.rule
        );
    }
}
