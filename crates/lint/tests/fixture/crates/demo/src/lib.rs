//! `wf-lint` golden-test fixture: a miniature crate whose violations
//! are asserted by exact `(file, line, rule)` in `tests/golden.rs`.
//! Inserting or deleting lines here must update that test.

use std::collections::HashMap;

pub fn wall_clock_violation() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn map_iteration_violation(m: &HashMap<String, u32>) -> Vec<String> {
    m.keys().cloned().collect()
}

pub fn process_exit_violation() {
    std::process::exit(2);
}

pub fn lock_unwrap_violation(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn reasonless_allow_violation() -> std::time::SystemTime {
    // wf-lint: allow(wall-clock-in-det-path)
    std::time::SystemTime::now()
}

pub fn justified_carve_out() -> std::time::Instant {
    // wf-lint: allow(wall-clock-in-det-path, reason = "fixture: the documented shape of a justified carve-out")
    std::time::Instant::now()
}

pub fn sorted_iteration_is_clean(m: &HashMap<String, u32>) -> Vec<String> {
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_the_host_clock() {
        let _ = std::time::Instant::now();
    }
}
