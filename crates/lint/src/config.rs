//! `wf-lint.toml`: file-level configuration for the analyzer.
//!
//! The build image has no crates.io access, so this is a small
//! hand-rolled parser for the TOML subset the config actually uses —
//! `[section]` headers, string / boolean values, and single-line string
//! arrays. Unknown sections or keys are hard errors: a typo'd config
//! silently linting nothing would defeat the whole point.
//!
//! ```toml
//! [scan]
//! roots = ["crates", "src"]          # scanned relative to the root dir
//! exclude = ["vendor", "target"]     # rel-path prefixes, always skipped
//!
//! [rules.swallowed-io-error]
//! functions = ["write_frame"]        # free functions returning io::Result
//!
//! [rules.unordered-map-iteration]
//! enabled = true
//! ```

use crate::rules;

/// Resolved analyzer configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Directories (relative to the scan root) whose `**/src/**/*.rs`
    /// files are scanned.
    pub roots: Vec<String>,
    /// Relative-path prefixes excluded from the scan.
    pub exclude: Vec<String>,
    /// Rules disabled via `enabled = false`.
    pub disabled: Vec<String>,
    /// Free functions whose discarded `io::Result` the
    /// `swallowed-io-error` rule reports (methods like `write_all` are
    /// built in; this names project-local helpers).
    pub io_functions: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec!["crates".into(), "src".into()],
            exclude: vec!["vendor".into(), "target".into()],
            disabled: Vec::new(),
            io_functions: vec!["write_frame".into()],
        }
    }
}

impl Config {
    /// True if `rule` should run.
    pub fn enabled(&self, rule: &str) -> bool {
        !self.disabled.iter().any(|r| r == rule)
    }
}

/// Parses the `wf-lint.toml` text into a [`Config`] layered over the
/// defaults. Errors carry the offending line number.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(head) = line.strip_prefix('[') {
            let head = head
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated section header"))?;
            section = head.trim().to_string();
            match section.as_str() {
                "scan" => {}
                s if s.strip_prefix("rules.").is_some_and(rules::is_known) => {}
                s => {
                    return Err(format!(
                        "line {lineno}: unknown section [{s}] (expected [scan] or \
                         [rules.<known-rule>])"
                    ))
                }
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        match (section.as_str(), key) {
            ("scan", "roots") => cfg.roots = parse_string_array(value, lineno)?,
            ("scan", "exclude") => cfg.exclude = parse_string_array(value, lineno)?,
            ("scan", k) => return Err(format!("line {lineno}: unknown [scan] key `{k}`")),
            (s, k) => {
                let rule = s
                    .strip_prefix("rules.")
                    .ok_or_else(|| format!("line {lineno}: key `{k}` outside any section"))?;
                match k {
                    "enabled" => match value {
                        "true" => cfg.disabled.retain(|r| r != rule),
                        "false" => cfg.disabled.push(rule.to_string()),
                        v => {
                            return Err(format!("line {lineno}: `enabled` must be a bool, got {v}"))
                        }
                    },
                    "functions" if rule == "swallowed-io-error" => {
                        cfg.io_functions = parse_string_array(value, lineno)?
                    }
                    k => return Err(format!("line {lineno}: unknown key `{k}` for rule {rule}")),
                }
            }
        }
    }
    Ok(cfg)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` (single line).
fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected a [\"…\"] array"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let s = item
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {lineno}: array items must be quoted strings"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scan_crates_and_src() {
        let c = Config::default();
        assert_eq!(c.roots, vec!["crates", "src"]);
        assert!(c.exclude.iter().any(|e| e == "vendor"));
        assert!(c.enabled("lock-unwrap"));
    }

    #[test]
    fn parses_scan_and_rule_sections() {
        let c = parse(
            "# top comment\n[scan]\nexclude = [\"vendor\", \"target\", \"crates/lint\"]\n\n\
             [rules.swallowed-io-error]\nfunctions = [\"write_frame\", \"send_best_effort\"]\n\
             [rules.host-env-read]\nenabled = false\n",
        )
        .unwrap();
        assert_eq!(c.exclude.len(), 3);
        assert_eq!(c.io_functions, vec!["write_frame", "send_best_effort"]);
        assert!(!c.enabled("host-env-read"));
        assert!(c.enabled("lock-unwrap"));
    }

    #[test]
    fn unknown_rule_section_is_an_error() {
        assert!(parse("[rules.definitely-not-a-rule]\nenabled = false\n").is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        assert!(parse("[scan]\nrots = [\"crates\"]\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let c = parse("[scan]\nexclude = [\"a#b\"]\n").unwrap();
        assert_eq!(c.exclude, vec!["a#b"]);
    }
}
