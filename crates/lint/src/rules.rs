//! The rule engine: ~8 determinism & robustness rules over token streams.
//!
//! Two families, mirroring docs/DETERMINISM.md:
//!
//! **Determinism** — things that make a session depend on the host:
//! - `wall-clock-in-det-path`: `Instant::now` / `SystemTime::now`
//!   outside the documented `algo_seconds` carve-out,
//! - `unordered-map-iteration`: `HashMap`/`HashSet` iteration whose
//!   order escapes without a sort,
//! - `unseeded-rng`: `thread_rng` / `from_entropy` / `OsRng` instead of
//!   seeds derived via `derive_seed`,
//! - `thread-id-dependence`: `thread::current().id()` / `ThreadId`,
//! - `host-env-read`: `std::env::var*` outside config-load paths.
//!
//! **Robustness** — things that kill or silently degrade a daemon host:
//! - `lock-unwrap`: `.lock().unwrap()` instead of `lock_recover`,
//! - `process-exit-in-lib`: `process::exit`/`abort` in library code,
//! - `swallowed-io-error`: `let _ =` discarding an `io::Result` write.
//!
//! All rules are token-sequence heuristics — deliberately: they run with
//! zero dependencies in milliseconds, and the escape hatch for a true
//! positive the heuristic cannot see past is an inline
//! `// wf-lint: allow(<rule>, reason = "...")`, which documents the
//! carve-out where it lives. `#[cfg(test)]` modules are excluded (tests
//! may use the host freely); `#[cfg(not(test))]` is not.

use crate::config::Config;
use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// The meta-rule reported for malformed/reasonless allows. Always on,
/// never suppressible.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// One rule's registry entry.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    pub name: &'static str,
    pub family: &'static str,
    pub summary: &'static str,
}

/// Every rule the engine knows, in stable report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wall-clock-in-det-path",
        family: "determinism",
        summary: "Instant::now/SystemTime::now outside the algo_seconds carve-out",
    },
    RuleInfo {
        name: "unordered-map-iteration",
        family: "determinism",
        summary: "HashMap/HashSet iteration order escapes without a sort",
    },
    RuleInfo {
        name: "unseeded-rng",
        family: "determinism",
        summary: "RNG seeded from the host (thread_rng/from_entropy/OsRng)",
    },
    RuleInfo {
        name: "thread-id-dependence",
        family: "determinism",
        summary: "behavior keyed on thread::current().id()/ThreadId",
    },
    RuleInfo {
        name: "host-env-read",
        family: "determinism",
        summary: "std::env::var* read outside config-load paths",
    },
    RuleInfo {
        name: "lock-unwrap",
        family: "robustness",
        summary: ".lock().unwrap()/.expect() instead of lock_recover",
    },
    RuleInfo {
        name: "process-exit-in-lib",
        family: "robustness",
        summary: "process::exit/abort in library code",
    },
    RuleInfo {
        name: "swallowed-io-error",
        family: "robustness",
        summary: "let _ = discarding an io::Result write/flush",
    },
    RuleInfo {
        name: BAD_SUPPRESSION,
        family: "meta",
        summary: "wf-lint: allow comment without a rule/reason",
    },
];

/// True if `name` is a registered rule.
pub fn is_known(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One finding at a file/line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

/// Runs every enabled rule over a lexed file. `path` is the
/// root-relative path (used both for reporting and for the lib/bin
/// distinction `process-exit-in-lib` needs).
pub fn scan(path: &str, lexed: &Lexed, cfg: &Config) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let excluded = cfg_test_spans(toks);
    let mut out = Vec::new();
    let mut emit = |line: u32, rule: &str, message: String| {
        if cfg.enabled(rule) && !excluded.iter().any(|&(a, b)| (a..=b).contains(&line)) {
            out.push(Finding {
                file: path.to_string(),
                line,
                rule: rule.to_string(),
                message,
            });
        }
    };

    wall_clock(toks, &mut emit);
    unordered_map_iteration(toks, &mut emit);
    unseeded_rng(toks, &mut emit);
    thread_id(toks, &mut emit);
    host_env_read(toks, &mut emit);
    lock_unwrap(toks, &mut emit);
    if is_lib_code(path) {
        process_exit(toks, &mut emit);
    }
    swallowed_io_error(toks, cfg, &mut emit);
    out
}

/// Library code = anything under a `src/` that is not a binary root
/// (`src/bin/…`, `main.rs`). Binaries own their process and may exit.
fn is_lib_code(path: &str) -> bool {
    let unix = path.replace('\\', "/");
    !unix.contains("/bin/") && !unix.ends_with("main.rs")
}

/// Line spans covered by `#[cfg(test)]`-gated items (modules, fns,
/// impls). Conservative: `cfg(not(test))` and friends are *not*
/// excluded, and an attribute we fail to pair simply excludes nothing.
fn cfg_test_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 4 < toks.len() {
        if toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
        {
            // Scan the cfg(...) argument for a `test` not negated by `not`.
            let mut depth = 1usize;
            let mut j = i + 4;
            let (mut saw_test, mut saw_not) = (false, false);
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                } else if toks[j].is_ident("test") {
                    saw_test = true;
                } else if toks[j].is_ident("not") {
                    saw_not = true;
                }
                j += 1;
            }
            if saw_test && !saw_not {
                if let Some(span) = item_span(toks, j) {
                    spans.push(span);
                    i = j;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// The line span of the item following an attribute: skips further
/// attributes, then pairs the first `{` with its `}` (or, for brace-less
/// items like `#[cfg(test)] use …;`, ends at the `;`).
fn item_span(toks: &[Tok], mut i: usize) -> Option<(u32, u32)> {
    // Expect `]` closing the attribute we came from.
    if toks.get(i).is_some_and(|t| t.is_punct(']')) {
        i += 1;
    }
    let start_line = toks.get(i)?.line;
    // Skip stacked attributes.
    while toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut depth = 0usize;
        i += 1;
        loop {
            let t = toks.get(i)?;
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Find the item's opening brace or terminating semicolon.
    loop {
        let t = toks.get(i)?;
        if t.is_punct(';') {
            return Some((start_line, t.line));
        }
        if t.is_punct('{') {
            break;
        }
        i += 1;
    }
    let mut depth = 0usize;
    loop {
        let t = toks.get(i)?;
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((start_line, t.line));
            }
        }
        i += 1;
    }
}

/// `Instant::now` / `SystemTime::now`.
fn wall_clock(toks: &[Tok], emit: &mut impl FnMut(u32, &str, String)) {
    for i in 0..toks.len().saturating_sub(3) {
        if (toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime"))
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("now")
        {
            emit(
                toks[i].line,
                "wall-clock-in-det-path",
                format!(
                    "host wall-clock read (`{}::now`) in a deterministic path; use the \
                     virtual clocks, or annotate the documented `algo_seconds`/host-I/O \
                     carve-out",
                    toks[i].text
                ),
            );
        }
    }
}

/// `thread_rng` / `from_entropy` / `OsRng`.
fn unseeded_rng(toks: &[Tok], emit: &mut impl FnMut(u32, &str, String)) {
    for t in toks {
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("OsRng") {
            emit(
                t.line,
                "unseeded-rng",
                format!(
                    "`{}` draws entropy from the host; derive per-candidate seeds via \
                     `derive_seed` from the session seed",
                    t.text
                ),
            );
        }
    }
}

/// `thread::current().id()` or any `ThreadId` mention.
fn thread_id(toks: &[Tok], emit: &mut impl FnMut(u32, &str, String)) {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("ThreadId") {
            emit(
                t.line,
                "thread-id-dependence",
                "`ThreadId` is host-scheduling-dependent; key worker behavior on the \
                 deterministic lane index instead"
                    .to_string(),
            );
        }
        if t.is_ident("current")
            && i + 4 < toks.len()
            && toks[i + 1].is_punct('(')
            && toks[i + 2].is_punct(')')
            && toks[i + 3].is_punct('.')
            && toks[i + 4].is_ident("id")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
        {
            emit(
                t.line,
                "thread-id-dependence",
                "`thread::current().id()` is host-scheduling-dependent; use the lane \
                 index carried by the dispatch"
                    .to_string(),
            );
        }
    }
}

/// `env::var` / `env::var_os` / `env::vars` / `env::vars_os`.
fn host_env_read(toks: &[Tok], emit: &mut impl FnMut(u32, &str, String)) {
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].is_ident("env")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && (toks[i + 3].is_ident("var")
                || toks[i + 3].is_ident("var_os")
                || toks[i + 3].is_ident("vars")
                || toks[i + 3].is_ident("vars_os"))
        {
            emit(
                toks[i].line,
                "host-env-read",
                format!(
                    "`env::{}` reads host state; resolve it once at config-load time \
                     (jobfile/builder) or annotate why this site is config-load",
                    toks[i + 3].text
                ),
            );
        }
    }
}

/// `.lock().unwrap()` / `.lock().expect(…)`.
fn lock_unwrap(toks: &[Tok], emit: &mut impl FnMut(u32, &str, String)) {
    for i in 0..toks.len().saturating_sub(5) {
        if toks[i].is_punct('.')
            && toks[i + 1].is_ident("lock")
            && toks[i + 2].is_punct('(')
            && toks[i + 3].is_punct(')')
            && toks[i + 4].is_punct('.')
            && (toks[i + 5].is_ident("unwrap") || toks[i + 5].is_ident("expect"))
        {
            emit(
                toks[i + 1].line,
                "lock-unwrap",
                "a poisoned mutex panics the holder and cascades; use \
                 `wf_platform::lock_recover` (poison-recovering) instead"
                    .to_string(),
            );
        }
    }
}

/// `process::exit` / `process::abort` in library code.
fn process_exit(toks: &[Tok], emit: &mut impl FnMut(u32, &str, String)) {
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].is_ident("process")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && (toks[i + 3].is_ident("exit") || toks[i + 3].is_ident("abort"))
        {
            emit(
                toks[i].line,
                "process-exit-in-lib",
                format!(
                    "`process::{}` in library code tears down every tenant of a daemon \
                     host; return an error and let the binary decide",
                    toks[i + 3].text
                ),
            );
        }
    }
}

/// Method names whose discarded `io::Result` the swallowed-io rule
/// reports. `writeln!`/`write!` to a `String` (`fmt::Write`) are macro
/// invocations and never match a method-call pattern, so the classic
/// in-memory emitters stay clean.
const IO_METHODS: &[&str] = &[
    "write",
    "write_all",
    "write_fmt",
    "flush",
    "sync_all",
    "sync_data",
    "set_len",
];

/// `let _ = <expr calling an io write>` — the error vanished.
fn swallowed_io_error(toks: &[Tok], cfg: &Config, emit: &mut impl FnMut(u32, &str, String)) {
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident("let") && toks[i + 1].is_ident("_") && toks[i + 2].is_punct('=') {
            let end = statement_end(toks, i + 3, 1);
            for j in i + 3..end {
                let method = toks[j].kind == TokKind::Ident
                    && IO_METHODS.contains(&toks[j].text.as_str())
                    && j >= 1
                    && toks[j - 1].is_punct('.');
                let free_fn = toks[j].kind == TokKind::Ident
                    && cfg.io_functions.iter().any(|f| toks[j].is_ident(f));
                let called = toks.get(j + 1).is_some_and(|t| t.is_punct('('));
                if (method || free_fn) && called {
                    emit(
                        toks[i].line,
                        "swallowed-io-error",
                        format!(
                            "`let _ =` discards the `io::Result` of `{}`; handle or \
                             propagate it, or annotate why best-effort is correct here",
                            toks[j].text
                        ),
                    );
                    break;
                }
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

/// Index one past the token ending the `n`-th statement from `start`
/// (semicolons at bracket depth 0; a `{` at depth 0 also terminates —
/// expression-bodied match arms etc. stop the window early rather than
/// spanning blocks).
fn statement_end(toks: &[Tok], start: usize, n: usize) -> usize {
    let mut depth = 0i32;
    let mut remaining = n;
    let limit = (start + 300).min(toks.len());
    for (j, t) in toks.iter().enumerate().take(limit).skip(start) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return j;
        } else if t.is_punct(';') && depth <= 0 {
            remaining -= 1;
            if remaining == 0 {
                return j + 1;
            }
        }
    }
    limit
}

/// Order-insensitive sinks: if one of these appears in the statement (or
/// the one right after, for the collect-then-sort idiom) the iteration's
/// order does not escape.
const ORDER_SINKS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "count",
    "len",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "all",
    "any",
    "contains",
    "contains_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// HashMap/HashSet iteration whose order escapes.
///
/// Pass A collects names bound to hash containers in this file (let
/// bindings, struct fields, fn params — anything shaped `name: HashMap<`
/// or `let name = HashMap::new()`); pass B flags `.iter()`-family calls
/// and `for … in &name` loops on those names unless an order-insensitive
/// sink appears within the statement window.
fn unordered_map_iteration(toks: &[Tok], emit: &mut impl FnMut(u32, &str, String)) {
    let mut map_names: BTreeSet<&str> = BTreeSet::new();
    // `name : [&] [mut] HashMap/HashSet` (fields, params, annotated lets).
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].kind != TokKind::Ident || !toks[i + 1].is_punct(':') {
            continue;
        }
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('&')) {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if toks
            .get(j)
            .is_some_and(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
        {
            map_names.insert(toks[i].text.as_str());
        }
    }
    // `let [mut] name = … HashMap::new()/with_capacity/default/from(…)`.
    for i in 0..toks.len().saturating_sub(3) {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks[j].is_ident("mut") {
            j += 1;
        }
        if toks[j].kind != TokKind::Ident {
            continue;
        }
        let name = toks[j].text.as_str();
        if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        let end = statement_end(toks, j + 2, 1);
        for k in j + 2..end.saturating_sub(3) {
            if (toks[k].is_ident("HashMap") || toks[k].is_ident("HashSet"))
                && toks[k + 1].is_punct(':')
                && toks[k + 2].is_punct(':')
            {
                map_names.insert(name);
                break;
            }
        }
    }
    if map_names.is_empty() {
        return;
    }

    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "drain",
        "into_keys",
        "into_values",
    ];
    // Method-call form: `name.iter()` / `self.name.iter()`.
    for i in 0..toks.len().saturating_sub(3) {
        let name_ok = toks[i].kind == TokKind::Ident && map_names.contains(toks[i].text.as_str());
        if !(name_ok
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks.get(i + 3).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        // Window: this statement plus the next (collect-then-sort).
        let end = statement_end(toks, i, 2);
        let sink = (i..end).any(|j| {
            toks[j].kind == TokKind::Ident && ORDER_SINKS.contains(&toks[j].text.as_str())
        });
        if !sink {
            emit(
                toks[i].line,
                "unordered-map-iteration",
                format!(
                    "iteration order of `{}.{}()` is unspecified and escapes this \
                     statement; sort before exposing (see `NamedConfig::iter`) or \
                     collect into a BTree container",
                    toks[i].text,
                    toks[i + 2].text
                ),
            );
        }
    }
    // For-loop form: `for … in &name { … }` / `in &self.name { … }`.
    for i in 0..toks.len().saturating_sub(2) {
        if !toks[i].is_ident("in") {
            continue;
        }
        let mut j = i + 1;
        if toks[j].is_punct('&') {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_ident("self"))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
        {
            j += 2;
        }
        let Some(name_tok) = toks.get(j) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident || !map_names.contains(name_tok.text.as_str()) {
            continue;
        }
        if !toks.get(j + 1).is_some_and(|t| t.is_punct('{')) {
            continue;
        }
        emit(
            toks[i].line,
            "unordered-map-iteration",
            format!(
                "`for … in &{}` visits a hash container in unspecified order; iterate \
                 sorted keys, or annotate why the body is order-insensitive",
                name_tok.text
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str) -> Vec<Finding> {
        scan("crates/x/src/lib.rs", &lex(src), &Config::default())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn wall_clock_fires_and_strings_do_not() {
        let f = scan_src("fn f() { let t = Instant::now(); }");
        assert_eq!(rules_of(&f), vec!["wall-clock-in-det-path"]);
        assert!(scan_src(r#"fn f() { log("Instant::now()"); }"#).is_empty());
    }

    #[test]
    fn cfg_test_module_is_excluded() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { let t = \
                   Instant::now(); }\n}\n";
        assert!(scan_src(src).is_empty());
        // …but cfg(not(test)) is not excluded.
        let src = "#[cfg(not(test))]\nmod real {\n fn g() { let t = Instant::now(); }\n}\n";
        assert_eq!(scan_src(src).len(), 1);
    }

    #[test]
    fn lock_unwrap_fires_but_recover_does_not() {
        assert_eq!(
            rules_of(&scan_src("fn f() { let g = M.lock().unwrap(); }")),
            vec!["lock-unwrap"]
        );
        assert_eq!(
            rules_of(&scan_src("fn f() { let g = M.lock().expect(\"x\"); }")),
            vec!["lock-unwrap"]
        );
        assert!(scan_src("fn f() { let g = lock_recover(&M); }").is_empty());
        assert!(
            scan_src("fn f() { let g = M.lock().unwrap_or_else(|e| e.into_inner()); }").is_empty()
        );
    }

    #[test]
    fn process_exit_only_in_lib_code() {
        let src = "fn f() { std::process::exit(1); }";
        assert_eq!(rules_of(&scan_src(src)), vec!["process-exit-in-lib"]);
        let cfg = Config::default();
        assert!(scan("src/bin/wfctl.rs", &lex(src), &cfg).is_empty());
        assert!(scan("crates/x/src/main.rs", &lex(src), &cfg).is_empty());
    }

    #[test]
    fn env_reads_and_rng_and_thread_id() {
        assert_eq!(
            rules_of(&scan_src("fn f() { let v = std::env::var(\"X\"); }")),
            vec!["host-env-read"]
        );
        assert_eq!(
            rules_of(&scan_src("fn f() { let r = thread_rng(); }")),
            vec!["unseeded-rng"]
        );
        assert_eq!(
            rules_of(&scan_src(
                "fn f() { let id = std::thread::current().id(); }"
            )),
            vec!["thread-id-dependence"]
        );
        // `current().id()` on something other than `thread` is fine.
        assert!(scan_src("fn f() { let id = epoch::current().id(); }").is_empty());
    }

    #[test]
    fn swallowed_io_error_methods_and_free_fns() {
        assert_eq!(
            rules_of(&scan_src("fn f() { let _ = stream.write_all(b\"x\"); }")),
            vec!["swallowed-io-error"]
        );
        // Configured free function (write_frame is a default).
        assert_eq!(
            rules_of(&scan_src("fn f() { let _ = write_frame(&mut s, &msg); }")),
            vec!["swallowed-io-error"]
        );
        // fmt::Write via macro is fine.
        assert!(scan_src("fn f(out: &mut String) { let _ = writeln!(out, \"x\"); }").is_empty());
        // Handled results are fine.
        assert!(scan_src("fn f() { stream.write_all(b\"x\")?; }").is_empty());
    }

    #[test]
    fn map_iteration_order_escape() {
        // Field iteration escaping through map() — fires.
        let src = "struct S { map: HashMap<String, u32> }\nimpl S {\n fn iter(&self) -> \
                   impl Iterator<Item = u32> { self.map.iter().map(|(_, v)| *v) }\n}\n";
        assert_eq!(rules_of(&scan_src(src)), vec!["unordered-map-iteration"]);
        // Collect-then-sort (the to_dotconfig idiom) — clean.
        let src = "struct S { values: HashMap<String, u32> }\nimpl S {\n fn names(&self) \
                   -> Vec<&str> { let mut v: Vec<&str> = \
                   self.values.keys().map(String::as_str).collect(); v.sort_unstable(); v \
                   }\n}\n";
        assert!(scan_src(src).is_empty());
        // Order-insensitive terminal — clean.
        let src = "fn f(m: &HashMap<u32, u32>) -> usize { m.values().count() }";
        assert!(scan_src(src).is_empty());
        // For-loop over a local hash set — fires.
        let src = "fn f() { let mut s = HashSet::new(); s.insert(1); for x in &s { \
                   emit(x); } }";
        assert_eq!(rules_of(&scan_src(src)), vec!["unordered-map-iteration"]);
        // Vec iteration never fires.
        let src = "fn f(v: &Vec<u32>) -> Vec<u32> { v.iter().map(|x| x + 1).collect() }";
        assert!(scan_src(src).is_empty());
    }
}
