//! The command-line driver, shared by the standalone `wf-lint` binary
//! and `wfctl lint`.
//!
//! ```text
//! <program> [ROOT] [--format human|json] [--out PATH] [--list-rules]
//! ```
//!
//! Exits 0 when the tree is clean, 1 on any unsuppressed finding, and
//! 2 on usage/config errors — so CI can gate on the exit code while
//! archiving the `--out` JSON artifact.

use std::path::PathBuf;

struct Args {
    root: PathBuf,
    format: Format,
    out: Option<PathBuf>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        format: Format::Human,
        out: None,
        list_rules: false,
    };
    let mut i = 0;
    let mut root_set = false;
    while i < argv.len() {
        match argv[i].as_str() {
            "--format" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("human") => args.format = Format::Human,
                    Some("json") => args.format = Format::Json,
                    other => return Err(format!("--format expects human|json, got {other:?}")),
                }
            }
            "--out" => {
                i += 1;
                let path = argv.get(i).ok_or("--out needs a path")?;
                args.out = Some(PathBuf::from(path));
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: [ROOT] [--format human|json] [--out PATH] [--list-rules]".to_string(),
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            operand if !root_set => {
                args.root = PathBuf::from(operand);
                root_set = true;
            }
            operand => return Err(format!("unexpected operand {operand:?}")),
        }
        i += 1;
    }
    Ok(args)
}

/// Runs the analyzer CLI; `program` prefixes diagnostics (`wf-lint` or
/// `wfctl lint`). Returns the process exit code: 0 clean, 1 findings,
/// 2 usage/config error.
pub fn run(argv: &[String], program: &str) -> u8 {
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{program}: {e}");
            return 2;
        }
    };
    if args.list_rules {
        for r in crate::RULES {
            println!("{:<28} [{}] {}", r.name, r.family, r.summary);
        }
        return 0;
    }
    let cfg = match crate::load_config(&args.root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{program}: bad config: {e}");
            return 2;
        }
    };
    let report = match crate::lint_workspace(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{program}: scan failed: {e}");
            return 2;
        }
    };
    let rendered = match args.format {
        Format::Human => crate::render_human(&report),
        Format::Json => crate::render_json(&report),
    };
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("{program}: cannot write {}: {e}", out.display());
            return 2;
        }
        // Keep the human summary on stdout even when JSON goes to a file.
        if args.format == Format::Json {
            print!("{}", crate::render_human(&report));
        }
    } else {
        print!("{rendered}");
        if args.format == Format::Json {
            println!();
        }
    }
    u8::from(!report.clean())
}
