//! `wf-lint` — standalone entry point for the workspace analyzer; the
//! actual driver lives in [`wf_lint::cli`] (shared with `wfctl lint`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(wf_lint::cli::run(&argv, "wf-lint"))
}
