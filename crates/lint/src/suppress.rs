//! Inline suppressions: `// wf-lint: allow(<rule>, reason = "...")`.
//!
//! Every carve-out from the determinism/robustness contract must be
//! documented *in place*: the `reason` string is mandatory, and an
//! allow without one (or naming an unknown rule) is itself a finding
//! (`bad-suppression`) — so CI fails on undocumented exceptions exactly
//! like it fails on violations.
//!
//! Placement: a *trailing* comment suppresses its own line; a
//! *standalone* comment suppresses the next line that carries code.

use crate::lexer::{Comment, Lexed};
use crate::rules::{self, Finding};

/// One parsed, well-formed suppression.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Line of the `wf-lint: allow` comment itself.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
    pub rule: String,
    pub reason: String,
}

/// Extracts suppressions from a file's comments. Malformed allows come
/// back as `bad-suppression` findings instead.
pub fn parse(path: &str, lexed: &Lexed) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = find_marker(&c.text) else {
            continue;
        };
        match parse_allow(rest) {
            Ok((rule, reason)) => {
                if !rules::is_known(&rule) {
                    bad.push(Finding {
                        file: path.to_string(),
                        line: c.line,
                        rule: rules::BAD_SUPPRESSION.to_string(),
                        message: format!("`wf-lint: allow({rule})` names an unknown rule"),
                    });
                } else if reason.trim().is_empty() {
                    bad.push(Finding {
                        file: path.to_string(),
                        line: c.line,
                        rule: rules::BAD_SUPPRESSION.to_string(),
                        message: format!(
                            "`wf-lint: allow({rule})` has no reason — every carve-out \
                             must say why (reason = \"...\")"
                        ),
                    });
                } else {
                    sups.push(Suppression {
                        line: c.line,
                        target_line: target_line(c, lexed),
                        rule,
                        reason,
                    });
                }
            }
            Err(why) => bad.push(Finding {
                file: path.to_string(),
                line: c.line,
                rule: rules::BAD_SUPPRESSION.to_string(),
                message: format!("malformed `wf-lint:` comment: {why}"),
            }),
        }
    }
    (sups, bad)
}

/// Returns the text after `wf-lint:` if the comment *is* a marker
/// comment. The marker must open the comment (`// wf-lint: …`): doc
/// comments quoting the syntax (`///`/`//!` text starts with `/` or
/// `!`) and prose mentioning it mid-sentence are not suppressions.
fn find_marker(text: &str) -> Option<&str> {
    text.trim_start().strip_prefix("wf-lint:").map(str::trim)
}

/// Parses `allow(rule, reason = "...")` → (rule, reason).
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let body = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .ok_or_else(|| "expected `allow(<rule>, reason = \"...\")`".to_string())?;
    let close = body
        .rfind(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;
    let body = &body[..close];
    let (rule, tail) = match body.split_once(',') {
        Some((r, t)) => (r.trim().to_string(), t.trim()),
        None => (body.trim().to_string(), ""),
    };
    if rule.is_empty() {
        return Err("empty rule name".to_string());
    }
    if tail.is_empty() {
        return Ok((rule, String::new()));
    }
    let value = tail
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "expected `reason = \"...\"` after the rule name".to_string())?;
    let reason = value
        .strip_prefix('"')
        .and_then(|v| v.rfind('"').map(|i| v[..i].to_string()))
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    Ok((rule, reason))
}

/// The line a suppression applies to: its own line for trailing
/// comments, else the next line that carries a code token.
fn target_line(c: &Comment, lexed: &Lexed) -> u32 {
    if c.trailing {
        return c.line;
    }
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l > c.line)
        .unwrap_or(c.line + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let l = lex(
            "// wf-lint: allow(lock-unwrap, reason = \"poison cannot escape this scope\")\n\
             let g = m.lock().unwrap();\n",
        );
        let (sups, bad) = parse("f.rs", &l);
        assert!(bad.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].target_line, 2);
        assert_eq!(sups[0].rule, "lock-unwrap");
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let l = lex("let g = m.lock().unwrap(); // wf-lint: allow(lock-unwrap, reason = \"x\")\n");
        let (sups, _) = parse("f.rs", &l);
        assert_eq!(sups[0].target_line, 1);
    }

    #[test]
    fn reasonless_allow_is_a_finding() {
        let l = lex("// wf-lint: allow(lock-unwrap)\nlet g = m.lock().unwrap();\n");
        let (sups, bad) = parse("f.rs", &l);
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, rules::BAD_SUPPRESSION);
        assert_eq!(bad[0].line, 1);
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let l = lex("// wf-lint: allow(not-a-rule, reason = \"whatever\")\nlet x = 1;\n");
        let (_, bad) = parse("f.rs", &l);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn empty_reason_is_a_finding() {
        let l = lex("// wf-lint: allow(lock-unwrap, reason = \"  \")\nlet x = 1;\n");
        let (sups, bad) = parse("f.rs", &l);
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
    }
}
