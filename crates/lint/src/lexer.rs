//! A string/char/comment/raw-string-aware Rust lexer.
//!
//! `wf-lint` matches *token sequences*, not text: a mention of
//! `Instant::now` inside a string literal, a doc comment, or a nested
//! block comment must never fire a rule. This lexer produces exactly the
//! token stream the rules need — identifiers, single-character
//! punctuation, and opaque literal tokens — plus the comment stream the
//! suppression parser consumes. It handles every literal form that can
//! hide code-looking text:
//!
//! - line comments (`//`, `///`, `//!`) and *nested* block comments,
//! - string literals with escapes, byte strings, C strings,
//! - raw strings `r"…"` / `r#"…"#` / … with any number of `#`s,
//! - char literals vs. lifetimes (`'a'` vs `'a`),
//! - raw identifiers (`r#match`).
//!
//! It is intentionally not a full Rust lexer: numbers are consumed as
//! opaque blobs and multi-character operators arrive as single-character
//! punctuation tokens (`::` is `:` `:`), which is all sequence matching
//! requires and keeps the lexer dependency-free and auditable.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_` and raw identifiers).
    Ident,
    /// A single punctuation character.
    Punct,
    /// String / raw-string / byte-string literal (opaque).
    Str,
    /// Char literal (opaque).
    Char,
    /// Numeric literal (opaque).
    Num,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment, kept for the suppression parser.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Interior text (delimiters stripped, nested comments kept raw).
    pub text: String,
    /// 1-based line the comment *starts* on.
    pub line: u32,
    /// True if a code token precedes the comment on its start line
    /// (a trailing comment annotates its own line, a standalone comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens + comments. Never fails: unterminated
/// literals or comments are consumed to end-of-file, which is the
/// forgiving behavior a linter wants on mid-edit files.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether a code token has been emitted on the current line; decides
    // `Comment::trailing`.
    let mut code_on_line = false;

    macro_rules! bump_lines {
        ($text:expr) => {
            line += $text.iter().filter(|&&c| c == '\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: b[start..j].iter().collect(),
                    line,
                    trailing: code_on_line,
                });
                i = j; // the newline itself is handled above
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == '\n' {
                            line += 1;
                            code_on_line = false;
                        }
                        j += 1;
                    }
                }
                let end = if depth == 0 { j - 2 } else { j };
                out.comments.push(Comment {
                    text: b[start..end].iter().collect(),
                    line: start_line,
                    trailing: code_on_line,
                });
                i = j;
            }
            '"' => {
                let (text, j) = scan_string(&b, i);
                bump_lines!(b[i..j]);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                code_on_line = true;
                i = j;
            }
            '\'' => {
                // Char literal or lifetime. `'a'` / `'\n'` are chars;
                // `'a` followed by anything but `'` is a lifetime.
                if i + 1 < b.len() && b[i + 1] == '\\' {
                    let j = scan_char_tail(&b, i + 2);
                    out.tokens.push(Tok {
                        kind: TokKind::Char,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    code_on_line = true;
                    i = j;
                } else if i + 2 < b.len() && b[i + 2] == '\'' && b[i + 1] != '\'' {
                    out.tokens.push(Tok {
                        kind: TokKind::Char,
                        text: b[i..i + 3].iter().collect(),
                        line,
                    });
                    code_on_line = true;
                    i += 3;
                } else if i + 1 < b.len() && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i + 1..j].iter().collect(),
                        line,
                    });
                    code_on_line = true;
                    i = j;
                } else {
                    // Stray quote; emit as punctuation and move on.
                    out.tokens.push(Tok {
                        kind: TokKind::Punct,
                        text: "'".into(),
                        line,
                    });
                    code_on_line = true;
                    i += 1;
                }
            }
            'r' | 'b' | 'c' if starts_raw_or_byte_literal(&b, i) => {
                let (kind, text, j) = scan_prefixed_literal(&b, i);
                bump_lines!(b[i..j]);
                out.tokens.push(Tok { kind, text, line });
                code_on_line = true;
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                code_on_line = true;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let j = scan_number(&b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line,
                });
                code_on_line = true;
                i = j;
            }
            c => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                code_on_line = true;
                i += 1;
            }
        }
    }
    out
}

/// True if position `i` starts `r"…"`, `r#…`, `b"…"`, `br#"…"`, `b'…'`,
/// or `c"…"` — any literal with a letter prefix. A bare `r`/`b`/`c`
/// identifier (or raw identifier `r#match`) returns false here and is
/// handled by the identifier arm / raw-ident detection below.
fn starts_raw_or_byte_literal(b: &[char], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (`br`, `cr`).
    while j < b.len() && (b[j] == 'r' || b[j] == 'b' || b[j] == 'c') && j - i < 2 {
        j += 1;
    }
    let mut k = j;
    while k < b.len() && b[k] == '#' {
        k += 1;
    }
    if k < b.len() && b[k] == '"' {
        // `r#ident` is a raw identifier, not a raw string — but then
        // there is no quote right after the hashes, so reaching a quote
        // here really is a (raw) string.
        return true;
    }
    // Byte char `b'x'`.
    b[i] == 'b' && j == i + 1 && j < b.len() && b[j] == '\''
}

/// Scans a literal that starts with `r`/`b`/`c` prefixes at `i`.
/// Returns (kind, text, end-index).
fn scan_prefixed_literal(b: &[char], i: usize) -> (TokKind, String, usize) {
    let mut j = i;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b' || b[j] == 'c') && j - i < 2 {
        j += 1;
    }
    if j < b.len() && b[j] == '\'' {
        // Byte char `b'x'` or `b'\n'`.
        let k = if j + 1 < b.len() && b[j + 1] == '\\' {
            scan_char_tail(b, j + 2)
        } else if j + 2 < b.len() && b[j + 2] == '\'' {
            j + 3
        } else {
            j + 2
        };
        return (TokKind::Char, b[i..k].iter().collect(), k);
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == '"');
    if hashes == 0 {
        // Escapes are only meaningful in non-raw strings (`b"…"`, `c"…"`);
        // `r"…"` has none, but it also cannot *contain* `"` at all, so
        // treating a backslash-quote as an escape never misparses it.
        let has_r = b[i..j].contains(&'r');
        if has_r {
            let mut k = j + 1;
            while k < b.len() && b[k] != '"' {
                k += 1;
            }
            let end = (k + 1).min(b.len());
            return (TokKind::Str, b[i..end].iter().collect(), end);
        }
        let (_, k) = scan_string(b, j);
        return (TokKind::Str, b[i..k].iter().collect(), k);
    }
    // Raw string with hashes: ends at `"` followed by `hashes` `#`s.
    let mut k = j + 1;
    while k < b.len() {
        if b[k] == '"' {
            let mut h = 0usize;
            while k + 1 + h < b.len() && b[k + 1 + h] == '#' && h < hashes {
                h += 1;
            }
            if h == hashes {
                let end = k + 1 + hashes;
                return (TokKind::Str, b[i..end].iter().collect(), end);
            }
        }
        k += 1;
    }
    (TokKind::Str, b[i..].iter().collect(), b.len())
}

/// Scans a `"…"` string starting at the opening quote index `i`.
/// Returns (text-with-quotes, end-index).
fn scan_string(b: &[char], i: usize) -> (String, usize) {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return (b[i..j + 1].iter().collect(), j + 1),
            _ => j += 1,
        }
    }
    (b[i..].iter().collect(), b.len())
}

/// Scans the tail of an escaped char literal (`'\…'`), starting just
/// after the backslash's escaped character position. Returns the index
/// one past the closing quote.
fn scan_char_tail(b: &[char], mut j: usize) -> usize {
    while j < b.len() && b[j] != '\'' {
        if b[j] == '\\' {
            j += 1;
        }
        j += 1;
    }
    (j + 1).min(b.len())
}

/// Scans a numeric literal (decimal, hex/octal/binary, float with
/// exponent, type suffix). Opaque: rules never look inside.
fn scan_number(b: &[char], i: usize) -> usize {
    let mut j = i;
    if b[i] == '0' && i + 1 < b.len() && matches!(b[i + 1], 'x' | 'o' | 'b') {
        j = i + 2;
        while j < b.len() && (b[j].is_ascii_hexdigit() || b[j] == '_') {
            j += 1;
        }
    } else {
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
            j += 1;
        }
        // Fractional part only when followed by a digit (so `1.max(2)`
        // keeps `max` as its own identifier token).
        if j + 1 < b.len() && b[j] == '.' && b[j + 1].is_ascii_digit() {
            j += 1;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        }
        if j < b.len() && (b[j] == 'e' || b[j] == 'E') {
            let mut k = j + 1;
            if k < b.len() && (b[k] == '+' || b[k] == '-') {
                k += 1;
            }
            if k < b.len() && b[k].is_ascii_digit() {
                j = k;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
            }
        }
    }
    // Type suffix (`u8`, `f64`, `usize`).
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_code() {
        let l = lex(r#"let x = "Instant::now()"; call();"#);
        assert!(l.tokens.iter().all(|t| !t.is_ident("Instant")));
        assert!(l.tokens.iter().any(|t| t.is_ident("call")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " inside"#; after();"###;
        let l = lex(src);
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("quote"));
    }

    #[test]
    fn slash_slash_inside_string_is_not_a_comment() {
        let l = lex(r#"let url = "https://example"; next();"#);
        assert!(l.comments.is_empty());
        assert!(l.tokens.iter().any(|t| t.is_ident("next")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(l.tokens.iter().all(|t| !t.is_ident("inner")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let l = lex("let a = 1; // trailing\n// standalone\nlet b = 2;\n");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].line, 1);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let l = lex("let s = \"a\nb\nc\";\nlet t = 1;\n");
        let t = l.tokens.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 4);
    }

    #[test]
    fn number_does_not_swallow_method_call() {
        assert!(idents("let x = 1.max(2);").contains(&"max".to_string()));
        // But real floats stay single tokens.
        let l = lex("let y = 1.5e-3f64;");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Num).count(),
            1
        );
    }

    #[test]
    fn byte_and_cstrings() {
        let l = lex(r#"let a = b"bytes"; let b2 = c"cstr"; let c3 = b'\n'; done();"#);
        assert!(l.tokens.iter().any(|t| t.is_ident("done")));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            2
        );
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        // `r#match` lexes as ident(s), not as a raw string.
        let l = lex("let r#match = 1; use_it(r#match);");
        assert!(l.tokens.iter().all(|t| t.kind != TokKind::Str));
    }
}
