//! `wf-lint` — determinism & robustness static analysis for Wayfinder.
//!
//! The reproduction's value rests on a contract the compiler cannot
//! see: bit-identical sessions across worker counts, backends, and
//! interrupt/resume (docs/DETERMINISM.md). Proptests catch violations
//! *after* they land; this crate catches them at merge time. It lexes
//! every non-vendor `src/**/*.rs` in the workspace (string-, char-,
//! comment-, and raw-string-aware — see [`lexer`]) and runs a rule
//! engine ([`rules`]) over the token streams: five determinism rules
//! (wall-clock reads, unordered hash-container iteration, unseeded
//! RNGs, thread-id dependence, host-env reads) and three robustness
//! rules (`.lock().unwrap()`, `process::exit` in libraries, swallowed
//! io errors).
//!
//! Every carve-out must be documented in place with
//! `// wf-lint: allow(<rule>, reason = "...")` ([`suppress`]); an allow
//! without a reason is itself a finding. File-level configuration lives
//! in `wf-lint.toml` ([`config`]). Output is human-readable or stable
//! JSON, and both the standalone `wf-lint` binary and `wfctl lint` exit
//! nonzero on any unsuppressed finding — which is what the CI
//! `lint-pass` leg enforces.
//!
//! ```
//! use wf_lint::{lint_source, Config};
//!
//! let cfg = Config::default();
//! let out = lint_source(
//!     "crates/x/src/lib.rs",
//!     "fn f() { let t = std::time::Instant::now(); }",
//!     &cfg,
//! );
//! assert_eq!(out.findings.len(), 1);
//! assert_eq!(out.findings[0].rule, "wall-clock-in-det-path");
//! ```

pub mod cli;
pub mod config;
pub mod lexer;
pub mod rules;
pub mod suppress;

pub use config::Config;
pub use rules::{Finding, RuleInfo, RULES};
pub use suppress::Suppression;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A suppressed finding, kept for the report (`--format json` lists
/// every carve-out with its reason).
#[derive(Clone, Debug)]
pub struct Suppressed {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// Result of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileOutcome {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
}

/// Result of linting a workspace.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// True when no unsuppressed finding remains.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints one source file given as a string. `rel_path` shows up in
/// findings and decides the lib/bin distinction; it does not need to
/// exist on disk (fixtures and benches feed synthetic sources).
pub fn lint_source(rel_path: &str, source: &str, cfg: &Config) -> FileOutcome {
    let lexed = lexer::lex(source);
    let (sups, mut findings) = suppress::parse(rel_path, &lexed);
    findings.extend(rules::scan(rel_path, &lexed, cfg));
    let mut out = FileOutcome::default();
    for f in findings {
        // `bad-suppression` is the policy rule itself — never suppressible.
        let sup = (f.rule != rules::BAD_SUPPRESSION)
            .then(|| {
                sups.iter()
                    .find(|s| s.rule == f.rule && s.target_line == f.line)
            })
            .flatten();
        match sup {
            Some(s) => out.suppressed.push(Suppressed {
                file: f.file,
                line: f.line,
                rule: f.rule,
                reason: s.reason.clone(),
            }),
            None => out.findings.push(f),
        }
    }
    out
}

/// Lints the workspace rooted at `root`: every `*.rs` under a `src`
/// directory inside the configured scan roots, excluding the configured
/// prefixes (vendor and target by default). Deterministic: files are
/// visited in sorted order and findings are sorted (file, line, rule).
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    for scan_root in &cfg.roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(root, &dir, cfg, &mut files)?;
        }
    }
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let text = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let outcome = lint_source(&rel_str, &text, cfg);
        report.findings.extend(outcome.findings);
        report.suppressed.extend(outcome.suppressed);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Loads `wf-lint.toml` from `root` when present, else the defaults.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("wf-lint.toml");
    match fs::read_to_string(&path) {
        Ok(text) => config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Config::default()),
    }
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if cfg.exclude.iter().any(|p| rel_str.starts_with(p.as_str())) {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") && rel_str.split('/').any(|c| c == "src") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Renders the human-readable report (rustc-style).
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "warning[{}]: {}\n  --> {}:{}\n",
            f.rule, f.message, f.file, f.line
        ));
    }
    out.push_str(&format!(
        "{} unsuppressed finding{} ({} suppressed carve-out{}) across {} files\n",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressed.len(),
        if report.suppressed.len() == 1 {
            ""
        } else {
            "s"
        },
        report.files_scanned,
    ));
    out
}

/// Renders the stable JSON report: versioned, keys in fixed order,
/// findings and suppressions sorted — CI uploads this as an artifact
/// and scripts may diff it across runs.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"version\":1,");
    out.push_str(&format!("\"files_scanned\":{},", report.files_scanned));
    out.push_str(&format!("\"findings\":{},", report.findings.len()));
    out.push_str(&format!("\"suppressed\":{},", report.suppressed.len()));
    out.push_str("\"items\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.file),
            f.line,
            json_str(&f.rule),
            json_str(&f.message)
        ));
    }
    out.push_str("],\"allows\":[");
    for (i, s) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"reason\":{}}}",
            json_str(&s.file),
            s.line,
            json_str(&s.rule),
            json_str(&s.reason)
        ));
    }
    out.push_str("]}");
    out
}

/// Escape-correct JSON string encoding (mirrors the store's encoder;
/// kept local so the analyzer stays dependency-free).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_suppresses() {
        let src = "fn f() {\n // wf-lint: allow(wall-clock-in-det-path, reason = \"host \
                   I/O timeout, outside the contract\")\n let t = Instant::now();\n}\n";
        let out = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].rule, "wall-clock-in-det-path");
        assert!(out.suppressed[0].reason.contains("host I/O"));
    }

    #[test]
    fn suppression_of_wrong_rule_does_not_suppress() {
        let src = "fn f() {\n // wf-lint: allow(lock-unwrap, reason = \"not the right \
                   rule\")\n let t = Instant::now();\n}\n";
        let out = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert_eq!(out.findings.len(), 1);
    }

    #[test]
    fn reasonless_allow_is_never_suppressible() {
        let src = "fn f() {\n // wf-lint: allow(wall-clock-in-det-path)\n let t = \
                   Instant::now();\n}\n";
        let out = lint_source("crates/x/src/lib.rs", src, &Config::default());
        // Both the bad suppression AND the unsuppressed original finding.
        assert_eq!(out.findings.len(), 2);
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == rules::BAD_SUPPRESSION));
        assert!(out
            .findings
            .iter()
            .any(|f| f.rule == "wall-clock-in-det-path"));
    }

    #[test]
    fn json_report_is_stable_and_escaped() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let out = lint_source("crates/x/src/lib.rs", src, &Config::default());
        let report = Report {
            files_scanned: 1,
            findings: out.findings,
            suppressed: out.suppressed,
        };
        let a = render_json(&report);
        let b = render_json(&report);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"version\":1,"));
        assert!(a.contains("\"rule\":\"wall-clock-in-det-path\""));
    }
}
