//! The Fig. 5 cross-similarity matrix.
//!
//! "We treat the importance scores as vectors and compute the
//! Euclidean-norm distance between them": each application's random-forest
//! feature-importance vector is L2-normalized, and the similarity of two
//! applications is the cosine of their normalized vectors (for unit
//! vectors, cosine and Euclidean distance are monotone transforms of each
//! other: `‖a − b‖² = 2(1 − cosθ)`). A value close to 1 means "the
//! performance of the applications is impacted by similar parameters".

use wf_configspace::distance::cosine_similarity;

/// Builds the symmetric cross-similarity matrix of importance vectors.
///
/// # Panics
///
/// Panics if the vectors have differing lengths.
pub fn cross_similarity(importances: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = importances.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let s = cosine_similarity(&importances[i], &importances[j]);
            out[i][j] = s;
            out[j][i] = s;
        }
    }
    out
}

/// Renders the matrix with row/column labels (the Fig. 5 layout).
pub fn render(labels: &[&str], matrix: &[Vec<f64>]) -> String {
    assert_eq!(labels.len(), matrix.len());
    let mut out = String::new();
    out.push_str(&format!("{:>8}", ""));
    for l in labels {
        out.push_str(&format!("{l:>8}"));
    }
    out.push('\n');
    for (i, l) in labels.iter().enumerate() {
        out.push_str(&format!("{l:>8}"));
        for v in &matrix[i] {
            out.push_str(&format!("{v:>8.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_is_one() {
        let m = cross_similarity(&[vec![1.0, 2.0], vec![0.5, 0.1]]);
        assert!((m[0][0] - 1.0).abs() < 1e-12);
        assert!((m[1][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric() {
        let m = cross_similarity(&[vec![1.0, 0.0], vec![0.7, 0.7], vec![0.0, 1.0]]);
        for (i, row) in m.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn orthogonal_importances_score_zero() {
        let m = cross_similarity(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(m[0][1].abs() < 1e-12);
    }

    #[test]
    fn render_includes_labels_and_values() {
        let m = cross_similarity(&[vec![1.0, 0.0], vec![1.0, 0.0]]);
        let text = render(&["nginx", "redis"], &m);
        assert!(text.contains("nginx"));
        assert!(text.contains("1.000"));
    }
}
