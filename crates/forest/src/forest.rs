//! Random forests (Breiman 2001) — the feature-importance algorithm the
//! paper uses to build the Fig. 5 cross-similarity matrix.

use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forest parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growing parameters.
    pub tree: TreeConfig,
    /// Seed for bootstrapping and feature bagging.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 32,
            tree: TreeConfig::default(),
            seed: 0xf0,
        }
    }
}

/// A fitted random-forest regressor.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fits the forest on bootstrap resamples.
    ///
    /// # Panics
    ///
    /// Panics on empty data.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &ForestConfig) -> Self {
        assert!(!x.is_empty() && x.len() == y.len());
        let n = x.len();
        let n_features = x[0].len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let trees = (0..cfg.n_trees)
            .map(|_| {
                // Bootstrap resample by index so x and y stay aligned.
                let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                let bx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
                let by: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
                RegressionTree::fit(&bx, &by, &cfg.tree, &mut rng)
            })
            .collect();
        RandomForest { trees, n_features }
    }

    /// Mean prediction over all trees.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(sample)).sum::<f64>() / self.trees.len() as f64
    }

    /// Normalized impurity-decrease feature importances (sums to 1 when
    /// any split happened; all-zero otherwise).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for t in &self.trees {
            t.accumulate_importance(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..5).map(|_| rng.random::<f64>()).collect())
            .collect();
        // y depends on features 0 (strongly) and 3 (weakly).
        let y: Vec<f64> = x.iter().map(|r| 8.0 * r[0] + 2.0 * r[3]).collect();
        (x, y)
    }

    #[test]
    fn forest_beats_mean_predictor() {
        let (x, y) = dataset(400, 1);
        let f = RandomForest::fit(&x, &y, &ForestConfig::default());
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let (mut se_forest, mut se_mean) = (0.0, 0.0);
        let (xt, yt) = dataset(100, 2);
        for (row, target) in xt.iter().zip(yt.iter()) {
            se_forest += (f.predict(row) - target).powi(2);
            se_mean += (mean - target).powi(2);
        }
        assert!(
            se_forest < se_mean * 0.3,
            "forest {se_forest} vs mean {se_mean}"
        );
    }

    #[test]
    fn importances_are_normalized_and_ordered() {
        let (x, y) = dataset(400, 3);
        let f = RandomForest::fit(&x, &y, &ForestConfig::default());
        let imp = f.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[3], "strong feature outranks weak: {imp:?}");
        assert!(imp[3] > imp[1].max(imp[2]).max(imp[4]), "{imp:?}");
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (x, y) = dataset(100, 4);
        let a = RandomForest::fit(&x, &y, &ForestConfig::default());
        let b = RandomForest::fit(&x, &y, &ForestConfig::default());
        assert_eq!(a.feature_importances(), b.feature_importances());
    }
}
