//! CART regression trees (the base learner of Breiman's random forest,
//! which the paper uses as its feature-importance algorithm for Fig. 5).

use rand::rngs::StdRng;
use rand::Rng;

/// Tree-growing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Fraction of features considered at each split (feature bagging).
    pub feature_subsample: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
            feature_subsample: 0.6,
        }
    }
}

/// A node of the regression tree.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Variance reduction achieved by this split, weighted by the
        /// number of samples it acted on (the impurity-decrease feature
        /// importance of Breiman 2001).
        importance: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fits a tree on row-major samples.
    ///
    /// # Panics
    ///
    /// Panics on empty data or inconsistent row widths.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &TreeConfig, rng: &mut StdRng) -> Self {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        let n_features = x[0].len();
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features,
        };
        let indices: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, indices, 0, cfg, rng);
        tree
    }

    /// Predicts one sample.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        assert_eq!(sample.len(), self.n_features, "feature width mismatch");
        let mut at = 0;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    at = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Adds this tree's impurity-decrease importances into `out`.
    pub fn accumulate_importance(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.n_features);
        for node in &self.nodes {
            if let Node::Split {
                feature,
                importance,
                ..
            } = node
            {
                out[*feature] += importance;
            }
        }
    }

    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        indices: Vec<usize>,
        depth: usize,
        cfg: &TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
        if depth >= cfg.max_depth || indices.len() < cfg.min_samples_split {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let var = variance(y, &indices);
        if var < 1e-12 {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }

        // Sample the feature subset for this split.
        let k = ((self.n_features as f64 * cfg.feature_subsample).ceil() as usize)
            .clamp(1, self.n_features);
        let mut features: Vec<usize> = (0..self.n_features).collect();
        for i in 0..k {
            let j = rng.random_range(i..features.len());
            features.swap(i, j);
        }
        features.truncate(k);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for &f in &features {
            if let Some((threshold, gain)) = best_split(x, y, &indices, f, var) {
                if best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                    best = Some((f, threshold, gain));
                }
            }
        }
        let Some((feature, threshold, gain)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };

        let (li, ri): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        // Reserve the split slot, grow children, then patch.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        let importance = gain * indices.len() as f64;
        let left = self.grow(x, y, li, depth + 1, cfg, rng);
        let right = self.grow(x, y, ri, depth + 1, cfg, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            importance,
            left,
            right,
        };
        slot
    }
}

/// The best threshold for one feature: maximizes variance reduction.
fn best_split(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    feature: usize,
    parent_var: f64,
) -> Option<(f64, f64)> {
    let mut pairs: Vec<(f64, f64)> = indices.iter().map(|&i| (x[i][feature], y[i])).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let n = pairs.len();
    if pairs[0].0 == pairs[n - 1].0 {
        return None; // constant feature
    }
    // Prefix sums for O(n) variance-reduction scanning.
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let total_sum: f64 = pairs.iter().map(|(_, y)| y).sum();
    let total_sq: f64 = pairs.iter().map(|(_, y)| y * y).sum();
    let mut best: Option<(f64, f64)> = None;
    for i in 0..n - 1 {
        sum += pairs[i].1;
        sum_sq += pairs[i].1 * pairs[i].1;
        if pairs[i].0 == pairs[i + 1].0 {
            continue; // cannot split between equal values
        }
        let nl = (i + 1) as f64;
        let nr = (n - i - 1) as f64;
        let var_l = (sum_sq / nl) - (sum / nl).powi(2);
        let var_r = ((total_sq - sum_sq) / nr) - ((total_sum - sum) / nr).powi(2);
        let gain = parent_var - (nl * var_l + nr * var_r) / (nl + nr);
        if gain > 0.0 && best.map(|(_, g)| gain > g).unwrap_or(true) {
            let threshold = (pairs[i].0 + pairs[i + 1].0) / 2.0;
            best = Some((threshold, gain));
        }
    }
    best
}

fn variance(y: &[f64], indices: &[usize]) -> f64 {
    let n = indices.len() as f64;
    let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / n;
    indices.iter().map(|&i| (y[i] - mean).powi(2)).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn fits_a_step_function() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let t = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng());
        assert!((t.predict(&[10.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[90.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn importance_lands_on_the_predictive_feature() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![r.random::<f64>(), r.random::<f64>(), r.random::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|row| 10.0 * row[1]).collect();
        let cfg = TreeConfig {
            feature_subsample: 1.0,
            ..TreeConfig::default()
        };
        let t = RegressionTree::fit(&x, &y, &cfg, &mut r);
        let mut imp = vec![0.0; 3];
        t.accumulate_importance(&mut imp);
        assert!(imp[1] > imp[0] * 10.0 && imp[1] > imp[2] * 10.0, "{imp:?}");
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 20];
        let t = RegressionTree::fit(&x, &y, &TreeConfig::default(), &mut rng());
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.predict(&[5.0]), 3.0);
    }

    #[test]
    fn respects_max_depth() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..256).map(|_| vec![r.random::<f64>()]).collect();
        let y: Vec<f64> = x.iter().map(|row| row[0]).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let t = RegressionTree::fit(&x, &y, &cfg, &mut r);
        // Depth 2 => at most 3 splits + 4 leaves.
        assert!(t.nodes.len() <= 7, "{}", t.nodes.len());
    }
}
