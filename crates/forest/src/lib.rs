//! `wf-forest`: random-forest feature importance (Fig. 5).
//!
//! §3.3 builds a cross-similarity matrix over applications by collecting
//! random configurations per application, fitting a feature-importance
//! algorithm (Breiman's random forest), and comparing the importance
//! vectors. This crate provides the from-scratch forest:
//!
//! * [`tree`] — CART regression trees with variance-reduction splits and
//!   impurity-decrease importances;
//! * [`forest`] — bootstrapped, feature-bagged forests;
//! * [`similarity`] — the Fig. 5 matrix over importance vectors.

pub mod forest;
pub mod similarity;
pub mod tree;

pub use forest::{ForestConfig, RandomForest};
pub use similarity::{cross_similarity, render};
pub use tree::{RegressionTree, TreeConfig};
