//! `wf-bench`: the regeneration harness.
//!
//! One `run_*` function per table/figure of the paper's evaluation; each
//! prints the same rows/series the paper reports. The functions are
//! invoked both by the `src/bin/` binaries (`cargo run -p wf-bench --bin
//! fig06_search_evolution`) and by the `harness = false` bench targets
//! (`cargo bench --workspace` regenerates everything).
//!
//! Budgets default to the reduced scale; set `WF_FULL=1` for the paper's
//! budgets (see `wayfinder_core::Scale`).

pub mod perf;

use wayfinder_core::experiments as exp;
use wayfinder_core::report::{render_multi_series, Table};
use wayfinder_core::Scale;

/// Default seed used by all regeneration targets.
pub const SEED: u64 = 0x5eed;

fn scale_banner(scale: &Scale) -> String {
    format!(
        "# scale: runs={} search_iterations={} (WF_FULL=1 for the paper's budgets)\n",
        scale.runs, scale.search_iterations
    )
}

/// Fig. 1: Linux compile-time option growth.
pub fn run_fig01() {
    println!("== Figure 1: Linux Kconfig compile-time options over time ==");
    let mut t = Table::new(&["Version", "Compile-time options"]);
    for row in exp::fig1() {
        t.row(&[row.version.to_string(), row.options.to_string()]);
    }
    print!("{}", t.render());
}

/// Table 1: the Linux 6.0 configuration census.
pub fn run_table1() {
    println!("== Table 1: configuration space for Linux 6.0 ==");
    let c = exp::table1();
    let mut t = Table::new(&[
        "bool", "tristate", "string", "hex", "int", "boot", "runtime",
    ]);
    t.row(&[
        c.bool_.to_string(),
        c.tristate.to_string(),
        c.string.to_string(),
        c.hex.to_string(),
        c.int.to_string(),
        c.boot.to_string(),
        c.runtime.to_string(),
    ]);
    print!("{}", t.render());
    println!("compile-time total: {}", c.compile_total());
}

/// Fig. 2: Nginx throughput for random configurations.
pub fn run_fig02() {
    let scale = Scale::from_env();
    println!(
        "== Figure 2: Nginx throughput for {} random configurations ==",
        scale.fig2_samples
    );
    print!("{}", scale_banner(&scale));
    let r = exp::fig2(&scale, SEED);
    println!("# config#\treq/s (ascending)");
    for (i, v) in r.sorted_throughput.iter().enumerate() {
        println!("{i}\t{v:.0}");
    }
    println!("default configuration: {:.0} req/s", r.default_throughput);
    println!(
        "best random: {:.0} req/s ({:+.1}% vs default)",
        r.sorted_throughput.last().unwrap(),
        (r.best_ratio - 1.0) * 100.0
    );
    println!(
        "below default: {:.0}% of configurations (paper: 64%)",
        r.share_below_default * 100.0
    );
    println!(
        "crashed and re-generated: {} (~{:.0}% of raw samples; paper: ~1/3)",
        r.crashes_discarded,
        100.0 * r.crashes_discarded as f64
            / (r.crashes_discarded + r.sorted_throughput.len()) as f64
    );
}

/// Fig. 5: the cross-application similarity matrix.
pub fn run_fig05() {
    let scale = Scale::from_env();
    println!("== Figure 5: cross-similarity of parameter-importance vectors ==");
    print!("{}", scale_banner(&scale));
    let r = exp::fig5(&scale, SEED);
    let labels: Vec<&str> = r.apps.iter().map(|a| a.label()).collect();
    print!("{}", wf_forest::render(&labels, &r.matrix));
}

/// Fig. 6: search evolution for all four applications.
pub fn run_fig06() {
    let scale = Scale::from_env();
    println!("== Figure 6: search evolution (Random vs DeepTune vs DeepTune+TL) ==");
    print!("{}", scale_banner(&scale));
    for result in exp::fig6(&scale, SEED) {
        println!("\n-- {} ({}) --", result.app, result.unit);
        let labels: Vec<String> = result.curves.iter().map(|c| c.label.clone()).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        println!("# performance (smoothed mean of {} runs)", scale.runs);
        let perfs: Vec<_> = result.curves.iter().map(|c| c.perf.clone()).collect();
        print!("{}", render_multi_series(&label_refs, &perfs));
        println!("# crash rate (rolling)");
        let crashes: Vec<_> = result.curves.iter().map(|c| c.crash.clone()).collect();
        print!("{}", render_multi_series(&label_refs, &crashes));
    }
}

/// Table 2: best configurations found.
pub fn run_table2() {
    let scale = Scale::from_env();
    println!(
        "== Table 2: best configurations after {} iterations ==",
        scale.search_iterations
    );
    print!("{}", scale_banner(&scale));
    let mut t = Table::new(&[
        "App",
        "Baseline",
        "Wayfinder",
        "Unit",
        "Relative",
        "Time-to-find (s)",
        "With TL (s)",
    ]);
    for row in exp::table2(&scale, SEED) {
        let fmt_t = |v: Option<f64>| v.map(|s| format!("{s:.0}")).unwrap_or_else(|| "-".into());
        t.row(&[
            row.app.to_string(),
            format!("{:.0}", row.baseline),
            format!("{:.0}", row.wayfinder),
            row.unit.to_string(),
            format!("{:.2}x", row.relative),
            fmt_t(row.time_to_find_no_tl_s),
            fmt_t(row.time_to_find_tl_s),
        ]);
    }
    print!("{}", t.render());
}

/// Fig. 7: DeepTune vs Unicorn per-iteration cost.
pub fn run_fig07() {
    let scale = Scale::from_env();
    println!("== Figure 7: DeepTune vs Unicorn scalability ==");
    print!("{}", scale_banner(&scale));
    let r = exp::fig7(&scale, SEED);
    println!("# iter\tunicorn_s\tunicorn_bytes\tdeeptune_s\tdeeptune_bytes");
    for (u, d) in r.unicorn.iter().zip(r.deeptune.iter()) {
        println!(
            "{}\t{:.5}\t{}\t{:.5}\t{}",
            u.iteration, u.time_s, u.memory_bytes, d.time_s, d.memory_bytes
        );
    }
    let last = r.unicorn.len() - 1;
    println!(
        "unicorn growth:  time x{:.1}, memory x{:.1} (half -> full run)",
        r.unicorn[last].time_s.max(1e-9) / r.unicorn[last / 2].time_s.max(1e-9),
        r.unicorn[last].memory_bytes as f64 / r.unicorn[last / 2].memory_bytes.max(1) as f64
    );
    println!(
        "deeptune growth: memory x{:.2} (linear replay buffer only)",
        r.deeptune[last].memory_bytes as f64 / r.deeptune[last / 2].memory_bytes.max(1) as f64
    );
}

/// Fig. 8: loop-time breakdown.
pub fn run_fig08() {
    let scale = Scale::from_env();
    println!("== Figure 8: DeepTune update time vs test time ==");
    print!("{}", scale_banner(&scale));
    let r = exp::fig8(&scale, SEED);
    let mut t = Table::new(&["Component", "Seconds"]);
    t.row(&[
        "DeepTune update".into(),
        format!(
            "{:.4} ± {:.4}",
            r.deeptune_update_s, r.deeptune_update_std_s
        ),
    ]);
    for (app, s) in &r.test_time_s {
        t.row(&[format!("{app} test time"), format!("{s:.1}")]);
    }
    print!("{}", t.render());
}

/// Table 3: prediction accuracy.
pub fn run_table3() {
    let scale = Scale::from_env();
    println!("== Table 3: DeepTune prediction accuracy ==");
    print!("{}", scale_banner(&scale));
    let mut t = Table::new(&["App", "Failure acc.", "Run acc.", "Normalized MAE"]);
    for row in exp::table3(&scale, SEED) {
        t.row(&[
            row.app.to_string(),
            format!("{:.3}", row.failure_accuracy),
            format!("{:.3}", row.run_accuracy),
            format!("{:.3}", row.mae_normalized),
        ]);
    }
    print!("{}", t.render());
}

/// Fig. 9: Unikraft comparison.
pub fn run_fig09() {
    let scale = Scale::from_env();
    println!(
        "== Figure 9: Nginx on Unikraft (budget {:.0}s) ==",
        scale.unikraft_budget_s
    );
    print!("{}", scale_banner(&scale));
    let r = exp::fig9(&scale, SEED);
    let labels: Vec<String> = r.curves.iter().map(|c| c.label.clone()).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let perfs: Vec<_> = r.curves.iter().map(|c| c.perf.clone()).collect();
    print!("{}", render_multi_series(&refs, &perfs));
    for (i, label) in labels.iter().enumerate() {
        let hit = r.time_to_3x_s[i]
            .map(|t| format!("{:.0}s ({:.0} min)", t, t / 60.0))
            .unwrap_or_else(|| "never".into());
        println!(
            "{label}: best {:.0} req/s, 3x-default reached: {hit}",
            r.best[i]
        );
    }
}

/// Fig. 10: RISC-V footprint minimization.
pub fn run_fig10() {
    let scale = Scale::from_env();
    println!(
        "== Figure 10: RISC-V Linux memory footprint (budget {:.0}s) ==",
        scale.footprint_budget_s
    );
    print!("{}", scale_banner(&scale));
    let r = exp::fig10(&scale, SEED);
    let labels: Vec<String> = r.curves.iter().map(|c| c.label.clone()).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let series: Vec<_> = r.curves.iter().map(|c| c.perf.clone()).collect();
    println!(
        "# best-so-far footprint (MB); default = {:.0} MB",
        r.default_mb
    );
    print!("{}", render_multi_series(&refs, &series));
    for (i, label) in labels.iter().enumerate() {
        println!(
            "{label}: best {:.1} MB ({:.1}% reduction), crashes {} (late: {})",
            r.best_mb[i],
            (1.0 - r.best_mb[i] / r.default_mb) * 100.0,
            r.crashes[i],
            r.late_crashes[i],
        );
    }
}

/// Fig. 11: throughput-memory co-optimization on Cozart.
pub fn run_fig11() {
    let scale = Scale::from_env();
    println!(
        "== Figure 11: co-optimizing throughput and memory on Cozart (budget {:.0}s) ==",
        scale.cozart_budget_s
    );
    print!("{}", scale_banner(&scale));
    let r = exp::fig11(&scale, SEED);
    println!(
        "Cozart baseline: {:.0} req/s (vs ~{:.0} un-debloated; +{:.0}%)",
        r.baseline_throughput,
        r.undebloated_throughput,
        (r.baseline_throughput / r.undebloated_throughput - 1.0) * 100.0
    );
    let labels: Vec<String> = r.curves.iter().map(|c| c.label.clone()).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    println!("# Eq. 4 score (smoothed)");
    let series: Vec<_> = r.curves.iter().map(|c| c.perf.clone()).collect();
    print!("{}", render_multi_series(&refs, &series));
    println!("# crash rate");
    let crashes: Vec<_> = r.curves.iter().map(|c| c.crash.clone()).collect();
    print!("{}", render_multi_series(&refs, &crashes));
}

/// Table 4: top-5 of the co-optimization.
pub fn run_table4() {
    let scale = Scale::from_env();
    println!("== Table 4: top-5 throughput-memory results on Cozart ==");
    print!("{}", scale_banner(&scale));
    let t4 = exp::table4(&scale, SEED);
    let mut t = Table::new(&["Rank", "Score", "Memory (MB)", "Throughput (req/s)"]);
    for (i, (score, mem, thr)) in t4.rows.iter().enumerate() {
        t.row(&[
            (i + 1).to_string(),
            format!("{score:.2}"),
            format!("{mem:.2}"),
            format!("{thr:.0}"),
        ]);
    }
    t.row(&[
        "Cozart".into(),
        "-".into(),
        format!("{:.2}", t4.baseline.0),
        format!("{:.0}", t4.baseline.1),
    ]);
    print!("{}", t.render());
}
