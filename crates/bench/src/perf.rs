//! The controller-side performance suite behind `wfctl bench`.
//!
//! Wayfinder's core loop is "propose → evaluate → observe" repeated
//! thousands of times; the paper's scalability story (Fig. 7, Fig. 8)
//! only holds if controller overhead stays negligible next to
//! build/boot/bench time. This module times exactly those controller hot
//! paths — batch proposals and observations for all four search
//! algorithms at growing history sizes, DeepTune forward/score batches,
//! session-store appends and replays, and wave-dispatch overhead at
//! several pool widths — using the vendored criterion stand-in, and
//! emits a stable machine-readable JSON document (`BENCH_search.json` at
//! the repo root is the committed baseline) so the repo carries a perf
//! trajectory CI can diff against.
//!
//! Determinism: every fixture configuration draws from a per-candidate
//! RNG seeded through `wf_platform::derive_seed(SEED, index)` — the same
//! SplitMix64 stream-derivation the evaluation pipeline uses — so bench
//! inputs are byte-identical across runs and machines.
//!
//! Cross-machine comparison: absolute ns/iter numbers are
//! machine-dependent, so the suite also measures `calibrate/spin`, a
//! fixed arithmetic workload. `perf_compare` divides every op by its
//! file's calibration time before comparing, turning the regression gate
//! into a machine-relative check.
//!
//! Besides the main suite, [`run_target_suite`] times the same
//! controller hot paths on an arbitrary target's own configuration space
//! and sampling policy (`wfctl bench --target <keyword>`). Compile-stage
//! spaces differ from the main fixture in both width (hundreds of
//! parameters) and sampling (mutate-the-default), so they carry their
//! own committed baselines (`BENCH_unikraft.json`,
//! `BENCH_linux-riscv.json`) which `perf_compare` gates in CI alongside
//! `BENCH_search.json`. Each JSON document carries a suite tag naming
//! the op set it must cover, so a per-target file can never pass the
//! stale-baseline check against the wrong declared set.

use criterion::{black_box, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use wf_configspace::{ConfigSpace, Encoder};
use wf_deeptune::{rank, Dtm, DtmConfig, Prediction, ScoreParams};
use wf_jobfile::{BackendChoice, Budget, Direction, RoutingStrategy};
use wf_kconfig::LinuxVersion;
use wf_nn::Matrix;
use wf_ossim::{App, AppId, SimOs};
use wf_platform::store::JsonValue;
use wf_platform::{
    derive_seed, EventSink, JsonlSink, Record, Router, Session, SessionSpec, WaveStats,
};
use wf_search::{
    BayesOpt, CausalSearch, GridSearch, Observation, RandomSearch, SamplePolicy, SearchAlgorithm,
    SearchContext,
};

/// Base seed for every perf fixture; per-candidate streams derive from it
/// via [`wf_platform::derive_seed`].
pub const SEED: u64 = 0xBE7C;

/// History sizes the search-algorithm ops are measured at.
pub const HISTORY_SIZES: [usize; 3] = [50, 200, 800];

/// History sizes the per-target suite measures at. Compile-stage spaces
/// reach hundreds of parameters (the RISC-V space is ~477), so the
/// per-target baselines stop at 200 where the main suite continues
/// to 800.
pub const TARGET_HISTORY_SIZES: [usize; 2] = [50, 200];

/// Worker-pool widths the wave-dispatch op is measured at.
pub const POOL_WIDTHS: [usize; 3] = [1, 4, 8];

/// Wave width used when feeding and exercising batch ops.
const WAVE: usize = 8;

/// Synthetic source files the `lint/scan_workspace` op analyzes.
const LINT_FILES: usize = 64;

/// One measured operation.
#[derive(Clone, Debug, PartialEq)]
pub struct OpResult {
    /// Operation name, slash-separated (`search/bayes/observe_propose`).
    pub op: String,
    /// Size axis: history length, batch rows, or worker count.
    pub n: u64,
    /// Median wall-clock nanoseconds per iteration (the criterion
    /// stand-in times every iteration individually and reports the
    /// median, so one scheduling spike cannot skew an op).
    pub ns_per_iter: f64,
    /// Minimum wall-clock nanoseconds per iteration — the noise floor.
    /// Contention only ever adds time to deterministic compute, so this
    /// is the statistic the regression gate compares.
    pub min_ns_per_iter: f64,
    /// Iterations per second (1e9 / ns_per_iter).
    pub throughput_per_s: f64,
}

/// Every (op, n) pair the suite declares, in emission order. The smoke
/// test asserts the emitted JSON covers exactly this set; growing the
/// suite means updating the committed baseline.
pub fn declared_ops() -> Vec<(String, u64)> {
    let mut ops = vec![("calibrate/spin".to_string(), 0)];
    for alg in ["random", "grid", "bayes", "causal"] {
        for n in HISTORY_SIZES {
            ops.push((format!("search/{alg}/propose_batch"), n as u64));
            ops.push((format!("search/{alg}/observe_batch"), n as u64));
        }
    }
    ops.push(("search/bayes/observe_propose".to_string(), 800));
    ops.push(("search/bayes/observe_propose_full".to_string(), 800));
    ops.push(("search/causal/observe_propose".to_string(), 800));
    ops.push(("search/causal/observe_propose_scratch".to_string(), 800));
    ops.push(("search/bayes/propose_pool".to_string(), 800));
    ops.push(("search/bayes/propose_pool_scalar".to_string(), 800));
    ops.push(("deeptune/forward_batch".to_string(), 256));
    ops.push(("deeptune/score_batch".to_string(), 256));
    ops.push(("deeptune/train_batch".to_string(), 64));
    ops.push(("nn/matmul_blocked".to_string(), 256));
    ops.push(("nn/matmul_naive".to_string(), 256));
    ops.push(("store/jsonl_append".to_string(), 64));
    ops.push(("store/jsonl_append_waves".to_string(), 8));
    ops.push(("store/replay".to_string(), 64));
    ops.push(("drift/detector_step".to_string(), 256));
    for w in POOL_WIDTHS {
        ops.push(("platform/wave_dispatch".to_string(), w as u64));
    }
    ops.push(("platform/dispatch_spawn".to_string(), WAVE as u64));
    ops.push(("platform/dispatch_pool".to_string(), WAVE as u64));
    ops.push(("platform/routing_assign".to_string(), WAVE as u64));
    ops.push(("lint/scan_workspace".to_string(), LINT_FILES as u64));
    ops
}

/// Every (op, n) pair [`run_target_suite`] emits, in emission order. A
/// per-target baseline (`BENCH_<keyword>.json`) must cover exactly this
/// set; `perf_compare` refuses a stale per-target file the same way it
/// refuses a stale `BENCH_search.json`.
pub fn target_declared_ops() -> Vec<(String, u64)> {
    let mut ops = vec![("calibrate/spin".to_string(), 0)];
    ops.push(("target/sample_batch".to_string(), WAVE as u64));
    ops.push(("target/encode_batch".to_string(), WAVE as u64));
    for alg in ["random", "bayes", "causal"] {
        for n in TARGET_HISTORY_SIZES {
            ops.push((format!("search/{alg}/propose_batch"), n as u64));
            ops.push((format!("search/{alg}/observe_batch"), n as u64));
        }
    }
    ops
}

/// The shared fixture space: the 64-parameter Linux 4.19 runtime space
/// (the same substrate the paper's runtime searches use).
fn fixture_space() -> ConfigSpace {
    SimOs::linux_runtime(LinuxVersion::V4_19, 64).space
}

/// A deterministic synthetic history of `n` observations over `space`,
/// drawn under `policy`: candidate `i` samples from
/// `derive_seed(SEED, i)`, its value is a smooth function of its
/// encoding, and every ninth candidate crashes.
fn policy_history(
    space: &ConfigSpace,
    encoder: &Encoder,
    policy: &SamplePolicy,
    n: usize,
) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(SEED, i as u64));
            let config = policy.sample(space, &mut rng);
            if i % 9 == 0 {
                Observation::crash(config, 10.0)
            } else {
                let x = encoder.encode(space, &config);
                let value: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(d, v)| v * ((d % 7) as f64 - 3.0))
                    .sum();
                Observation::ok(config, value, 60.0)
            }
        })
        .collect()
}

/// [`policy_history`] under uniform sampling — the main suite's history.
fn fixture_history(space: &ConfigSpace, encoder: &Encoder, n: usize) -> Vec<Observation> {
    policy_history(space, encoder, &SamplePolicy::Uniform, n)
}

/// One synthetic source file for the `lint/scan_workspace` op: a
/// deterministic, per-index mix of the token shapes the analyzer has to
/// work hardest on — strings and comments carrying decoy mentions, a
/// raw string, hash-container iteration with and without a sort, an
/// annotated carve-out, and a `#[cfg(test)]` module — so the measured
/// cost tracks real workspace files rather than a best-case lex.
fn lint_corpus_file(i: usize) -> (String, String) {
    let path = format!("crates/demo{}/src/mod{}.rs", i % 7, i);
    let text = format!(
        r##"//! Module {i}: exercises the lexer ("Instant::now" in a string,
//! `HashMap` in a doc comment) and the rule windows.

use std::collections::HashMap;

/* block comment mentioning thread_rng and process::exit {i} */
pub fn decoys_{i}() -> &'static str {{
    let _s = "Instant::now() and .lock().unwrap() inside a string";
    r#"raw string with env::var("PATH") and SystemTime::now"#
}}

pub fn sorted_iteration_{i}(m: &HashMap<String, u64>) -> Vec<String> {{
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort_unstable();
    keys
}}

pub fn escaping_iteration_{i}(m: &HashMap<String, u64>) -> Vec<String> {{
    m.keys().cloned().collect()
}}

pub fn timed_{i}() -> std::time::Instant {{
    // wf-lint: allow(wall-clock-in-det-path, reason = "bench corpus carve-out {i}")
    std::time::Instant::now()
}}

pub fn wall_clock_violation_{i}() -> std::time::Instant {{
    std::time::Instant::now()
}}

#[cfg(test)]
mod tests_{i} {{
    #[test]
    fn host_is_fine_here_{i}() {{
        let _ = std::time::Instant::now();
        let _ = std::env::var("HOME");
    }}
}}
"##
    );
    (path, text)
}

struct Fixture {
    space: ConfigSpace,
    encoder: Encoder,
    policy: SamplePolicy,
}

impl Fixture {
    fn new() -> Fixture {
        let space = fixture_space();
        let encoder = Encoder::new(&space);
        Fixture {
            space,
            encoder,
            policy: SamplePolicy::Uniform,
        }
    }

    /// A fixture over an arbitrary target's space and sampling policy
    /// (the per-target suite's substrate).
    fn for_target(space: &ConfigSpace, policy: &SamplePolicy) -> Fixture {
        Fixture {
            space: space.clone(),
            encoder: Encoder::new(space),
            policy: policy.clone(),
        }
    }

    fn ctx<'a>(&'a self, history: &'a [Observation]) -> SearchContext<'a> {
        SearchContext {
            space: &self.space,
            encoder: &self.encoder,
            direction: Direction::Maximize,
            policy: &self.policy,
            history,
            iteration: history.len(),
        }
    }

    /// Builds an algorithm by name, preloaded with `history` through one
    /// `observe_batch` (the wave-boundary path, so model algorithms pay
    /// exactly one refit).
    fn algorithm(&self, name: &str, history: &[Observation]) -> Box<dyn SearchAlgorithm> {
        let mut alg: Box<dyn SearchAlgorithm> = match name {
            "random" => Box::new(RandomSearch::new()),
            "grid" => Box::new(GridSearch::new(8)),
            "bayes" => Box::new(BayesOpt::new()),
            "bayes_full" => Box::new(BayesOpt::new().with_full_refit(true)),
            "bayes_scalar" => Box::new(BayesOpt::new().with_scalar_ei(true)),
            "causal" => Box::new(CausalSearch::new()),
            "causal_scratch" => Box::new(CausalSearch::new().with_scratch_stats(true)),
            other => panic!("unknown fixture algorithm {other:?}"),
        };
        if !history.is_empty() {
            alg.observe_batch(&self.ctx(&[]), history);
        }
        alg
    }
}

/// Fixed arithmetic workload for machine-speed calibration.
fn spin() -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..200_000u64 {
        acc = acc.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(i);
        acc ^= acc >> 33;
    }
    acc
}

/// Sample counts per op class: the 800-history model refits cost tens of
/// milliseconds per iteration so a handful of samples suffices, while the
/// µs-scale ops are noise-dominated unless they are sampled heavily
/// (hundreds of µs-iterations still cost ~nothing).
fn samples(quick: bool, heavy: bool) -> usize {
    match (quick, heavy) {
        // Heavy ops feed the ≥2x speedup gate: a 5-sample median needs
        // three independent scheduling spikes to move, even in quick
        // mode (costs ~1s extra; the ratio gate is worth it).
        (_, true) => 5,
        (true, false) => 20,
        (false, false) => 100,
    }
}

/// Sample count for ops dominated by thread/pool spawn latency. Spawn
/// cost has a heavy tail, so the minimum converges slowly: 20 quick-mode
/// samples sit 30-50% above the 100-sample floor the committed baseline
/// records, which reads as a phantom regression. These ops run ~1ms per
/// iteration, so full sampling in both modes costs well under a second
/// and keeps the quick gate comparing like with like.
fn spawn_samples() -> usize {
    samples(false, false)
}

/// Runs one op on a fresh quiet criterion instance and records it.
fn bench_op(
    results: &mut Vec<OpResult>,
    sample_size: usize,
    op: &str,
    n: u64,
    f: impl FnMut(&mut criterion::Bencher),
) {
    let mut c = Criterion::default().sample_size(sample_size).quiet();
    c.bench_function(op, f);
    let rec = &c.results()[0];
    let ns = rec.ns_per_iter.max(1e-3);
    results.push(OpResult {
        op: op.to_string(),
        n,
        ns_per_iter: rec.ns_per_iter,
        min_ns_per_iter: rec.min_ns_per_iter,
        throughput_per_s: 1e9 / ns,
    });
}

/// Runs the full suite. `quick` trims sample counts (CI smoke); the op
/// set is identical in both modes.
pub fn run_suite(quick: bool) -> Vec<OpResult> {
    let mut results = Vec::new();
    let fx = Fixture::new();

    // --- Machine-speed calibration. ------------------------------------
    bench_op(
        &mut results,
        samples(quick, false),
        "calibrate/spin",
        0,
        |b| b.iter(|| black_box(spin())),
    );

    // --- Batch ask/tell for all four algorithms at growing histories. --
    for alg_name in ["random", "grid", "bayes", "causal"] {
        for &n in &HISTORY_SIZES {
            // Only the 800-history GP ops cost tens of milliseconds per
            // iteration; everything else is cheap enough to sample
            // heavily, which is what keeps the regression gate stable.
            let heavy = n >= 800 && alg_name == "bayes";
            let history = fixture_history(&fx.space, &fx.encoder, n);

            // propose_batch: one preloaded model proposes waves.
            let mut alg = fx.algorithm(alg_name, &history);
            let mut rng = StdRng::seed_from_u64(derive_seed(SEED, 1 << 32));
            bench_op(
                &mut results,
                samples(quick, heavy),
                &format!("search/{alg_name}/propose_batch"),
                n as u64,
                |b| {
                    let ctx = fx.ctx(&history);
                    b.iter(|| black_box(alg.propose_batch(WAVE, &ctx, &mut rng)))
                },
            );

            // observe_batch: tell a preloaded model one fresh wave.
            // Every sample rebuilds the preloaded model in setup, so
            // each one observes the same wave at the same history size.
            let prefix = &history[..n - WAVE];
            let wave = &history[n - WAVE..];
            bench_op(
                &mut results,
                samples(quick, heavy),
                &format!("search/{alg_name}/observe_batch"),
                n as u64,
                |b| {
                    b.iter_batched(
                        || fx.algorithm(alg_name, prefix),
                        |mut alg| {
                            alg.observe_batch(&fx.ctx(prefix), wave);
                            black_box(alg.stats())
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }

    // --- The tentpole measurement: single observe-then-propose at
    // history 800, incremental vs the pre-optimization full paths. ------
    let history800 = fixture_history(&fx.space, &fx.encoder, 800);
    let next = fixture_history(&fx.space, &fx.encoder, 801)
        .pop()
        .expect("801st");
    for (op, alg_name) in [
        ("search/bayes/observe_propose", "bayes"),
        ("search/bayes/observe_propose_full", "bayes_full"),
        ("search/causal/observe_propose", "causal"),
        ("search/causal/observe_propose_scratch", "causal_scratch"),
    ] {
        let heavy = alg_name.starts_with("bayes");
        bench_op(&mut results, samples(quick, heavy), op, 800, |b| {
            b.iter_batched(
                || {
                    (
                        fx.algorithm(alg_name, &history800),
                        StdRng::seed_from_u64(derive_seed(SEED, 2 << 32)),
                    )
                },
                |(mut alg, mut rng)| {
                    let ctx = fx.ctx(&history800);
                    alg.observe(&ctx, &next);
                    black_box(alg.propose(&ctx, &mut rng))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }

    // --- The batched-EI tentpole: one full pool proposal at history 800,
    // matrix-level batched scorer vs the per-candidate loop it replaced.
    // Both variants run the identical RNG stream and pick the identical
    // argmax (bit-equality is proven in the wf-search unit tests and
    // tests/refit_equivalence.rs), so the delta here is purely the cost
    // of streaming the packed Cholesky factor once per candidate block
    // instead of once per candidate.
    for (op, alg_name) in [
        ("search/bayes/propose_pool", "bayes"),
        ("search/bayes/propose_pool_scalar", "bayes_scalar"),
    ] {
        let mut alg = fx.algorithm(alg_name, &history800);
        let mut rng = StdRng::seed_from_u64(derive_seed(SEED, 5 << 32));
        bench_op(&mut results, samples(quick, true), op, 800, |b| {
            let ctx = fx.ctx(&history800);
            b.iter(|| black_box(alg.propose(&ctx, &mut rng)))
        });
    }

    // --- DeepTune forward / score / train batches. ----------------------
    let dim = fx.encoder.dim();
    let feats: Vec<Vec<f64>> = fixture_history(&fx.space, &fx.encoder, 256)
        .iter()
        .map(|o| fx.encoder.encode(&fx.space, &o.config))
        .collect();
    let flat: Vec<f64> = feats.iter().flatten().copied().collect();
    let x256 = Matrix::from_vec(256, dim, flat);
    let mut model = Dtm::new(DtmConfig::for_input(dim));
    bench_op(
        &mut results,
        samples(quick, false),
        "deeptune/forward_batch",
        256,
        |b| b.iter(|| black_box(model.predict(&x256))),
    );

    let preds: Vec<Prediction> = model.predict(&x256);
    let goodness: Vec<f64> = preds.iter().map(|p| p.mu).collect();
    let known: Vec<Vec<f64>> = feats[..128].to_vec();
    let params = ScoreParams::default();
    bench_op(
        &mut results,
        samples(quick, false),
        "deeptune/score_batch",
        256,
        |b| b.iter(|| black_box(rank(&params, &preds, &goodness, &feats, &known))),
    );

    let y64: Vec<f64> = (0..64).map(|i| (i % 13) as f64 / 13.0).collect();
    let c64: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
    let x64 = x256.select_rows(&(0..64).collect::<Vec<_>>());
    let mut train_model = Dtm::new(DtmConfig::for_input(dim));
    bench_op(
        &mut results,
        samples(quick, false),
        "deeptune/train_batch",
        64,
        |b| b.iter(|| black_box(train_model.train_batch(&x64, &y64, &c64))),
    );

    // --- The nn kernel under every Dense forward: blocked vs naive
    // matmul on DTM-shaped operands (a 256-row feature batch times a
    // features x 128 weight). Outputs are bit-identical (proven in
    // wf-nn); the delta here is pure cache behavior.
    let hidden = 128usize;
    let wdata: Vec<f64> = (0..dim * hidden)
        .map(|i| ((i.wrapping_mul(2_654_435_761) % 2048) as f64) / 1024.0 - 1.0)
        .collect();
    let weight = Matrix::from_vec(dim, hidden, wdata);
    bench_op(
        &mut results,
        samples(quick, false),
        "nn/matmul_blocked",
        256,
        |b| b.iter(|| black_box(x256.matmul(&weight))),
    );
    bench_op(
        &mut results,
        samples(quick, false),
        "nn/matmul_naive",
        256,
        |b| b.iter(|| black_box(x256.matmul_naive(&weight))),
    );

    // --- Session store: JSONL append and deterministic replay. ----------
    let tmp = std::env::temp_dir().join(format!("wf-bench-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create bench temp dir");
    let events = store_fixture_events(&fx.space);
    let mut counter = 0usize;
    bench_op(
        &mut results,
        samples(quick, false),
        "store/jsonl_append",
        64,
        |b| {
            b.iter_batched(
                || {
                    counter += 1;
                    tmp.join(format!("events-{counter}.jsonl"))
                },
                |path: PathBuf| {
                    let mut sink = JsonlSink::append(&path).expect("open sink");
                    for e in &events {
                        sink.on_event(e);
                    }
                    sink.flush().expect("flush");
                },
                criterion::BatchSize::LargeInput,
            )
        },
    );

    // Same 65 events, committed as 8 wave-sized batches instead of one:
    // measures the per-wave buffer/commit path the batched sink runs in a
    // real session (one write+flush per WaveCompleted, not per event).
    let wave_events = store_fixture_waves(&fx.space);
    let mut wcounter = 0usize;
    bench_op(
        &mut results,
        samples(quick, false),
        "store/jsonl_append_waves",
        8,
        |b| {
            b.iter_batched(
                || {
                    wcounter += 1;
                    tmp.join(format!("events-w{wcounter}.jsonl"))
                },
                |path: PathBuf| {
                    let mut sink = JsonlSink::append(&path).expect("open sink");
                    for e in &wave_events {
                        sink.on_event(e);
                    }
                    sink.flush().expect("flush");
                },
                criterion::BatchSize::LargeInput,
            )
        },
    );

    let make_session = || {
        Session::new(
            SimOs::linux_runtime(LinuxVersion::V4_19, 64),
            App::by_id(AppId::Nginx),
            Box::new(RandomSearch::new()),
            SessionSpec {
                budget: Budget {
                    iterations: Some(64),
                    time_seconds: None,
                },
                seed: SEED,
                workers: 4,
                ..SessionSpec::default()
            },
        )
    };
    let mut donor = make_session();
    let _ = donor.run();
    let stored: Vec<Record> = donor.history().records().to_vec();
    let wave_sizes: Vec<usize> = donor.waves().iter().map(|w| w.size).collect();
    bench_op(
        &mut results,
        samples(quick, false),
        "store/replay",
        64,
        |b| {
            b.iter_batched(
                make_session,
                |mut session| {
                    session.replay(&stored, &wave_sizes).expect("replay");
                    black_box(session.compute_s())
                },
                criterion::BatchSize::LargeInput,
            )
        },
    );

    // --- Drift detection: a step signal streamed through the mean-shift
    // detector until the verdict fires (the continuous-mode hot path:
    // one observe() per candidate, every wave). -------------------------
    let drift_samples: Vec<(u64, f64)> = (0..256u64).map(|i| (i, i as f64 * 60.0)).collect();
    bench_op(
        &mut results,
        samples(quick, false),
        "drift/detector_step",
        256,
        |b| {
            b.iter_batched(
                || {
                    (
                        wf_drift::SyntheticSignal::step(100.0, 65.0, 7_680.0, 0.02, SEED),
                        wf_drift::MeanShift::new(6, 0.15),
                    )
                },
                |(mut signal, mut detector)| {
                    black_box(wf_drift::run_until_drift(
                        &mut signal,
                        &mut detector,
                        &drift_samples,
                    ))
                },
                criterion::BatchSize::LargeInput,
            )
        },
    );

    // --- Wave-dispatch overhead across pool widths (host time of a full
    // 24-candidate random session; the virtual clocks differ by design,
    // the *real* cost of threads + cache protocol is what is measured). -
    for &workers in &POOL_WIDTHS {
        bench_op(
            &mut results,
            spawn_samples(),
            "platform/wave_dispatch",
            workers as u64,
            |b| {
                b.iter_batched(
                    || {
                        Session::new(
                            SimOs::linux_runtime(LinuxVersion::V4_19, 64),
                            App::by_id(AppId::Nginx),
                            Box::new(RandomSearch::new()),
                            SessionSpec {
                                budget: Budget {
                                    iterations: Some(24),
                                    time_seconds: None,
                                },
                                seed: SEED,
                                workers,
                                ..SessionSpec::default()
                            },
                        )
                    },
                    |mut session| black_box(session.run()),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }

    // --- Persistent pool vs per-wave spawn at full width (the backend
    // tentpole's acceptance bar: reusing channel-fed workers must not
    // lose to spawning a fresh thread set every wave — 48 iterations is
    // 6 waves, i.e. 48 spawns on the legacy path vs 8 on the pool). ----
    for (op, backend) in [
        ("platform/dispatch_spawn", BackendChoice::Spawn),
        ("platform/dispatch_pool", BackendChoice::InProcess),
    ] {
        bench_op(&mut results, spawn_samples(), op, WAVE as u64, |b| {
            b.iter_batched(
                || {
                    Session::new(
                        SimOs::linux_runtime(LinuxVersion::V4_19, 64),
                        App::by_id(AppId::Nginx),
                        Box::new(RandomSearch::new()),
                        SessionSpec {
                            budget: Budget {
                                iterations: Some(48),
                                time_seconds: None,
                            },
                            seed: SEED,
                            workers: WAVE,
                            backend,
                            ..SessionSpec::default()
                        },
                    )
                },
                |mut session| black_box(session.run()),
                criterion::BatchSize::LargeInput,
            )
        });
    }

    // --- Raw routing overhead: 64 full-width assign/observe rounds on
    // the EWMA-heaviest strategy, isolating the router from evaluation
    // cost (the dispatch ops above pay it inline). ----------------------
    bench_op(
        &mut results,
        samples(quick, false),
        "platform/routing_assign",
        WAVE as u64,
        |b| {
            b.iter_batched(
                || Router::new(RoutingStrategy::Fastest, WAVE),
                |mut router| {
                    for wave in 0..64u64 {
                        let lanes = router.assign(WAVE, SEED, wave);
                        for (j, lane) in lanes.into_iter().enumerate() {
                            router.observe(lane, 60.0 + j as f64);
                        }
                    }
                    black_box(router.stats().len())
                },
                criterion::BatchSize::LargeInput,
            )
        },
    );

    // --- wf-lint analyzer throughput: lex + rule-scan a synthetic
    // corpus (the CI lint-pass leg's cost is this, plus the fs walk). --
    let corpus: Vec<(String, String)> = (0..LINT_FILES).map(lint_corpus_file).collect();
    let lint_cfg = wf_lint::Config::default();
    bench_op(
        &mut results,
        samples(quick, false),
        "lint/scan_workspace",
        LINT_FILES as u64,
        |b| {
            b.iter(|| {
                let mut findings = 0usize;
                let mut suppressed = 0usize;
                for (path, text) in &corpus {
                    let out = wf_lint::lint_source(path, text, &lint_cfg);
                    findings += out.findings.len();
                    suppressed += out.suppressed.len();
                }
                black_box((findings, suppressed))
            })
        },
    );

    let _ = std::fs::remove_dir_all(&tmp);

    debug_assert_eq!(
        results
            .iter()
            .map(|r| (r.op.clone(), r.n))
            .collect::<Vec<_>>(),
        declared_ops(),
        "suite emission order drifted from declared_ops()"
    );
    results
}

/// Runs the per-target suite over `space` and `policy` — the pair `wfctl
/// bench --target <keyword>` resolves through the target registry. The
/// ops mirror the main suite's search hot paths (batch ask/tell for
/// random, bayes, and causal) plus the two per-candidate costs every
/// algorithm pays on this target — sampling under its policy and
/// encoding into its feature space — but measured on the target's own
/// configuration space, where width and sampling policy can differ from
/// the main fixture by an order of magnitude.
pub fn run_target_suite(space: &ConfigSpace, policy: &SamplePolicy, quick: bool) -> Vec<OpResult> {
    let mut results = Vec::new();
    let fx = Fixture::for_target(space, policy);

    bench_op(
        &mut results,
        samples(quick, false),
        "calibrate/spin",
        0,
        |b| b.iter(|| black_box(spin())),
    );

    // Candidate sampling under the target's policy (mutate-the-default
    // walks the whole spec list per sample on compile-stage spaces).
    let mut srng = StdRng::seed_from_u64(derive_seed(SEED, 6 << 32));
    bench_op(
        &mut results,
        samples(quick, false),
        "target/sample_batch",
        WAVE as u64,
        |b| {
            b.iter(|| {
                let batch: Vec<_> = (0..WAVE)
                    .map(|_| fx.policy.sample(&fx.space, &mut srng))
                    .collect();
                black_box(batch.len())
            })
        },
    );

    // Feature encoding of one wave (the cost scales with the encoded
    // dimension, ~900 for the RISC-V compile space).
    let mut erng = StdRng::seed_from_u64(derive_seed(SEED, 7 << 32));
    let sampled: Vec<_> = (0..WAVE)
        .map(|_| fx.policy.sample(&fx.space, &mut erng))
        .collect();
    bench_op(
        &mut results,
        samples(quick, false),
        "target/encode_batch",
        WAVE as u64,
        |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for config in &sampled {
                    acc += fx.encoder.encode(&fx.space, config).iter().sum::<f64>();
                }
                black_box(acc)
            })
        },
    );

    // Batch ask/tell on the target's space. Model algorithms pay per
    // parameter (causal) or per encoded dimension (bayes), so both count
    // as heavy here even at history 200.
    for alg_name in ["random", "bayes", "causal"] {
        for &n in &TARGET_HISTORY_SIZES {
            let heavy = alg_name != "random";
            let history = policy_history(&fx.space, &fx.encoder, &fx.policy, n);

            let mut alg = fx.algorithm(alg_name, &history);
            let mut rng = StdRng::seed_from_u64(derive_seed(SEED, 8 << 32));
            bench_op(
                &mut results,
                samples(quick, heavy),
                &format!("search/{alg_name}/propose_batch"),
                n as u64,
                |b| {
                    let ctx = fx.ctx(&history);
                    b.iter(|| black_box(alg.propose_batch(WAVE, &ctx, &mut rng)))
                },
            );

            let prefix = &history[..n - WAVE];
            let wave = &history[n - WAVE..];
            bench_op(
                &mut results,
                samples(quick, heavy),
                &format!("search/{alg_name}/observe_batch"),
                n as u64,
                |b| {
                    b.iter_batched(
                        || fx.algorithm(alg_name, prefix),
                        |mut alg| {
                            alg.observe_batch(&fx.ctx(prefix), wave);
                            black_box(alg.stats())
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }

    debug_assert_eq!(
        results
            .iter()
            .map(|r| (r.op.clone(), r.n))
            .collect::<Vec<_>>(),
        target_declared_ops(),
        "target suite emission order drifted from target_declared_ops()"
    );
    results
}

/// 64 CandidateEvaluated events plus a WaveCompleted, shaped like one
/// store wave.
fn store_fixture_events(space: &ConfigSpace) -> Vec<wf_platform::SessionEvent> {
    use wf_platform::SessionEvent;
    let mut events: Vec<SessionEvent> = (0..64)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(SEED, 3 << 32 | i as u64));
            SessionEvent::CandidateEvaluated(Record {
                iteration: i,
                config: space.sample(&mut rng),
                objective: Some(1000.0 + i as f64),
                metric: Some(1000.0 + i as f64),
                memory_mb: Some(128.0),
                crash_phase: None,
                build_skipped: i > 0,
                duration_s: 61.5,
                finished_at_s: 61.5 * (i + 1) as f64,
                algo_seconds: 0.002,
                algo_memory_bytes: 4096,
            })
        })
        .collect();
    events.push(wf_platform::SessionEvent::WaveCompleted(WaveStats {
        wave: 0,
        size: 64,
        wall_s: 61.5,
        busy_s: 61.5 * 64.0,
        cache_hits: 63,
        cache_misses: 1,
    }));
    events
}

/// The same 64 candidates as [`store_fixture_events`], but committed as
/// 8 waves of 8 (each with its own `WaveCompleted`), exercising the
/// sink's per-wave batched write path.
fn store_fixture_waves(space: &ConfigSpace) -> Vec<wf_platform::SessionEvent> {
    use wf_platform::SessionEvent;
    let mut events = Vec::with_capacity(72);
    for wave in 0..8usize {
        for slot in 0..8usize {
            let i = wave * 8 + slot;
            let mut rng = StdRng::seed_from_u64(derive_seed(SEED, 4 << 32 | i as u64));
            events.push(SessionEvent::CandidateEvaluated(Record {
                iteration: i,
                config: space.sample(&mut rng),
                objective: Some(1000.0 + i as f64),
                metric: Some(1000.0 + i as f64),
                memory_mb: Some(128.0),
                crash_phase: None,
                build_skipped: i > 0,
                duration_s: 61.5,
                finished_at_s: 61.5 * (i + 1) as f64,
                algo_seconds: 0.002,
                algo_memory_bytes: 4096,
            }));
        }
        events.push(SessionEvent::WaveCompleted(WaveStats {
            wave,
            size: 8,
            wall_s: 61.5,
            busy_s: 61.5 * 8.0,
            cache_hits: 7,
            cache_misses: 1,
        }));
    }
    events
}

/// Suite tag of the main-suite document (`BENCH_search.json`).
pub const MAIN_SUITE: &str = "wfctl-bench";

/// Suite tag of a per-target document (`BENCH_<keyword>.json`).
pub fn target_suite_tag(keyword: &str) -> String {
    format!("wfctl-bench-target/{keyword}")
}

/// The declared op set a document with suite tag `suite` must cover.
/// Unknown tags are an error so a mislabeled document can never pass the
/// stale-baseline check vacuously.
pub fn declared_ops_for(suite: &str) -> Result<Vec<(String, u64)>, String> {
    if suite == MAIN_SUITE {
        Ok(declared_ops())
    } else if suite.starts_with("wfctl-bench-target/") {
        Ok(target_declared_ops())
    } else {
        Err(format!("unknown bench suite tag {suite:?}"))
    }
}

/// A parsed bench document: the suite tag plus its results.
pub struct BenchDoc {
    /// Which suite emitted this document ([`MAIN_SUITE`] or a
    /// [`target_suite_tag`]).
    pub suite: String,
    /// Whether the document was produced in quick (CI smoke) mode.
    pub quick: bool,
    /// The measured ops.
    pub ops: Vec<OpResult>,
}

/// Encodes suite results as the stable `BENCH_search.json` document.
pub fn to_json(results: &[OpResult], quick: bool) -> String {
    to_json_tagged(results, quick, MAIN_SUITE)
}

/// Encodes results as a bench document carrying an explicit suite tag
/// (the per-target documents use [`target_suite_tag`]).
pub fn to_json_tagged(results: &[OpResult], quick: bool, suite: &str) -> String {
    let ops: Vec<JsonValue> = results
        .iter()
        .map(|r| {
            JsonValue::Obj(vec![
                ("op".into(), JsonValue::Str(r.op.clone())),
                ("n".into(), JsonValue::Int(r.n as i64)),
                ("ns_per_iter".into(), JsonValue::Num(r.ns_per_iter)),
                ("min_ns_per_iter".into(), JsonValue::Num(r.min_ns_per_iter)),
                (
                    "throughput_per_s".into(),
                    JsonValue::Num(r.throughput_per_s),
                ),
            ])
        })
        .collect();
    let doc = JsonValue::Obj(vec![
        ("version".into(), JsonValue::Int(1)),
        ("suite".into(), JsonValue::Str(suite.into())),
        ("quick".into(), JsonValue::Bool(quick)),
        ("ops".into(), JsonValue::Arr(ops)),
    ]);
    let mut text = doc.encode();
    text.push('\n');
    text
}

/// Parses a bench document back into op results, dropping the envelope.
pub fn parse_json(text: &str) -> Result<Vec<OpResult>, String> {
    parse_json_doc(text).map(|doc| doc.ops)
}

/// Parses a bench document including its suite tag (what `perf_compare`
/// uses, so it can refuse to diff documents from different suites).
pub fn parse_json_doc(text: &str) -> Result<BenchDoc, String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    if doc.get("version").and_then(JsonValue::as_i64) != Some(1) {
        return Err("unsupported bench document version".into());
    }
    let suite = doc
        .get("suite")
        .and_then(JsonValue::as_str)
        .ok_or("missing suite tag")?
        .to_string();
    let quick = doc
        .get("quick")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let ops = doc
        .get("ops")
        .and_then(JsonValue::as_arr)
        .ok_or("missing ops array")?;
    let ops = ops
        .iter()
        .map(|o| {
            Ok(OpResult {
                op: o
                    .get("op")
                    .and_then(JsonValue::as_str)
                    .ok_or("op missing name")?
                    .to_string(),
                n: o.get("n")
                    .and_then(JsonValue::as_u64)
                    .ok_or("op missing n")?,
                ns_per_iter: o
                    .get("ns_per_iter")
                    .and_then(JsonValue::as_f64)
                    .ok_or("op missing ns_per_iter")?,
                min_ns_per_iter: o
                    .get("min_ns_per_iter")
                    .and_then(JsonValue::as_f64)
                    .ok_or("op missing min_ns_per_iter")?,
                throughput_per_s: o
                    .get("throughput_per_s")
                    .and_then(JsonValue::as_f64)
                    .ok_or("op missing throughput_per_s")?,
            })
        })
        .collect::<Result<Vec<OpResult>, String>>()?;
    Ok(BenchDoc { suite, quick, ops })
}

/// Renders results as an aligned human-readable table.
pub fn render_table(results: &[OpResult]) -> String {
    let mut out = String::from(&format!(
        "{:<44} {:>6} {:>14} {:>14} {:>14}\n",
        "op", "n", "ns/iter", "min ns/iter", "ops/s"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<44} {:>6} {:>14.0} {:>14.0} {:>14.1}\n",
            r.op, r.n, r.ns_per_iter, r.min_ns_per_iter, r.throughput_per_s
        ));
    }
    out
}

/// Declared (op, n) pairs missing from `results` — non-empty means the
/// file predates the current suite. `perf_compare` refuses a stale
/// baseline outright: the regression gate only iterates baseline ops, so
/// an op added to the suite without refreshing `BENCH_search.json` would
/// otherwise silently never be gated.
pub fn stale_ops(results: &[OpResult]) -> Vec<(String, u64)> {
    stale_ops_in(&declared_ops(), results)
}

/// [`stale_ops`] against an explicit declared set (per-target baselines
/// check against [`target_declared_ops`] via [`declared_ops_for`]).
pub fn stale_ops_in(declared: &[(String, u64)], results: &[OpResult]) -> Vec<(String, u64)> {
    declared
        .iter()
        .filter(|(op, n)| !results.iter().any(|r| r.op == **op && r.n == *n))
        .cloned()
        .collect()
}

/// The comparison the CI `bench-smoke` leg runs: every baseline op must
/// exist in `new`, and no op may regress by more than `tolerance`
/// (fractional, e.g. 0.35) after normalizing both sides by their own
/// `calibrate/spin` time. All comparisons use the per-run **minimum**
/// per-iteration time: contention only ever adds time to deterministic
/// compute, so the minimum is the statistic a shared runner cannot
/// inflate, while a real code regression still shifts it. Ops faster
/// than `floor_ns` in the baseline are reported but never gated
/// (noise-dominated).
/// When both bayes observe+propose variants are present in `new`, the
/// incremental path must be at least `min_speedup`× faster than the full
/// path — the tentpole's ≥2x acceptance bar, enforced on every run.
/// Likewise, when both dispatch-backend ops are present, the persistent
/// in-process pool must not lose to per-wave thread spawning
/// ([`POOL_MIN_SPEEDUP`]), and when both pool-EI scoring variants are
/// present, the batched matrix-level scorer must beat the per-candidate
/// loop by at least [`EI_MIN_SPEEDUP`].
pub struct Comparison {
    /// Human-readable per-op lines.
    pub lines: Vec<String>,
    /// Ops that exceeded the tolerance (empty = gate passes).
    pub regressions: Vec<String>,
    /// The measured bayes full/incremental speedup, if both ops present.
    pub bayes_speedup: Option<f64>,
    /// The measured spawn/pool dispatch speedup, if both ops present.
    pub pool_speedup: Option<f64>,
    /// The measured scalar/batched pool-EI speedup, if both ops present.
    pub ei_speedup: Option<f64>,
}

/// The dispatch gate's bar: `platform/dispatch_pool` must run a full
/// session at least this much faster than `platform/dispatch_spawn`
/// (1.0 = "the persistent pool never loses to per-wave spawning";
/// compared on per-run minimums, which spawning's extra syscalls can
/// only push up).
pub const POOL_MIN_SPEEDUP: f64 = 1.0;

/// The batched-EI gate's bar: `search/bayes/propose_pool` must beat
/// `search/bayes/propose_pool_scalar` by at least this factor at history
/// 800 — the acceptance bar for replacing ~200 per-candidate triangular
/// solves with one matrix-level solve per candidate block (compared on
/// per-run minimums; both variants produce bit-identical proposals).
pub const EI_MIN_SPEEDUP: f64 = 2.0;

/// Compares `new` results against `baseline`. `baseline_label` names the
/// baseline file in diagnostics, so a missing op says which committed
/// `BENCH_*.json` declared it. See [`Comparison`].
pub fn compare(
    baseline: &[OpResult],
    new: &[OpResult],
    tolerance: f64,
    floor_ns: f64,
    min_speedup: f64,
    baseline_label: &str,
) -> Result<Comparison, String> {
    let cal = |results: &[OpResult]| -> Result<f64, String> {
        results
            .iter()
            .find(|r| r.op == "calibrate/spin")
            .map(|r| r.min_ns_per_iter.max(1.0))
            .ok_or_else(|| "missing calibrate/spin op".to_string())
    };
    let base_cal = cal(baseline)?;
    let new_cal = cal(new)?;
    let find = |results: &[OpResult], op: &str, n: u64| -> Option<OpResult> {
        results.iter().find(|r| r.op == op && r.n == n).cloned()
    };

    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for b in baseline {
        if b.op == "calibrate/spin" {
            continue;
        }
        let Some(n) = find(new, &b.op, b.n) else {
            regressions.push(format!(
                "{} (n={}) from baseline {} missing from new results",
                b.op, b.n, baseline_label
            ));
            continue;
        };
        let ratio = (n.min_ns_per_iter / new_cal) / (b.min_ns_per_iter / base_cal).max(1e-12);
        let gated = b.min_ns_per_iter >= floor_ns;
        let verdict = if !gated {
            "info"
        } else if ratio > 1.0 + tolerance {
            "REGRESSION"
        } else {
            "ok"
        };
        lines.push(format!(
            "{:<44} n={:<5} base {:>12.0}ns new {:>12.0}ns (min) normalized x{:.2} [{}]",
            b.op, b.n, b.min_ns_per_iter, n.min_ns_per_iter, ratio, verdict
        ));
        if gated && ratio > 1.0 + tolerance {
            regressions.push(format!(
                "{} (n={}) regressed x{:.2} (tolerance x{:.2})",
                b.op,
                b.n,
                ratio,
                1.0 + tolerance
            ));
        }
    }

    let bayes_speedup = match (
        find(new, "search/bayes/observe_propose_full", 800),
        find(new, "search/bayes/observe_propose", 800),
    ) {
        (Some(full), Some(incr)) => Some(full.min_ns_per_iter / incr.min_ns_per_iter.max(1e-3)),
        _ => None,
    };
    if let Some(speedup) = bayes_speedup {
        if speedup < min_speedup {
            regressions.push(format!(
                "bayes incremental observe+propose speedup x{speedup:.2} < required x{min_speedup:.1}"
            ));
        }
    }

    let pool_speedup = match (
        find(new, "platform/dispatch_spawn", WAVE as u64),
        find(new, "platform/dispatch_pool", WAVE as u64),
    ) {
        (Some(spawn), Some(pool)) => Some(spawn.min_ns_per_iter / pool.min_ns_per_iter.max(1e-3)),
        _ => None,
    };
    if let Some(speedup) = pool_speedup {
        if speedup < POOL_MIN_SPEEDUP {
            regressions.push(format!(
                "persistent-pool dispatch speedup x{speedup:.2} < required x{POOL_MIN_SPEEDUP:.1} \
                 (the in-process pool lost to per-wave thread spawning)"
            ));
        }
    }

    let ei_speedup = match (
        find(new, "search/bayes/propose_pool_scalar", 800),
        find(new, "search/bayes/propose_pool", 800),
    ) {
        (Some(scalar), Some(batched)) => {
            Some(scalar.min_ns_per_iter / batched.min_ns_per_iter.max(1e-3))
        }
        _ => None,
    };
    if let Some(speedup) = ei_speedup {
        if speedup < EI_MIN_SPEEDUP {
            regressions.push(format!(
                "batched pool-EI speedup x{speedup:.2} < required x{EI_MIN_SPEEDUP:.1} \
                 (the matrix-level scorer lost its edge over the per-candidate loop)"
            ));
        }
    }

    Ok(Comparison {
        lines,
        regressions,
        bayes_speedup,
        pool_speedup,
        ei_speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, n: u64, ns: f64) -> OpResult {
        OpResult {
            op: name.into(),
            n,
            ns_per_iter: ns,
            min_ns_per_iter: ns,
            throughput_per_s: 1e9 / ns,
        }
    }

    #[test]
    fn json_round_trips() {
        let results = vec![
            op("calibrate/spin", 0, 1234.5),
            op("search/x/y", 800, 9.75e6),
        ];
        let text = to_json(&results, true);
        let back = parse_json(&text).expect("parse");
        assert_eq!(results, back);
    }

    #[test]
    fn json_round_trips_the_suite_tag() {
        let results = vec![op("calibrate/spin", 0, 1234.5)];
        let main = parse_json_doc(&to_json(&results, false)).expect("parse");
        assert_eq!(main.suite, MAIN_SUITE);
        assert!(!main.quick);
        let tagged = to_json_tagged(&results, true, &target_suite_tag("unikraft"));
        let doc = parse_json_doc(&tagged).expect("parse");
        assert_eq!(doc.suite, "wfctl-bench-target/unikraft");
        assert!(doc.quick);
        assert_eq!(doc.ops, results);
    }

    #[test]
    fn declared_ops_for_dispatches_on_the_suite_tag() {
        assert_eq!(declared_ops_for(MAIN_SUITE).unwrap(), declared_ops());
        assert_eq!(
            declared_ops_for(&target_suite_tag("linux-riscv")).unwrap(),
            target_declared_ops()
        );
        assert!(declared_ops_for("some-other-suite").is_err());
    }

    #[test]
    fn target_declared_ops_are_unique() {
        let ops = target_declared_ops();
        let mut seen = std::collections::HashSet::new();
        for pair in &ops {
            assert!(seen.insert(pair.clone()), "duplicate op {pair:?}");
        }
        assert!(ops.len() >= 15, "target suite shrank to {} ops", ops.len());
    }

    #[test]
    fn stale_ops_in_checks_against_the_given_declared_set() {
        let full: Vec<OpResult> = target_declared_ops()
            .into_iter()
            .map(|(name, n)| op(&name, n, 1000.0))
            .collect();
        assert!(stale_ops_in(&target_declared_ops(), &full).is_empty());
        // The same results are stale against the (larger) main-suite set.
        assert!(!stale_ops_in(&declared_ops(), &full).is_empty());
    }

    #[test]
    fn declared_ops_are_unique() {
        let ops = declared_ops();
        let mut seen = std::collections::HashSet::new();
        for pair in &ops {
            assert!(seen.insert(pair.clone()), "duplicate op {pair:?}");
        }
        assert!(ops.len() >= 30, "suite shrank to {} ops", ops.len());
    }

    #[test]
    fn stale_ops_flags_a_baseline_missing_declared_ops() {
        // A full fake baseline is clean; dropping one declared op (or
        // shifting its n) makes it stale.
        let full: Vec<OpResult> = declared_ops()
            .into_iter()
            .map(|(name, n)| op(&name, n, 1000.0))
            .collect();
        assert!(stale_ops(&full).is_empty());
        let missing_one = &full[1..];
        assert_eq!(
            stale_ops(missing_one),
            vec![(full[0].op.clone(), full[0].n)]
        );
    }

    #[test]
    fn compare_normalizes_by_calibration() {
        // The "new machine" is uniformly 3x slower — including its spin —
        // so nothing regresses.
        let base = vec![op("calibrate/spin", 0, 1000.0), op("a/b", 10, 50_000.0)];
        let new = vec![op("calibrate/spin", 0, 3000.0), op("a/b", 10, 150_000.0)];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_search.json").expect("compare");
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
    }

    #[test]
    fn compare_flags_real_regressions_and_missing_ops() {
        let base = vec![
            op("calibrate/spin", 0, 1000.0),
            op("a/b", 10, 50_000.0),
            op("gone/op", 1, 50_000.0),
        ];
        let new = vec![op("calibrate/spin", 0, 1000.0), op("a/b", 10, 90_000.0)];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_search.json").expect("compare");
        assert_eq!(c.regressions.len(), 2, "{:?}", c.regressions);
    }

    #[test]
    fn compare_ignores_sub_floor_noise() {
        let base = vec![op("calibrate/spin", 0, 1000.0), op("tiny/op", 1, 40.0)];
        let new = vec![op("calibrate/spin", 0, 1000.0), op("tiny/op", 1, 400.0)];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_search.json").expect("compare");
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
    }

    #[test]
    fn compare_enforces_the_pool_dispatch_bar() {
        let base = vec![op("calibrate/spin", 0, 1000.0)];
        // Pool slower than spawn: gated.
        let new = vec![
            op("calibrate/spin", 0, 1000.0),
            op("platform/dispatch_spawn", 8, 800_000.0),
            op("platform/dispatch_pool", 8, 900_000.0),
        ];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_search.json").expect("compare");
        assert!(c.pool_speedup.unwrap() < 1.0);
        assert_eq!(c.regressions.len(), 1, "{:?}", c.regressions);
        // Pool at least as fast: passes.
        let new = vec![
            op("calibrate/spin", 0, 1000.0),
            op("platform/dispatch_spawn", 8, 900_000.0),
            op("platform/dispatch_pool", 8, 800_000.0),
        ];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_search.json").expect("compare");
        assert_eq!(c.pool_speedup, Some(900.0 / 800.0));
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
    }

    #[test]
    fn compare_names_the_baseline_file_for_missing_ops() {
        let base = vec![op("calibrate/spin", 0, 1000.0), op("gone/op", 1, 50_000.0)];
        let new = vec![op("calibrate/spin", 0, 1000.0)];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_unikraft.json").expect("compare");
        assert_eq!(c.regressions.len(), 1);
        assert!(
            c.regressions[0].contains("BENCH_unikraft.json"),
            "{:?}",
            c.regressions
        );
    }

    #[test]
    fn compare_enforces_the_batched_ei_bar() {
        let base = vec![op("calibrate/spin", 0, 1000.0)];
        // Batched scorer below 2x over scalar: gated.
        let new = vec![
            op("calibrate/spin", 0, 1000.0),
            op("search/bayes/propose_pool", 800, 70_000.0),
            op("search/bayes/propose_pool_scalar", 800, 100_000.0),
        ];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_search.json").expect("compare");
        assert_eq!(c.ei_speedup, Some(100.0 / 70.0));
        assert_eq!(c.regressions.len(), 1, "{:?}", c.regressions);
        // At or above the bar: passes.
        let new = vec![
            op("calibrate/spin", 0, 1000.0),
            op("search/bayes/propose_pool", 800, 40_000.0),
            op("search/bayes/propose_pool_scalar", 800, 100_000.0),
        ];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_search.json").expect("compare");
        assert_eq!(c.ei_speedup, Some(2.5));
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
    }

    #[test]
    fn compare_enforces_the_bayes_speedup_bar() {
        let base = vec![op("calibrate/spin", 0, 1000.0)];
        let new = vec![
            op("calibrate/spin", 0, 1000.0),
            op("search/bayes/observe_propose", 800, 80_000.0),
            op("search/bayes/observe_propose_full", 800, 100_000.0),
        ];
        let c = compare(&base, &new, 0.35, 1000.0, 2.0, "BENCH_search.json").expect("compare");
        assert_eq!(c.bayes_speedup, Some(1.25));
        assert_eq!(c.regressions.len(), 1, "{:?}", c.regressions);
    }
}
