//! Regeneration binary: see `wf_bench::run_fig09`.
fn main() {
    wf_bench::run_fig09();
}
