//! Regeneration binary: see `wf_bench::run_fig06`.
fn main() {
    wf_bench::run_fig06();
}
