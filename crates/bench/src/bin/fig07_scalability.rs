//! Regeneration binary: see `wf_bench::run_fig07`.
fn main() {
    wf_bench::run_fig07();
}
