//! Regeneration binary: see `wf_bench::run_fig08`.
fn main() {
    wf_bench::run_fig08();
}
