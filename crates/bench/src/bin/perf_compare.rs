//! `perf_compare`: the CI perf-regression gate.
//!
//! ```sh
//! cargo run -p wf-bench --bin perf_compare -- BENCH_search.json bench.json \
//!     [--tolerance 0.35] [--floor-ns 20000] [--min-speedup 2.0]
//! ```
//!
//! Compares a fresh `wfctl bench` JSON against a committed baseline —
//! the main suite's `BENCH_search.json` or a per-target document such as
//! `BENCH_unikraft.json` (produced by `wfctl bench --target <keyword>`).
//! Both files carry a suite tag; the gate refuses to diff documents from
//! different suites, and checks the baseline for staleness against its
//! own suite's declared op set. Every op is normalized by its own file's
//! `calibrate/spin` time (so the check is machine-relative), ops slower
//! than `--floor-ns` in the baseline gate at `--tolerance` fractional
//! regression, sub-floor ops are informational only, the bayes
//! incremental-vs-full observe+propose speedup must stay above
//! `--min-speedup`, and the batched pool-EI scorer must beat the
//! per-candidate loop by `perf::EI_MIN_SPEEDUP`. Exit code 1 on any
//! regression, 2 on usage errors.

use std::process::ExitCode;
use wf_bench::perf;

struct Args {
    baseline: String,
    new: String,
    tolerance: f64,
    floor_ns: f64,
    min_speedup: f64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        baseline: String::new(),
        new: String::new(),
        tolerance: 0.35,
        floor_ns: 20_000.0,
        min_speedup: 2.0,
    };
    let mut positional = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tolerance" | "--floor-ns" | "--min-speedup" => {
                let flag = argv[i].clone();
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?
                    .parse::<f64>()
                    .map_err(|_| format!("{flag} needs a number"))?;
                match flag.as_str() {
                    "--tolerance" => args.tolerance = value,
                    "--floor-ns" => args.floor_ns = value,
                    _ => args.min_speedup = value,
                }
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            operand => {
                positional.push(operand.to_string());
                i += 1;
            }
        }
    }
    match positional.len() {
        2 => {
            args.baseline = positional.remove(0);
            args.new = positional.remove(0);
            Ok(args)
        }
        _ => Err("expected exactly two files: <baseline.json> <new.json>".into()),
    }
}

fn load(path: &str) -> Result<perf::BenchDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    perf::parse_json_doc(&text).map_err(|e| format!("{path}: {e}"))
}

/// The `wfctl bench` invocation that regenerates a baseline of `suite`.
fn refresh_hint(suite: &str, path: &str) -> String {
    match suite.strip_prefix("wfctl-bench-target/") {
        Some(keyword) => format!("wfctl bench --target {keyword} --out {path}"),
        None => format!("wfctl bench --out {path}"),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("perf_compare: {e}");
            eprintln!(
                "usage: perf_compare <baseline.json> <new.json> [--tolerance F] \
                 [--floor-ns NS] [--min-speedup X]"
            );
            return ExitCode::from(2);
        }
    };
    let (baseline, new) = match (load(&args.baseline), load(&args.new)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perf_compare: {e}");
            return ExitCode::from(2);
        }
    };
    // Different suites measure different op sets; diffing across them
    // would report every op as missing and gate on nothing real.
    if baseline.suite != new.suite {
        eprintln!(
            "perf_compare: suite mismatch — {} is {:?} but {} is {:?}",
            args.baseline, baseline.suite, args.new, new.suite
        );
        return ExitCode::from(2);
    }
    let declared = match perf::declared_ops_for(&baseline.suite) {
        Ok(declared) => declared,
        Err(e) => {
            eprintln!("perf_compare: {}: {e}", args.baseline);
            return ExitCode::from(2);
        }
    };
    // A baseline that predates the current suite would leave the new ops
    // ungated forever (the comparison iterates baseline ops): refuse it.
    let stale = perf::stale_ops_in(&declared, &baseline.ops);
    if !stale.is_empty() {
        eprintln!(
            "perf_compare: baseline {} is stale — it is missing {} declared op(s) of suite {:?}:",
            args.baseline,
            stale.len(),
            baseline.suite
        );
        for (op, n) in &stale {
            eprintln!("  {op} (n={n})");
        }
        eprintln!(
            "refresh it with `{}` and commit the diff",
            refresh_hint(&baseline.suite, &args.baseline)
        );
        return ExitCode::FAILURE;
    }
    let comparison = match perf::compare(
        &baseline.ops,
        &new.ops,
        args.tolerance,
        args.floor_ns,
        args.min_speedup,
        &args.baseline,
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perf_compare: {e}");
            return ExitCode::from(2);
        }
    };
    for line in &comparison.lines {
        println!("{line}");
    }
    if let Some(speedup) = comparison.bayes_speedup {
        println!(
            "bayes observe+propose @800: incremental is x{speedup:.1} faster than full refit \
             (required: x{:.1})",
            args.min_speedup
        );
    }
    if let Some(speedup) = comparison.pool_speedup {
        println!(
            "dispatch @8 workers: persistent pool is x{speedup:.2} vs per-wave spawn \
             (required: x{:.1})",
            perf::POOL_MIN_SPEEDUP
        );
    }
    if let Some(speedup) = comparison.ei_speedup {
        println!(
            "bayes pool EI @800: batched scorer is x{speedup:.1} vs the per-candidate loop \
             (required: x{:.1})",
            perf::EI_MIN_SPEEDUP
        );
    }
    if comparison.regressions.is_empty() {
        println!(
            "perf gate passed: no op regressed beyond x{:.2} (calibration-normalized)",
            1.0 + args.tolerance
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate FAILED:");
        for r in &comparison.regressions {
            eprintln!("  {r}");
        }
        eprintln!(
            "(refresh the baseline with `{}` if this change is intentional)",
            refresh_hint(&baseline.suite, &args.baseline)
        );
        ExitCode::FAILURE
    }
}
