//! Regeneration binary: see `wf_bench::run_fig10`.
fn main() {
    wf_bench::run_fig10();
}
