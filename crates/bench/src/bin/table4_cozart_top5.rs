//! Regeneration binary: see `wf_bench::run_table4`.
fn main() {
    wf_bench::run_table4();
}
