//! Criterion microbenches for the hot paths of the reproduction: DTM
//! training/inference, GP refits, dependency-aware sampling, feature
//! encoding, footprint evaluation, and a full pipeline evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use wf_configspace::Encoder;
use wf_deeptune::{Dtm, DtmConfig};
use wf_kconfig::{gen::synthesize, LinuxVersion, Solver};
use wf_nn::Matrix;
use wf_ossim::{App, AppId, SimOs};

fn bench_dtm(c: &mut Criterion) {
    let dim = 200;
    let mut rng = StdRng::seed_from_u64(1);
    let x = Matrix::from_fn(64, dim, |_, _| rng.random::<f64>());
    let y: Vec<f64> = (0..64).map(|_| rng.random::<f64>()).collect();
    let crashed: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();

    c.bench_function("dtm_train_batch_64x200", |b| {
        let mut model = Dtm::new(DtmConfig::for_input(dim));
        b.iter(|| black_box(model.train_batch(&x, &y, &crashed)));
    });
    c.bench_function("dtm_predict_64x200", |b| {
        let mut model = Dtm::new(DtmConfig::for_input(dim));
        b.iter(|| black_box(model.predict(&x)));
    });
}

fn bench_kconfig(c: &mut Criterion) {
    let model = synthesize(LinuxVersion::V2_6_13);
    c.bench_function("kconfig_solver_build_5338_symbols", |b| {
        b.iter(|| black_box(Solver::new(&model)));
    });
    let solver = Solver::new(&model);
    c.bench_function("kconfig_randconfig_5338_symbols", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(solver.randconfig(&mut rng)));
    });
    c.bench_function("kconfig_defconfig_5338_symbols", |b| {
        b.iter(|| black_box(solver.defconfig()));
    });
}

fn bench_platform(c: &mut Criterion) {
    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 200);
    let encoder = Encoder::new(&os.space);
    let app = App::by_id(AppId::Nginx);
    c.bench_function("encoder_encode_200_params", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = os.space.sample(&mut rng);
        b.iter(|| black_box(encoder.encode(&os.space, &cfg)));
    });
    c.bench_function("simos_evaluate_nginx", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter_batched(
            || os.space.sample(&mut rng),
            |cfg| {
                let mut inner = StdRng::seed_from_u64(5);
                black_box(os.evaluate(&app, &cfg, None, &mut inner))
            },
            BatchSize::SmallInput,
        );
    });
    let riscv = SimOs::linux_riscv_footprint();
    c.bench_function("footprint_eval_reduced_space", |b| {
        let cfg = riscv.space.default_config();
        b.iter(|| black_box(riscv.footprint.footprint_mb(&riscv.space, &cfg)));
    });
}

fn bench_bayes(c: &mut Criterion) {
    use wf_jobfile::Direction;
    use wf_search::{BayesOpt, Observation, SamplePolicy, SearchAlgorithm, SearchContext};
    let os = SimOs::unikraft_nginx();
    let encoder = Encoder::new(&os.space);
    let policy = SamplePolicy::Uniform;
    c.bench_function("gp_observe_refit_n64", |b| {
        b.iter_batched(
            || {
                let mut alg = BayesOpt::new();
                let mut rng = StdRng::seed_from_u64(6);
                let mut history = Vec::new();
                for i in 0..63 {
                    let ctx = SearchContext {
                        space: &os.space,
                        encoder: &encoder,
                        direction: Direction::Maximize,
                        policy: &policy,
                        history: &history,
                        iteration: i,
                    };
                    let cfg = ctx.policy.sample(ctx.space, &mut rng);
                    let obs = Observation::ok(cfg, rng.random::<f64>(), 1.0);
                    alg.observe(&ctx, &obs);
                    history.push(obs);
                }
                (alg, history)
            },
            |(mut alg, history)| {
                let mut rng = StdRng::seed_from_u64(7);
                let ctx = SearchContext {
                    space: &os.space,
                    encoder: &encoder,
                    direction: Direction::Maximize,
                    policy: &policy,
                    history: &history,
                    iteration: 63,
                };
                let cfg = ctx.policy.sample(ctx.space, &mut rng);
                let obs = Observation::ok(cfg, 1.0, 1.0);
                alg.observe(&ctx, &obs);
                black_box(alg.stats())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_worker_pool(c: &mut Criterion) {
    use wf_jobfile::Budget;
    use wf_platform::{Session, SessionSpec};
    use wf_search::RandomSearch;

    // Real-time cost of a full 16-candidate session at different pool
    // widths: the virtual clocks diverge by design, but the *host* time
    // shows what wave dispatch (threads + shared cache lock) costs.
    for workers in [1usize, 4] {
        c.bench_function(&format!("session_16_candidates_workers_{workers}"), |b| {
            b.iter_batched(
                || {
                    let os = SimOs::linux_runtime(LinuxVersion::V4_19, 64);
                    let app = App::by_id(AppId::Nginx);
                    Session::new(
                        os,
                        app,
                        Box::new(RandomSearch::new()),
                        SessionSpec {
                            budget: Budget {
                                iterations: Some(16),
                                time_seconds: None,
                            },
                            seed: 9,
                            workers,
                            ..SessionSpec::default()
                        },
                    )
                },
                |mut session| black_box(session.run()),
                BatchSize::SmallInput,
            );
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dtm, bench_kconfig, bench_platform, bench_bayes, bench_worker_pool
}
criterion_main!(benches);
