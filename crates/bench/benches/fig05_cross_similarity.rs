//! Regeneration bench target (harness = false): see `wf_bench::run_fig05`.
fn main() {
    wf_bench::run_fig05();
}
