//! Regeneration bench target (harness = false): see `wf_bench::run_table4`.
fn main() {
    wf_bench::run_table4();
}
