//! Regeneration bench target (harness = false): see `wf_bench::run_table2`.
fn main() {
    wf_bench::run_table2();
}
