//! Ablation of DeepTune's design choices (DESIGN.md §4).
//!
//! The paper's scoring function (Eq. 3) merges dissimilarity, predicted
//! uncertainty, and (per the prose) the model prediction, after a crash
//! filter. This bench removes each ingredient in turn and reruns the
//! Nginx/Linux search, reporting the best configuration found and the
//! crash rate — the ablated variants motivate the published design.

use wayfinder_core::report::Table;
use wayfinder_core::{AlgorithmChoice, Scale, SessionBuilder};
use wf_deeptune::{DeepTuneConfig, ScoreParams};
use wf_ossim::AppId;

struct Variant {
    name: &'static str,
    score: ScoreParams,
}

fn main() {
    let scale = Scale::from_env();
    let iters = scale.search_iterations;
    println!(
        "== Ablation: DeepTune scoring-function ingredients (Nginx/Linux, {iters} iterations) =="
    );
    let variants = [
        Variant {
            name: "full (paper)",
            score: ScoreParams::default(),
        },
        Variant {
            name: "no dissimilarity (alpha=0)",
            score: ScoreParams {
                alpha: 0.0,
                ..ScoreParams::default()
            },
        },
        Variant {
            name: "no uncertainty (alpha=1)",
            score: ScoreParams {
                alpha: 1.0,
                ..ScoreParams::default()
            },
        },
        Variant {
            name: "no crash filter",
            score: ScoreParams {
                crash_threshold: 1.1,
                ..ScoreParams::default()
            },
        },
        Variant {
            name: "no prediction term",
            score: ScoreParams {
                prediction_weight: 0.0,
                ..ScoreParams::default()
            },
        },
    ];
    let mut table = Table::new(&["Variant", "Best (req/s)", "Crash rate", "Iterations"]);
    for v in &variants {
        let mut best_sum = 0.0;
        let mut crash_sum = 0.0;
        for run in 0..scale.runs {
            let mut session = SessionBuilder::new()
                .app(AppId::Nginx)
                .algorithm(AlgorithmChoice::DeepTune)
                .deeptune_config(DeepTuneConfig {
                    score: v.score,
                    ..DeepTuneConfig::default()
                })
                .runtime_params(scale.runtime_params)
                .iterations(iters)
                .seed(0xab1a ^ run as u64)
                .build()
                .expect("ablation session");
            let outcome = session.run();
            best_sum += outcome.summary.best_metric.unwrap_or(0.0);
            crash_sum += outcome.summary.crash_rate;
        }
        let n = scale.runs as f64;
        table.row(&[
            v.name.to_string(),
            format!("{:.0}", best_sum / n),
            format!("{:.2}", crash_sum / n),
            iters.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("(means over {} run(s) per variant)", scale.runs);
}
