//! Regeneration bench target (harness = false): see `wf_bench::run_table1`.
fn main() {
    wf_bench::run_table1();
}
