//! Regeneration bench target (harness = false): see `wf_bench::run_fig11`.
fn main() {
    wf_bench::run_fig11();
}
