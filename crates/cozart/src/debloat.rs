//! The debloating step: unexercised options out, dependency closure kept.

use crate::trace::WorkloadTrace;
use wf_configspace::{ConfigSpace, Configuration, Tristate, Value};
use wf_kconfig::{Assignment, KconfigModel, Solver, SymValue, SymbolType};

/// The output of a Cozart pass.
#[derive(Clone, Debug)]
pub struct Debloat {
    /// The reduced compile-time configuration space: only the options
    /// still enabled in the baseline remain explorable.
    pub space: ConfigSpace,
    /// The baseline configuration over [`Debloat::space`].
    pub baseline: Configuration,
    /// Symbols enabled in the baseline.
    pub kept: usize,
    /// Bool/tristate symbols the pass disabled.
    pub disabled: usize,
    /// `kept / (kept + disabled)`.
    pub kept_fraction: f64,
}

/// Runs the debloating pass: seed every unexercised bool/tristate to `n`,
/// resolve the `depends`/`select` closure, and build the reduced space.
///
/// The result is always Kconfig-valid: requirements of exercised features
/// are resurrected by the solver's select floors, exactly like Cozart's
/// own dependency completion.
pub fn debloat(model: &KconfigModel, trace: &WorkloadTrace) -> Debloat {
    let solver = Solver::new(model);
    let defaults = solver.defconfig();
    // Seed: exercised symbols keep their defaults; everything else off.
    let mut seed = Assignment::new();
    for sym in model.symbols() {
        if !matches!(sym.stype, SymbolType::Bool | SymbolType::Tristate) {
            continue;
        }
        if trace.exercises(&sym.name) {
            if let Some(v) = defaults.get(&sym.name) {
                seed.set(sym.name.clone(), v.clone());
            }
            // Exercised symbols that default to n are forced on: the
            // trace proves the workload needs them.
            if !defaults.tristate(&sym.name).enabled() {
                seed.set_tri(sym.name.clone(), Tristate::Yes);
            }
        } else {
            seed.set_tri(sym.name.clone(), Tristate::No);
        }
    }
    let baseline_asg = solver.olddefconfig(&seed);
    debug_assert!(solver.validate(&baseline_asg).is_empty());

    // Count and collect survivors.
    let mut kept_names: Vec<&str> = Vec::new();
    let mut disabled = 0usize;
    for sym in model.symbols() {
        match sym.stype {
            SymbolType::Bool | SymbolType::Tristate => {
                if baseline_asg.tristate(&sym.name).enabled() {
                    kept_names.push(&sym.name);
                } else {
                    disabled += 1;
                }
            }
            // Value-typed symbols of kept subsystems stay explorable.
            _ => kept_names.push(&sym.name),
        }
    }
    let kept = kept_names.len();

    // Reduced space: the survivors, with the baseline as default.
    let full = wf_kconfig::space::compile_space(model);
    let mut space = full.subset(&kept_names);
    let mut baseline = space.default_config();
    for i in 0..space.len() {
        let name = space.spec(i).name.clone();
        let value = match baseline_asg.get(&name) {
            Some(SymValue::Tri(t)) => match space.spec(i).kind {
                wf_configspace::ParamKind::Bool => Value::Bool(*t == Tristate::Yes),
                _ => Value::Tristate(*t),
            },
            Some(SymValue::Int(v)) => Value::Int(*v),
            _ => continue,
        };
        if space.spec(i).kind.admits(&value) {
            baseline.set(i, value);
            // The reduced space explores *around* the baseline.
            let spec = space.spec(i).clone();
            let idx = i;
            let _ = idx;
            let _ = spec;
        }
    }
    // Make the baseline the space's default so samplers center on it.
    for i in 0..space.len() {
        let v = baseline.get(i);
        let name = space.spec(i).name.clone();
        space.pin(&name, v);
    }
    // Pinning sets `fixed`; undo that — Cozart reduces the space, it does
    // not freeze it. Only the default should move.
    let names: Vec<String> = space.specs().iter().map(|s| s.name.clone()).collect();
    let mut rebuilt = ConfigSpace::new();
    for name in &names {
        let idx = space.index_of(name).expect("name from the space itself");
        let mut spec = space.spec(idx).clone();
        spec.fixed = full
            .index_of(name)
            .map(|i| full.spec(i).fixed)
            .unwrap_or(false);
        rebuilt.add(spec);
    }
    let baseline = rebuilt.default_config();

    let total = kept + disabled;
    Debloat {
        space: rebuilt,
        baseline,
        kept,
        disabled,
        kept_fraction: kept as f64 / total.max(1) as f64,
    }
}

/// The throughput uplift of a debloated kernel relative to the full
/// default ("we observed a 31 % increase in throughput compared to the
/// baseline, similar to what was reported in the Cozart evaluation").
///
/// Smaller kernels win through cache locality and shorter fast paths;
/// the effect saturates as the kernel approaches its essential core.
pub fn performance_uplift(kept_fraction: f64) -> f64 {
    let f = kept_fraction.clamp(0.0, 1.0);
    1.0 + 0.45 * (1.0 - f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_kconfig::gen::{synthesize, LinuxVersion};

    fn setup() -> (KconfigModel, Debloat) {
        let model = synthesize(LinuxVersion::V2_6_13);
        let trace = WorkloadTrace::record(&model, "nginx");
        let d = debloat(&model, &trace);
        (model, d)
    }

    #[test]
    fn reduces_the_space_substantially() {
        let (model, d) = setup();
        assert!(
            d.space.len() < model.len() / 2,
            "{} of {}",
            d.space.len(),
            model.len()
        );
        assert!(d.kept_fraction < 0.5, "kept fraction {}", d.kept_fraction);
        assert!(d.disabled > d.kept, "most of the kernel is unused");
    }

    #[test]
    fn baseline_keeps_essentials_enabled() {
        let (_, d) = setup();
        for name in ["PROC_FS", "SYSFS", "VIRTIO_NET", "EPOLL", "FUTEX"] {
            let idx = d
                .space
                .index_of(name)
                .unwrap_or_else(|| panic!("{name} kept"));
            let v = d.baseline.get(idx);
            assert!(
                matches!(
                    v,
                    Value::Bool(true) | Value::Tristate(Tristate::Yes | Tristate::Module)
                ),
                "{name}: {v:?}"
            );
        }
    }

    #[test]
    fn baseline_is_kconfig_valid() {
        let model = synthesize(LinuxVersion::V2_6_13);
        let trace = WorkloadTrace::record(&model, "redis");
        let d = debloat(&model, &trace);
        // Rebuild an Assignment from the reduced baseline and validate it
        // against the *full* model (absent symbols read as n).
        let solver = Solver::new(&model);
        let mut asg = solver.defconfig();
        for (i, spec) in d.space.specs().iter().enumerate() {
            match d.baseline.get(i) {
                Value::Bool(b) => asg.set_tri(
                    spec.name.clone(),
                    if b { Tristate::Yes } else { Tristate::No },
                ),
                Value::Tristate(t) => asg.set_tri(spec.name.clone(), t),
                Value::Int(v) => asg.set(spec.name.clone(), SymValue::Int(v)),
                _ => {}
            }
        }
        for sym in model.symbols() {
            if matches!(sym.stype, SymbolType::Bool | SymbolType::Tristate)
                && d.space.index_of(&sym.name).is_none()
            {
                asg.set_tri(sym.name.clone(), Tristate::No);
            }
        }
        let fixed = solver.olddefconfig(&asg);
        assert!(solver.validate(&fixed).is_empty());
    }

    #[test]
    fn uplift_matches_cozart_magnitude() {
        // A typical nginx debloat keeps ~30% of options -> ~1.31x.
        let u = performance_uplift(0.31);
        assert!((1.28..1.34).contains(&u), "{u}");
        assert_eq!(performance_uplift(1.0), 1.0);
        assert!(performance_uplift(0.2) > performance_uplift(0.5));
    }

    #[test]
    fn debloat_is_deterministic() {
        let model = synthesize(LinuxVersion::V2_6_13);
        let trace = WorkloadTrace::record(&model, "nginx");
        let a = debloat(&model, &trace);
        let b = debloat(&model, &trace);
        assert_eq!(a.kept, b.kept);
        assert_eq!(a.baseline.fingerprint(), b.baseline.fingerprint());
    }
}
