//! Simulated dynamic-analysis traces.
//!
//! Real Cozart boots an instrumented kernel, runs the workload, and
//! records which compilation units execute. The simulated trace produces
//! the same artifact — the set of exercised Kconfig symbols — from ground
//! truth: the curated essentials every workload touches, the
//! subsystem gates, and a deterministic per-workload sample of the
//! generated symbols (a web server exercises a different driver slice
//! than a database, but both exercise far less than the kernel ships).

use std::collections::HashSet;
use wf_kconfig::{KconfigModel, SymbolType};

/// A recorded workload trace: the exercised symbol set.
#[derive(Clone, Debug)]
pub struct WorkloadTrace {
    exercised: HashSet<String>,
    workload: String,
}

/// Symbols every booting workload exercises (mirrors the essential set the
/// crash rules protect).
const ALWAYS_EXERCISED: &[&str] = &[
    "EXPERT",
    "SMP",
    "MMU",
    "NET",
    "PCI",
    "BLOCK",
    "SECURITY",
    "CRYPTO",
    "LIBS",
    "64BIT",
    "INET",
    "PROC_FS",
    "SYSFS",
    "TMPFS",
    "EXT4_FS",
    "VIRTIO_NET",
    "VIRTIO_BLK",
    "SERIAL_8250",
    "EPOLL",
    "FUTEX",
    "SHMEM",
    "AIO",
    "PRINTK",
    "KALLSYMS",
    "SWAP",
    "SECCOMP",
    "RANDOMIZE_BASE",
    "STACKPROTECTOR",
    "HIGH_RES_TIMERS",
    "NO_HZ_IDLE",
    "PREEMPT_VOLUNTARY",
    "CPU_FREQ",
    "CPU_IDLE",
    "TRANSPARENT_HUGEPAGE",
    "COMPACTION",
    "MODULES",
    "NR_CPUS",
    "HZ",
    "LOG_BUF_SHIFT",
    "RCU_FANOUT",
];

/// Per-mille of generated symbols a workload exercises.
const GENERATED_SHARE_PERMILLE: u64 = 80;

impl WorkloadTrace {
    /// Records a trace of `workload` (e.g. `"nginx"`) against a kernel
    /// model. Deterministic per (model, workload).
    pub fn record(model: &KconfigModel, workload: &str) -> Self {
        let mut exercised = HashSet::new();
        for name in ALWAYS_EXERCISED {
            if model.by_name(name).is_some() {
                exercised.insert((*name).to_string());
            }
        }
        for sym in model.symbols() {
            if !matches!(sym.stype, SymbolType::Bool | SymbolType::Tristate) {
                continue;
            }
            // Deterministic per-workload slice of the generated symbols.
            let h = fnv(&format!("{workload}:{}", sym.name));
            if h % 1000 < GENERATED_SHARE_PERMILLE {
                exercised.insert(sym.name.clone());
            }
        }
        WorkloadTrace {
            exercised,
            workload: workload.to_string(),
        }
    }

    /// The traced workload name.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Whether a symbol was exercised.
    pub fn exercises(&self, name: &str) -> bool {
        self.exercised.contains(name)
    }

    /// Number of exercised symbols.
    pub fn len(&self) -> usize {
        self.exercised.len()
    }

    /// Returns `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.exercised.is_empty()
    }

    /// Iterates over the exercised symbol names in sorted order.
    ///
    /// The backing `HashSet`'s order varies run to run; sorting keeps
    /// debloat decisions and reports built from a trace deterministic.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        let mut names: Vec<&str> = self.exercised.iter().map(String::as_str).collect();
        names.sort_unstable();
        names.into_iter()
    }
}

fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_kconfig::gen::{synthesize, LinuxVersion};

    #[test]
    fn traces_are_deterministic_and_small() {
        let model = synthesize(LinuxVersion::V2_6_13);
        let a = WorkloadTrace::record(&model, "nginx");
        let b = WorkloadTrace::record(&model, "nginx");
        assert_eq!(a.len(), b.len());
        // A workload exercises a small fraction of the kernel.
        assert!(a.len() < model.len() / 5, "{} of {}", a.len(), model.len());
        assert!(a.len() > 100);
    }

    #[test]
    fn different_workloads_exercise_different_slices() {
        let model = synthesize(LinuxVersion::V2_6_13);
        let nginx = WorkloadTrace::record(&model, "nginx");
        let redis = WorkloadTrace::record(&model, "redis");
        let only_nginx = nginx.iter().filter(|s| !redis.exercises(s)).count();
        assert!(
            only_nginx > 50,
            "workload slices should differ: {only_nginx}"
        );
    }

    #[test]
    fn essentials_are_always_exercised() {
        let model = synthesize(LinuxVersion::V2_6_13);
        let t = WorkloadTrace::record(&model, "sqlite");
        for name in ["PROC_FS", "SYSFS", "VIRTIO_BLK", "EPOLL", "FUTEX"] {
            assert!(t.exercises(name), "{name}");
        }
    }
}
