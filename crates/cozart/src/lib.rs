//! `wf-cozart`: a Cozart-style compile-time debloater (§4.4, Fig. 11).
//!
//! Cozart [Kuo et al., SIGMETRICS'20] uses dynamic analysis to trace the
//! kernel features a workload exercises and compiles everything else out,
//! shrinking both the image and the remaining configuration space, with a
//! throughput side benefit. The paper uses Cozart output as the *baseline*
//! Wayfinder optimizes further through runtime options.
//!
//! This reproduction keeps exactly the part of Cozart that matters to
//! Wayfinder — the output: a valid, reduced baseline configuration and the
//! smaller space around it.
//!
//! * [`trace`] — the simulated dynamic-analysis trace: which Kconfig
//!   symbols a workload exercises (essentials plus a deterministic
//!   per-workload subset);
//! * [`debloat`](mod@debloat) — seeds every unexercised option to `n`, resolves the
//!   `depends`/`select` closure with the Kconfig solver, and returns the
//!   reduced space + baseline.

pub mod debloat;
pub mod trace;

pub use debloat::{debloat, performance_uplift, Debloat};
pub use trace::WorkloadTrace;
