//! Assignments and tristate expression evaluation.
//!
//! An [`Assignment`] is the Kconfig equivalent of a `.config` file: a map
//! from symbol name to a concrete [`SymValue`]. Expression evaluation
//! follows Kconfig semantics: `&&` is minimum, `||` is maximum, `!` flips
//! `y`/`n` and fixes `m`, and `=`/`!=` compare the canonical string forms of
//! their operands.

use crate::ast::{Expr, KconfigModel, SymbolType};
use std::collections::HashMap;
use std::fmt;
use wf_configspace::Tristate;

/// A concrete value assigned to one symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymValue {
    /// Value of a `bool` or `tristate` symbol.
    Tri(Tristate),
    /// Value of an `int` or `hex` symbol.
    Int(i64),
    /// Value of a `string` symbol.
    Str(String),
}

impl SymValue {
    /// The tristate view used in dependency expressions. Non-tristate
    /// symbols count as present (`y`) when non-zero / non-empty, matching
    /// how the kernel treats them in the rare boolean contexts they appear
    /// in.
    pub fn as_tristate(&self) -> Tristate {
        match self {
            SymValue::Tri(t) => *t,
            SymValue::Int(v) => {
                if *v != 0 {
                    Tristate::Yes
                } else {
                    Tristate::No
                }
            }
            SymValue::Str(s) => {
                if s.is_empty() {
                    Tristate::No
                } else {
                    Tristate::Yes
                }
            }
        }
    }

    /// The canonical string form used by `=` / `!=` comparisons (and by the
    /// `.config` emitter).
    pub fn canonical(&self) -> String {
        match self {
            SymValue::Tri(t) => t.to_string(),
            SymValue::Int(v) => v.to_string(),
            SymValue::Str(s) => s.clone(),
        }
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// A complete or partial symbol assignment (a `.config`).
///
/// Missing symbols evaluate to `n` / empty, exactly like symbols absent
/// from a real `.config`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Assignment {
    values: HashMap<String, SymValue>,
}

impl Assignment {
    /// Creates an empty assignment (everything `n`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of explicitly assigned symbols.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sets a symbol's value.
    pub fn set(&mut self, name: impl Into<String>, value: SymValue) {
        self.values.insert(name.into(), value);
    }

    /// Sets a tristate value (convenience).
    pub fn set_tri(&mut self, name: impl Into<String>, t: Tristate) {
        self.set(name, SymValue::Tri(t));
    }

    /// Looks a value up.
    pub fn get(&self, name: &str) -> Option<&SymValue> {
        self.values.get(name)
    }

    /// The tristate view of a symbol; missing symbols are `n`.
    pub fn tristate(&self, name: &str) -> Tristate {
        self.values
            .get(name)
            .map(SymValue::as_tristate)
            .unwrap_or(Tristate::No)
    }

    /// The integer view of a symbol, if it has one.
    pub fn int(&self, name: &str) -> Option<i64> {
        match self.values.get(name) {
            Some(SymValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Returns `true` if the symbol is enabled (`m` or `y`).
    pub fn enabled(&self, name: &str) -> bool {
        self.tristate(name).enabled()
    }

    /// Iterates over `(name, value)` pairs in sorted symbol order.
    ///
    /// Sorted for the same reason `to_dotconfig` sorts: the backing
    /// `HashMap`'s order varies run to run, and callers fold these
    /// pairs into reports and fingerprints that must be deterministic.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SymValue)> {
        let mut pairs: Vec<(&str, &SymValue)> =
            self.values.iter().map(|(k, v)| (k.as_str(), v)).collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        pairs.into_iter()
    }

    /// Emits `.config`-style lines, sorted by symbol name for determinism.
    pub fn to_dotconfig(&self, model: &KconfigModel) -> String {
        let mut names: Vec<&str> = self.values.keys().map(String::as_str).collect();
        names.sort_unstable();
        let mut out = String::new();
        for name in names {
            let v = &self.values[name];
            match v {
                SymValue::Tri(Tristate::No) => {
                    out.push_str(&format!("# CONFIG_{name} is not set\n"));
                }
                SymValue::Tri(t) => out.push_str(&format!("CONFIG_{name}={t}\n")),
                SymValue::Int(i) => {
                    let hex = model
                        .by_name(name)
                        .map(|s| s.stype == SymbolType::Hex)
                        .unwrap_or(false);
                    if hex {
                        out.push_str(&format!("CONFIG_{name}={i:#x}\n"));
                    } else {
                        out.push_str(&format!("CONFIG_{name}={i}\n"));
                    }
                }
                SymValue::Str(s) => out.push_str(&format!("CONFIG_{name}=\"{s}\"\n")),
            }
        }
        out
    }
}

/// Evaluates a dependency expression against an assignment.
pub fn eval(expr: &Expr, asg: &Assignment) -> Tristate {
    match expr {
        Expr::Sym(name) => asg.tristate(name),
        Expr::Lit(t) => *t,
        Expr::Not(e) => eval(e, asg).not(),
        Expr::And(a, b) => eval(a, asg).and(eval(b, asg)),
        Expr::Or(a, b) => eval(a, asg).or(eval(b, asg)),
        Expr::Eq(a, b) => {
            if canonical_operand(a, asg) == canonical_operand(b, asg) {
                Tristate::Yes
            } else {
                Tristate::No
            }
        }
        Expr::Neq(a, b) => {
            if canonical_operand(a, asg) != canonical_operand(b, asg) {
                Tristate::Yes
            } else {
                Tristate::No
            }
        }
    }
}

/// The string form Kconfig uses for `=` comparisons: symbols compare by
/// their canonical value, literals by their letter, compound expressions by
/// their tristate result.
fn canonical_operand(expr: &Expr, asg: &Assignment) -> String {
    match expr {
        Expr::Sym(name) => asg
            .get(name)
            .map(SymValue::canonical)
            .unwrap_or_else(|| "n".to_string()),
        Expr::Lit(t) => t.to_string(),
        other => eval(other, asg).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn asg(pairs: &[(&str, SymValue)]) -> Assignment {
        let mut a = Assignment::new();
        for (name, v) in pairs {
            a.set(*name, v.clone());
        }
        a
    }

    #[test]
    fn missing_symbols_are_n() {
        let a = Assignment::new();
        assert_eq!(a.tristate("NET"), Tristate::No);
        assert!(!a.enabled("NET"));
    }

    #[test]
    fn eval_and_or_not() {
        let a = asg(&[
            ("A", SymValue::Tri(Tristate::Yes)),
            ("B", SymValue::Tri(Tristate::Module)),
        ]);
        let e = parse_expr("A && B").unwrap();
        assert_eq!(eval(&e, &a), Tristate::Module);
        let e = parse_expr("A || C").unwrap();
        assert_eq!(eval(&e, &a), Tristate::Yes);
        let e = parse_expr("!B").unwrap();
        assert_eq!(eval(&e, &a), Tristate::Module);
        let e = parse_expr("!A").unwrap();
        assert_eq!(eval(&e, &a), Tristate::No);
    }

    #[test]
    fn eval_eq_compares_canonical_strings() {
        let a = asg(&[
            ("HZ", SymValue::Int(1000)),
            ("ARCH", SymValue::Str("x86".into())),
            ("NET", SymValue::Tri(Tristate::Yes)),
        ]);
        assert_eq!(eval(&parse_expr("NET = y").unwrap(), &a), Tristate::Yes);
        assert_eq!(eval(&parse_expr("NET != y").unwrap(), &a), Tristate::No);
        assert_eq!(eval(&parse_expr("NET = m").unwrap(), &a), Tristate::No);
        // Missing symbol compares as "n".
        assert_eq!(eval(&parse_expr("MISSING = n").unwrap(), &a), Tristate::Yes);
    }

    #[test]
    fn int_and_string_symbols_in_boolean_context() {
        let a = asg(&[
            ("HZ", SymValue::Int(1000)),
            ("ZERO", SymValue::Int(0)),
            ("NAME", SymValue::Str("gcc".into())),
            ("EMPTY", SymValue::Str(String::new())),
        ]);
        assert_eq!(a.tristate("HZ"), Tristate::Yes);
        assert_eq!(a.tristate("ZERO"), Tristate::No);
        assert_eq!(a.tristate("NAME"), Tristate::Yes);
        assert_eq!(a.tristate("EMPTY"), Tristate::No);
    }

    #[test]
    fn dotconfig_output_format() {
        let mut m = KconfigModel::new();
        m.add(crate::ast::Symbol::new("NET", SymbolType::Bool));
        m.add(crate::ast::Symbol::new("DMA_ADDR", SymbolType::Hex));
        let a = asg(&[
            ("NET", SymValue::Tri(Tristate::Yes)),
            ("USB", SymValue::Tri(Tristate::No)),
            ("DMA_ADDR", SymValue::Int(0xff)),
            ("CMDLINE", SymValue::Str("quiet".into())),
        ]);
        let text = a.to_dotconfig(&m);
        assert!(text.contains("CONFIG_NET=y\n"));
        assert!(text.contains("# CONFIG_USB is not set\n"));
        assert!(text.contains("CONFIG_DMA_ADDR=0xff\n"));
        assert!(text.contains("CONFIG_CMDLINE=\"quiet\"\n"));
    }

    #[test]
    fn dotconfig_is_sorted_and_deterministic() {
        let m = KconfigModel::new();
        let a = asg(&[
            ("B", SymValue::Tri(Tristate::Yes)),
            ("A", SymValue::Tri(Tristate::Yes)),
        ]);
        let t1 = a.to_dotconfig(&m);
        let t2 = a.to_dotconfig(&m);
        assert_eq!(t1, t2);
        assert!(t1.find("CONFIG_A=y").unwrap() < t1.find("CONFIG_B=y").unwrap());
    }
}
