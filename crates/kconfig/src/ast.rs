//! Abstract syntax for the Kconfig-subset language.

use std::collections::HashMap;
use std::fmt;
use wf_configspace::Tristate;

/// The type of a Kconfig symbol (Table 1 distinguishes all five).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SymbolType {
    /// `bool`: y or n.
    Bool,
    /// `tristate`: y, m, or n.
    Tristate,
    /// `int` with an optional range.
    Int,
    /// `hex` with an optional range.
    Hex,
    /// Free-form `string`.
    String,
}

impl fmt::Display for SymbolType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SymbolType::Bool => "bool",
            SymbolType::Tristate => "tristate",
            SymbolType::Int => "int",
            SymbolType::Hex => "hex",
            SymbolType::String => "string",
        };
        f.write_str(s)
    }
}

/// A dependency expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Reference to a symbol's value.
    Sym(String),
    /// Literal `y`/`m`/`n`.
    Lit(Tristate),
    /// Negation.
    Not(Box<Expr>),
    /// Kconfig AND (minimum).
    And(Box<Expr>, Box<Expr>),
    /// Kconfig OR (maximum).
    Or(Box<Expr>, Box<Expr>),
    /// Equality test `A = B` (y if equal, n otherwise).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality test `A != B`.
    Neq(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Symbol names referenced by this expression.
    pub fn referenced(&self, out: &mut Vec<String>) {
        match self {
            Expr::Sym(s) => out.push(s.clone()),
            Expr::Lit(_) => {}
            Expr::Not(e) => e.referenced(out),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Eq(a, b) | Expr::Neq(a, b) => {
                a.referenced(out);
                b.referenced(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Sym(s) => f.write_str(s),
            Expr::Lit(t) => write!(f, "{t}"),
            Expr::Not(e) => write!(f, "!{}", Paren(e)),
            Expr::And(a, b) => write!(f, "{} && {}", Paren(a), Paren(b)),
            Expr::Or(a, b) => write!(f, "{} || {}", Paren(a), Paren(b)),
            Expr::Eq(a, b) => write!(f, "{}={}", Paren(a), Paren(b)),
            Expr::Neq(a, b) => write!(f, "{}!={}", Paren(a), Paren(b)),
        }
    }
}

/// Helper that parenthesizes compound sub-expressions when displayed.
struct Paren<'a>(&'a Expr);

impl fmt::Display for Paren<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Expr::Sym(_) | Expr::Lit(_) | Expr::Not(_) => write!(f, "{}", self.0),
            _ => write!(f, "({})", self.0),
        }
    }
}

/// A default clause: value plus optional condition.
#[derive(Clone, Debug, PartialEq)]
pub struct Default {
    /// The default value (interpretation depends on the symbol type).
    pub value: DefaultValue,
    /// Optional `if` condition.
    pub condition: Option<Expr>,
}

/// The value of a default clause.
#[derive(Clone, Debug, PartialEq)]
pub enum DefaultValue {
    /// Tristate/boolean default.
    Tri(Tristate),
    /// Integer (also used for hex) default.
    Int(i64),
    /// String default.
    Str(String),
    /// Default copied from another symbol.
    Sym(String),
}

/// A `select` clause: forcibly raises the target's lower bound.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// Target symbol name.
    pub target: String,
    /// Optional `if` condition.
    pub condition: Option<Expr>,
}

/// A configuration symbol.
#[derive(Clone, Debug, PartialEq)]
pub struct Symbol {
    /// Name without the `CONFIG_` prefix (as written in Kconfig files).
    pub name: String,
    /// Value type.
    pub stype: SymbolType,
    /// User-visible prompt; promptless symbols are only set via selects and
    /// defaults.
    pub prompt: Option<String>,
    /// `depends on` expression.
    pub depends: Option<Expr>,
    /// `select` clauses.
    pub selects: Vec<Select>,
    /// `default` clauses, first match wins.
    pub defaults: Vec<Default>,
    /// `range lo hi` for int/hex symbols.
    pub range: Option<(i64, i64)>,
    /// Help text.
    pub help: String,
    /// Menu path, e.g. `"Networking support/Networking options"`.
    pub menu: String,
}

impl Symbol {
    /// Creates a minimal symbol.
    pub fn new(name: impl Into<String>, stype: SymbolType) -> Self {
        Self {
            name: name.into(),
            stype,
            prompt: None,
            depends: None,
            selects: Vec::new(),
            defaults: Vec::new(),
            range: None,
            help: String::new(),
            menu: String::new(),
        }
    }
}

/// A parsed or generated Kconfig model: a symbol table plus menu structure.
#[derive(Clone, Debug, Default)]
pub struct KconfigModel {
    symbols: Vec<Symbol>,
    index: HashMap<String, usize>,
}

impl KconfigModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a symbol, returning its index.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn add(&mut self, symbol: Symbol) -> usize {
        assert!(
            !self.index.contains_key(&symbol.name),
            "duplicate symbol {}",
            symbol.name
        );
        let idx = self.symbols.len();
        self.index.insert(symbol.name.clone(), idx);
        self.symbols.push(symbol);
        idx
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the model has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Symbol by index.
    pub fn symbol(&self, idx: usize) -> &Symbol {
        &self.symbols[idx]
    }

    /// All symbols in declaration order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Resolves a name to an index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Looks up a symbol by name.
    pub fn by_name(&self, name: &str) -> Option<&Symbol> {
        self.index_of(name).map(|i| &self.symbols[i])
    }

    /// Counts symbols per type (the compile-time columns of Table 1).
    pub fn type_census(&self) -> TypeCensus {
        let mut c = TypeCensus::default();
        for s in &self.symbols {
            match s.stype {
                SymbolType::Bool => c.bool_ += 1,
                SymbolType::Tristate => c.tristate += 1,
                SymbolType::Int => c.int += 1,
                SymbolType::Hex => c.hex += 1,
                SymbolType::String => c.string += 1,
            }
        }
        c
    }
}

/// Per-type symbol counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TypeCensus {
    /// `bool` symbols.
    pub bool_: usize,
    /// `tristate` symbols.
    pub tristate: usize,
    /// `string` symbols.
    pub string: usize,
    /// `hex` symbols.
    pub hex: usize,
    /// `int` symbols.
    pub int: usize,
}

impl TypeCensus {
    /// Total number of symbols.
    pub fn total(&self) -> usize {
        self.bool_ + self.tristate + self.string + self.hex + self.int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_add_and_lookup() {
        let mut m = KconfigModel::new();
        m.add(Symbol::new("NET", SymbolType::Bool));
        m.add(Symbol::new("INET", SymbolType::Tristate));
        assert_eq!(m.len(), 2);
        assert_eq!(m.by_name("INET").unwrap().stype, SymbolType::Tristate);
        assert!(m.by_name("MISSING").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_symbol_panics() {
        let mut m = KconfigModel::new();
        m.add(Symbol::new("NET", SymbolType::Bool));
        m.add(Symbol::new("NET", SymbolType::Bool));
    }

    #[test]
    fn census_counts_types() {
        let mut m = KconfigModel::new();
        m.add(Symbol::new("A", SymbolType::Bool));
        m.add(Symbol::new("B", SymbolType::Tristate));
        m.add(Symbol::new("C", SymbolType::Tristate));
        m.add(Symbol::new("D", SymbolType::Int));
        let c = m.type_census();
        assert_eq!(c.bool_, 1);
        assert_eq!(c.tristate, 2);
        assert_eq!(c.int, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn expr_display_parenthesizes() {
        let e = Expr::And(
            Box::new(Expr::Sym("A".into())),
            Box::new(Expr::Or(
                Box::new(Expr::Sym("B".into())),
                Box::new(Expr::Not(Box::new(Expr::Sym("C".into())))),
            )),
        );
        assert_eq!(e.to_string(), "A && (B || !C)");
    }

    #[test]
    fn expr_referenced_symbols() {
        let e = Expr::And(
            Box::new(Expr::Sym("A".into())),
            Box::new(Expr::Eq(
                Box::new(Expr::Sym("B".into())),
                Box::new(Expr::Lit(Tristate::Yes)),
            )),
        );
        let mut out = Vec::new();
        e.referenced(&mut out);
        assert_eq!(out, vec!["A".to_string(), "B".to_string()]);
    }
}
