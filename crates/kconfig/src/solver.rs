//! Dependency-aware configuration solving.
//!
//! Mirrors the kernel's own config tools:
//!
//! * [`Solver::defconfig`] — every symbol at its (conditional) default,
//!   like `make defconfig` on an empty tree;
//! * [`Solver::olddefconfig`] — completes / repairs a partial assignment,
//!   like `make olddefconfig`;
//! * [`Solver::randconfig`] — samples a *dependency-valid* random
//!   configuration, like `make randconfig`;
//! * [`Solver::validate`] — lists every constraint violation of an
//!   assignment.
//!
//! Validity here means "KConfig accepts it". The paper's point (§2.2) is
//! that roughly a third of such configurations still fail to build, boot,
//! or run — that failure model lives in `wf-ossim`, not here.

use crate::ast::{DefaultValue, KconfigModel, SymbolType};
use crate::eval::{eval, Assignment, SymValue};
use rand::Rng;
use std::collections::HashMap;
use std::fmt;
use wf_configspace::Tristate;

/// Default range assumed for `int`/`hex` symbols that declare none.
pub const UNRANGED_INT: (i64, i64) = (0, 1 << 20);

/// One constraint violation found by [`Solver::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The assignment names a symbol the model does not declare.
    UnknownSymbol {
        /// Offending name.
        name: String,
    },
    /// The value's type does not match the symbol's declared type.
    TypeMismatch {
        /// Offending symbol.
        name: String,
        /// Declared type.
        expected: SymbolType,
    },
    /// An `int`/`hex` value lies outside the declared range.
    OutOfRange {
        /// Offending symbol.
        name: String,
        /// Inclusive range bounds.
        range: (i64, i64),
        /// The out-of-range value.
        got: i64,
    },
    /// A tristate value exceeds what its dependencies allow.
    DependsViolated {
        /// Offending symbol.
        name: String,
        /// Maximum value the dependencies admit.
        limit: Tristate,
        /// The assigned value.
        got: Tristate,
    },
    /// A tristate value is below what `select` clauses force.
    SelectViolated {
        /// Offending symbol.
        name: String,
        /// Minimum value forced by active selects.
        floor: Tristate,
        /// The assigned value.
        got: Tristate,
    },
    /// A `m` value is assigned while module support is disabled.
    ModulesDisabled {
        /// Offending symbol.
        name: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnknownSymbol { name } => write!(f, "{name}: unknown symbol"),
            Violation::TypeMismatch { name, expected } => {
                write!(f, "{name}: value does not match type {expected}")
            }
            Violation::OutOfRange { name, range, got } => {
                write!(f, "{name}: {got} outside range {}..{}", range.0, range.1)
            }
            Violation::DependsViolated { name, limit, got } => {
                write!(f, "{name}: value {got} exceeds dependency limit {limit}")
            }
            Violation::SelectViolated { name, floor, got } => {
                write!(f, "{name}: value {got} below select floor {floor}")
            }
            Violation::ModulesDisabled { name } => {
                write!(f, "{name}: =m while MODULES is disabled")
            }
        }
    }
}

/// A dependency solver bound to one Kconfig model.
///
/// Construction precomputes the reverse `select` index so that repeated
/// sampling over a 20 000-symbol model stays linear per configuration.
pub struct Solver<'m> {
    model: &'m KconfigModel,
    /// `selected_by[i]` lists `(selector_idx, select_clause_idx)` pairs whose
    /// target is symbol `i`.
    selected_by: Vec<Vec<(usize, usize)>>,
}

impl<'m> Solver<'m> {
    /// Builds a solver for `model`.
    pub fn new(model: &'m KconfigModel) -> Self {
        let mut selected_by: Vec<Vec<(usize, usize)>> = vec![Vec::new(); model.len()];
        let by_name: HashMap<&str, usize> = model
            .symbols()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.as_str(), i))
            .collect();
        for (i, sym) in model.symbols().iter().enumerate() {
            for (j, sel) in sym.selects.iter().enumerate() {
                if let Some(&t) = by_name.get(sel.target.as_str()) {
                    selected_by[t].push((i, j));
                }
            }
        }
        Self { model, selected_by }
    }

    /// The model this solver serves.
    pub fn model(&self) -> &KconfigModel {
        self.model
    }

    /// Upper bound the dependencies place on symbol `idx` under `asg`.
    pub fn visibility(&self, idx: usize, asg: &Assignment) -> Tristate {
        match &self.model.symbol(idx).depends {
            Some(e) => eval(e, asg),
            None => Tristate::Yes,
        }
    }

    /// Lower bound active `select` clauses place on symbol `idx` under `asg`.
    pub fn select_floor(&self, idx: usize, asg: &Assignment) -> Tristate {
        let mut floor = Tristate::No;
        for &(selector, clause) in &self.selected_by[idx] {
            let sym = self.model.symbol(selector);
            let strength = asg.tristate(&sym.name);
            if strength == Tristate::No {
                continue;
            }
            let cond = match &sym.selects[clause].condition {
                Some(e) => eval(e, asg),
                None => Tristate::Yes,
            };
            floor = floor.or(strength.and(cond));
        }
        floor
    }

    /// Whether module support is enabled (symbol `MODULES`, if declared).
    pub fn modules_enabled(&self, asg: &Assignment) -> bool {
        match self.model.index_of("MODULES") {
            Some(_) => asg.tristate("MODULES").enabled(),
            // Model without a MODULES symbol: modules unconditionally legal.
            None => true,
        }
    }

    /// The declared or assumed range of an `int`/`hex` symbol.
    pub fn range_of(&self, idx: usize) -> (i64, i64) {
        self.model.symbol(idx).range.unwrap_or(UNRANGED_INT)
    }

    /// Lists every violation of `asg` against the model.
    pub fn validate(&self, asg: &Assignment) -> Vec<Violation> {
        let mut out = Vec::new();
        for (name, value) in asg.iter() {
            if self.model.index_of(name).is_none() {
                out.push(Violation::UnknownSymbol { name: name.into() });
            } else if !type_matches(self.model.by_name(name).unwrap().stype, value) {
                out.push(Violation::TypeMismatch {
                    name: name.into(),
                    expected: self.model.by_name(name).unwrap().stype,
                });
            }
        }
        let modules_ok = self.modules_enabled(asg);
        for (idx, sym) in self.model.symbols().iter().enumerate() {
            match sym.stype {
                SymbolType::Bool | SymbolType::Tristate => {
                    let got = asg.tristate(&sym.name);
                    if got == Tristate::Module && sym.name != "MODULES" {
                        if sym.stype == SymbolType::Bool {
                            // Caught as TypeMismatch only if explicitly
                            // assigned; tristate view of bool can't be m.
                        } else if !modules_ok {
                            out.push(Violation::ModulesDisabled {
                                name: sym.name.clone(),
                            });
                        }
                    }
                    let limit = self.upper_limit(idx, asg);
                    if got > limit {
                        out.push(Violation::DependsViolated {
                            name: sym.name.clone(),
                            limit,
                            got,
                        });
                    }
                    let floor = self.select_floor(idx, asg);
                    let floor = self.promote_for_bool(idx, floor);
                    if got < floor {
                        out.push(Violation::SelectViolated {
                            name: sym.name.clone(),
                            floor,
                            got,
                        });
                    }
                }
                SymbolType::Int | SymbolType::Hex => {
                    if let Some(v) = asg.int(&sym.name) {
                        let range = self.range_of(idx);
                        if v < range.0 || v > range.1 {
                            out.push(Violation::OutOfRange {
                                name: sym.name.clone(),
                                range,
                                got: v,
                            });
                        }
                    }
                }
                SymbolType::String => {}
            }
        }
        out
    }

    /// Produces the all-defaults configuration (`make defconfig`).
    pub fn defconfig(&self) -> Assignment {
        self.olddefconfig(&Assignment::new())
    }

    /// Completes / repairs `seed` into a valid configuration
    /// (`make olddefconfig`).
    ///
    /// Explicit values in `seed` are kept when the constraints allow and
    /// clamped otherwise. Symbols absent from `seed` take their defaults.
    /// Runs to a fixpoint (selects may cascade), capped at a few passes.
    pub fn olddefconfig(&self, seed: &Assignment) -> Assignment {
        let mut asg = Assignment::new();
        // Pass 0 seeds defaults in declaration order so later symbols see
        // earlier ones; subsequent passes re-clamp until stable.
        for pass in 0..8 {
            let mut changed = false;
            for (idx, sym) in self.model.symbols().iter().enumerate() {
                let next = match sym.stype {
                    SymbolType::Bool | SymbolType::Tristate => {
                        let preferred = match seed.get(&sym.name) {
                            Some(SymValue::Tri(t)) => Some(*t),
                            _ => None,
                        };
                        SymValue::Tri(self.resolve_tristate(idx, preferred, &asg))
                    }
                    SymbolType::Int | SymbolType::Hex => {
                        let range = self.range_of(idx);
                        let preferred = match seed.get(&sym.name) {
                            Some(SymValue::Int(v)) => Some(*v),
                            _ => None,
                        };
                        let v = preferred
                            .or_else(|| self.default_int(idx, &asg))
                            .unwrap_or(range.0);
                        SymValue::Int(v.clamp(range.0, range.1))
                    }
                    SymbolType::String => {
                        let preferred = match seed.get(&sym.name) {
                            Some(SymValue::Str(s)) => Some(s.clone()),
                            _ => None,
                        };
                        SymValue::Str(
                            preferred
                                .or_else(|| self.default_str(idx, &asg))
                                .unwrap_or_default(),
                        )
                    }
                };
                if asg.get(&sym.name) != Some(&next) {
                    asg.set(sym.name.clone(), next);
                    changed = true;
                }
            }
            if !changed && pass > 0 {
                break;
            }
        }
        asg
    }

    /// Samples a dependency-valid random configuration (`make randconfig`).
    ///
    /// Every symbol visible under the partial assignment built so far gets a
    /// uniformly random value from its currently legal set; invisible
    /// symbols fall to their select floor. A final [`Solver::olddefconfig`]
    /// pass repairs any forward-reference damage, so the result always
    /// passes [`Solver::validate`].
    pub fn randconfig(&self, rng: &mut impl Rng) -> Assignment {
        let mut asg = Assignment::new();
        // Decide MODULES first so tristate sampling knows whether m is legal.
        if let Some(i) = self.model.index_of("MODULES") {
            let on = rng.random::<bool>();
            asg.set_tri(
                self.model.symbol(i).name.clone(),
                if on { Tristate::Yes } else { Tristate::No },
            );
        }
        for (idx, sym) in self.model.symbols().iter().enumerate() {
            if sym.name == "MODULES" {
                continue;
            }
            match sym.stype {
                SymbolType::Bool | SymbolType::Tristate => {
                    let limit = self.upper_limit(idx, &asg);
                    let floor = self.promote_for_bool(idx, self.select_floor(idx, &asg));
                    let options =
                        legal_tristates(sym.stype, floor, limit, self.modules_enabled(&asg));
                    let pick = options[rng.random_range(0..options.len())];
                    asg.set_tri(sym.name.clone(), pick);
                }
                SymbolType::Int | SymbolType::Hex => {
                    let (lo, hi) = self.range_of(idx);
                    asg.set(sym.name.clone(), SymValue::Int(rng.random_range(lo..=hi)));
                }
                SymbolType::String => {
                    let v = self.default_str(idx, &asg).unwrap_or_default();
                    asg.set(sym.name.clone(), SymValue::Str(v));
                }
            }
        }
        self.olddefconfig(&asg)
    }

    /// Upper bound for a tristate value: dependencies, promoted for bools.
    fn upper_limit(&self, idx: usize, asg: &Assignment) -> Tristate {
        let v = self.visibility(idx, asg);
        // A select can raise a symbol above its visibility (that is exactly
        // how broken real-world configs arise; Kconfig permits it and warns).
        let floor = self.select_floor(idx, asg);
        let limit = v.or(floor);
        self.promote_for_bool(idx, limit)
    }

    /// Bools cannot hold `m`: promote a module-level bound to `y`.
    fn promote_for_bool(&self, idx: usize, t: Tristate) -> Tristate {
        if self.model.symbol(idx).stype == SymbolType::Bool && t == Tristate::Module {
            Tristate::Yes
        } else {
            t
        }
    }

    /// Resolves a bool/tristate symbol given an optional preferred value.
    fn resolve_tristate(
        &self,
        idx: usize,
        preferred: Option<Tristate>,
        asg: &Assignment,
    ) -> Tristate {
        let limit = self.upper_limit(idx, asg);
        let floor = self.promote_for_bool(idx, self.select_floor(idx, asg));
        let base = preferred
            .or_else(|| self.default_tri(idx, asg))
            .unwrap_or(Tristate::No);
        let mut v = base.min(limit).max(floor);
        let sym = self.model.symbol(idx);
        if v == Tristate::Module && (sym.stype == SymbolType::Bool || !self.modules_enabled(asg)) {
            v = if limit >= Tristate::Yes || floor > Tristate::No {
                Tristate::Yes
            } else {
                Tristate::No
            };
        }
        v
    }

    /// First matching tristate default.
    fn default_tri(&self, idx: usize, asg: &Assignment) -> Option<Tristate> {
        for d in &self.model.symbol(idx).defaults {
            let cond = match &d.condition {
                Some(e) => eval(e, asg),
                None => Tristate::Yes,
            };
            if cond == Tristate::No {
                continue;
            }
            return match &d.value {
                DefaultValue::Tri(t) => Some(t.and(cond)),
                DefaultValue::Sym(s) => Some(asg.tristate(s).and(cond)),
                _ => None,
            };
        }
        None
    }

    /// First matching integer default.
    fn default_int(&self, idx: usize, asg: &Assignment) -> Option<i64> {
        for d in &self.model.symbol(idx).defaults {
            let cond = match &d.condition {
                Some(e) => eval(e, asg),
                None => Tristate::Yes,
            };
            if cond == Tristate::No {
                continue;
            }
            return match &d.value {
                DefaultValue::Int(v) => Some(*v),
                DefaultValue::Sym(s) => asg.int(s),
                _ => None,
            };
        }
        None
    }

    /// First matching string default.
    fn default_str(&self, idx: usize, asg: &Assignment) -> Option<String> {
        for d in &self.model.symbol(idx).defaults {
            let cond = match &d.condition {
                Some(e) => eval(e, asg),
                None => Tristate::Yes,
            };
            if cond == Tristate::No {
                continue;
            }
            return match &d.value {
                DefaultValue::Str(s) => Some(s.clone()),
                DefaultValue::Sym(s) => asg.get(s).map(SymValue::canonical),
                _ => None,
            };
        }
        None
    }
}

/// Whether a value is type-compatible with a symbol type.
fn type_matches(stype: SymbolType, value: &SymValue) -> bool {
    matches!(
        (stype, value),
        (
            SymbolType::Bool,
            SymValue::Tri(Tristate::No | Tristate::Yes)
        ) | (SymbolType::Tristate, SymValue::Tri(_))
            | (SymbolType::Int, SymValue::Int(_))
            | (SymbolType::Hex, SymValue::Int(_))
            | (SymbolType::String, SymValue::Str(_))
    )
}

/// The legal values for a bool/tristate symbol given floor/limit bounds.
fn legal_tristates(
    stype: SymbolType,
    floor: Tristate,
    limit: Tristate,
    modules: bool,
) -> Vec<Tristate> {
    let mut out: Vec<Tristate> = Tristate::ALL
        .into_iter()
        .filter(|t| *t >= floor && *t <= limit.max(floor))
        .filter(|t| !(stype == SymbolType::Bool && *t == Tristate::Module))
        .filter(|t| *t != Tristate::Module || modules)
        .collect();
    if out.is_empty() {
        out.push(floor);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const MODEL: &str = r#"
menu "Networking support"
config NET
    bool "Networking support"
    default y
config INET
    tristate "TCP/IP networking"
    depends on NET
    default y
config TCP_FASTOPEN
    bool "TCP Fast Open"
    depends on INET
    default n
config NET_BACKLOG
    int "Backlog size"
    depends on NET
    range 16 65536
    default 128
endmenu
config MODULES
    bool "Enable loadable module support"
    default y
config CRYPTO
    tristate "Cryptographic API"
    default m
config NET_TLS
    tristate "TLS protocol"
    depends on INET
    select CRYPTO
    default n
"#;

    fn solver_model() -> KconfigModel {
        parse(MODEL).expect("model parses")
    }

    #[test]
    fn defconfig_respects_defaults_and_deps() {
        let m = solver_model();
        let s = Solver::new(&m);
        let a = s.defconfig();
        assert_eq!(a.tristate("NET"), Tristate::Yes);
        assert_eq!(a.tristate("INET"), Tristate::Yes);
        assert_eq!(a.tristate("TCP_FASTOPEN"), Tristate::No);
        assert_eq!(a.int("NET_BACKLOG"), Some(128));
        assert!(s.validate(&a).is_empty(), "{:?}", s.validate(&a));
    }

    #[test]
    fn disabling_net_pulls_down_dependents() {
        let m = solver_model();
        let s = Solver::new(&m);
        let mut seed = Assignment::new();
        seed.set_tri("NET", Tristate::No);
        let a = s.olddefconfig(&seed);
        assert_eq!(a.tristate("NET"), Tristate::No);
        assert_eq!(a.tristate("INET"), Tristate::No);
        assert!(s.validate(&a).is_empty());
    }

    #[test]
    fn select_raises_target() {
        let m = solver_model();
        let s = Solver::new(&m);
        let mut seed = Assignment::new();
        seed.set_tri("NET_TLS", Tristate::Yes);
        seed.set_tri("CRYPTO", Tristate::No);
        let a = s.olddefconfig(&seed);
        // NET_TLS=y selects CRYPTO, so CRYPTO cannot stay n.
        assert_eq!(a.tristate("NET_TLS"), Tristate::Yes);
        assert!(a.tristate("CRYPTO") >= Tristate::Yes);
        assert!(s.validate(&a).is_empty(), "{:?}", s.validate(&a));
    }

    #[test]
    fn validate_flags_depends_violation() {
        let m = solver_model();
        let s = Solver::new(&m);
        let mut a = s.defconfig();
        a.set_tri("NET", Tristate::No);
        // INET stayed y but its dependency is now n.
        let v = s.validate(&a);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DependsViolated { name, .. } if name == "INET")));
    }

    #[test]
    fn validate_flags_out_of_range() {
        let m = solver_model();
        let s = Solver::new(&m);
        let mut a = s.defconfig();
        a.set("NET_BACKLOG", SymValue::Int(7));
        let v = s.validate(&a);
        assert!(v.iter().any(
            |x| matches!(x, Violation::OutOfRange { name, got: 7, .. } if name == "NET_BACKLOG")
        ));
    }

    #[test]
    fn validate_flags_unknown_and_type_mismatch() {
        let m = solver_model();
        let s = Solver::new(&m);
        let mut a = s.defconfig();
        a.set("NOPE", SymValue::Tri(Tristate::Yes));
        a.set("NET_BACKLOG", SymValue::Str("many".into()));
        let v = s.validate(&a);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UnknownSymbol { name } if name == "NOPE")));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::TypeMismatch { name, .. } if name == "NET_BACKLOG")));
    }

    #[test]
    fn randconfig_is_always_valid() {
        let m = solver_model();
        let s = Solver::new(&m);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let a = s.randconfig(&mut rng);
            let v = s.validate(&a);
            assert!(v.is_empty(), "violations: {v:?}\n{}", a.to_dotconfig(&m));
        }
    }

    #[test]
    fn randconfig_explores_the_space() {
        let m = solver_model();
        let s = Solver::new(&m);
        let mut rng = StdRng::seed_from_u64(7);
        let mut saw_fastopen = false;
        let mut saw_no_net = false;
        let mut backlogs = std::collections::HashSet::new();
        for _ in 0..300 {
            let a = s.randconfig(&mut rng);
            saw_fastopen |= a.tristate("TCP_FASTOPEN") == Tristate::Yes;
            saw_no_net |= a.tristate("NET") == Tristate::No;
            backlogs.insert(a.int("NET_BACKLOG").unwrap());
        }
        assert!(saw_fastopen);
        assert!(saw_no_net);
        assert!(backlogs.len() > 50);
    }

    #[test]
    fn modules_disabled_forbids_m() {
        let m = solver_model();
        let s = Solver::new(&m);
        let mut seed = Assignment::new();
        seed.set_tri("MODULES", Tristate::No);
        seed.set_tri("CRYPTO", Tristate::Module);
        let a = s.olddefconfig(&seed);
        assert_ne!(a.tristate("CRYPTO"), Tristate::Module);
        assert!(s.validate(&a).is_empty());
    }
}
