//! Boot-time configuration: the kernel command line.
//!
//! Table 1 counts 231 boot-time options for Linux 6.0. This module provides
//! a curated set of real kernel command-line parameters (the ones
//! performance-tuning guides actually touch: `mitigations`, `isolcpus`,
//! `transparent_hugepage`, ...) padded with deterministic driver-style
//! `module.param` options up to the per-version count, mirroring how the
//! real kernel's boot-option population is dominated by per-driver
//! parameters.

use crate::gen::LinuxVersion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wf_configspace::{ParamKind, ParamSpec, Stage, Value};

/// Builds the boot-time (kernel command line) parameter list for a version.
///
/// The length equals [`LinuxVersion::boot_option_count`]; generation is
/// deterministic per version.
///
/// # Examples
///
/// ```
/// use wf_kconfig::cmdline::boot_options;
/// use wf_kconfig::gen::LinuxVersion;
///
/// let opts = boot_options(LinuxVersion::V6_0);
/// assert_eq!(opts.len(), 231);
/// assert!(opts.iter().any(|p| p.name == "mitigations"));
/// ```
pub fn boot_options(version: LinuxVersion) -> Vec<ParamSpec> {
    let mut out = curated();
    let target = version.boot_option_count();
    assert!(
        out.len() <= target,
        "curated boot options exceed the per-version count"
    );
    let mut rng = StdRng::seed_from_u64(version.seed() ^ 0xb007);
    let stems = [
        "debug",
        "max_queues",
        "napi_weight",
        "ring_size",
        "timeout_ms",
        "irq_affinity",
        "power_save",
        "dma32",
        "msi",
        "poll_interval",
    ];
    let mut i = 0;
    while out.len() < target {
        let stem = stems[rng.random_range(0..stems.len())];
        let name = format!("drv{i}.{stem}");
        let spec = if rng.random::<f64>() < 0.5 {
            ParamSpec::new(name, ParamKind::Bool, Stage::BootTime)
        } else {
            ParamSpec::new(name, ParamKind::int(0, 4096), Stage::BootTime)
                .with_default(Value::Int(0))
        };
        out.push(spec.with_doc("Synthetic per-driver boot parameter."));
        i += 1;
    }
    out
}

/// The curated, real-named kernel command-line parameters.
fn curated() -> Vec<ParamSpec> {
    let mut out = Vec::new();
    let mut flag = |name: &str, doc: &str| {
        out.push(
            ParamSpec::new(name, ParamKind::Bool, Stage::BootTime)
                .with_default(Value::Bool(false))
                .with_doc(doc),
        );
    };
    flag("quiet", "Disable most log messages during boot.");
    flag("nosmt", "Disable symmetric multithreading.");
    flag("nopti", "Disable page table isolation.");
    flag("nospectre_v2", "Disable Spectre v2 mitigations.");
    flag("nopcid", "Disable PCID support.");
    flag("nosmap", "Disable SMAP.");
    flag("nosmep", "Disable SMEP.");
    flag("threadirqs", "Force threaded interrupt handlers.");
    flag("skew_tick", "Skew timer ticks across CPUs.");
    flag("nohlt", "Disable the HLT idle loop.");
    flag("noreplace-smp", "Do not replace SMP instructions.");
    flag(
        "norandmaps",
        "Disable address space layout randomization of mmaps.",
    );
    flag("nohibernate", "Disable hibernation.");
    flag("nomodeset", "Disable kernel mode setting.");

    let mut int = |name: &str, lo: i64, hi: i64, def: i64, doc: &str| {
        out.push(
            ParamSpec::new(name, ParamKind::int(lo, hi), Stage::BootTime)
                .with_default(Value::Int(def))
                .with_doc(doc),
        );
    };
    int("loglevel", 0, 7, 7, "Console log level.");
    int(
        "processor.max_cstate",
        0,
        9,
        9,
        "Deepest ACPI C-state allowed.",
    );
    int("hugepages", 0, 4096, 0, "Number of persistent huge pages.");
    int("nmi_watchdog", 0, 1, 1, "Enable the NMI watchdog.");
    int(
        "watchdog_thresh",
        1,
        60,
        10,
        "Hard/soft lockup threshold (s).",
    );
    int("audit", 0, 1, 1, "Enable the audit subsystem.");
    int("maxcpus", 1, 512, 512, "Maximum CPUs brought up at boot.");
    int("swiotlb", 0, 1 << 20, 32768, "Software IO TLB slabs.");
    int(
        "log_buf_len",
        1 << 12,
        1 << 25,
        1 << 17,
        "Kernel log buffer size (bytes).",
    );
    int(
        "printk.devkmsg_ratelimit",
        0,
        1000,
        5,
        "Rate limit for /dev/kmsg writers.",
    );

    let mut choice = |name: &str, choices: Vec<&str>, def: usize, doc: &str| {
        out.push(
            ParamSpec::new(name, ParamKind::choices(choices), Stage::BootTime)
                .with_default(Value::Choice(def))
                .with_doc(doc),
        );
    };
    choice(
        "mitigations",
        vec!["auto", "auto,nosmt", "off"],
        0,
        "CPU vulnerability mitigation level.",
    );
    choice(
        "transparent_hugepage",
        vec!["always", "madvise", "never"],
        1,
        "Transparent hugepage policy.",
    );
    choice(
        "pti",
        vec!["auto", "on", "off"],
        0,
        "Page table isolation control.",
    );
    choice(
        "spectre_v2",
        vec!["auto", "on", "off", "retpoline"],
        0,
        "Spectre v2 mitigation selection.",
    );
    choice(
        "idle",
        vec!["default", "poll", "halt", "nomwait"],
        0,
        "Idle loop selection.",
    );
    choice(
        "intel_pstate",
        vec!["active", "passive", "disable"],
        0,
        "Intel P-state driver mode.",
    );
    choice(
        "elevator",
        vec!["mq-deadline", "kyber", "bfq", "none"],
        0,
        "Default block I/O scheduler.",
    );
    choice(
        "clocksource",
        vec!["tsc", "hpet", "acpi_pm"],
        0,
        "Override the default clocksource.",
    );
    choice(
        "preempt",
        vec!["none", "voluntary", "full"],
        1,
        "Preemption mode selection.",
    );
    choice(
        "numa_balancing",
        vec!["enable", "disable"],
        0,
        "Automatic NUMA balancing.",
    );
    choice(
        "isolcpus",
        vec!["", "0-1", "0-3", "managed_irq,0-1"],
        0,
        "Isolate CPUs from the scheduler.",
    );
    choice(
        "nohz_full",
        vec!["", "1-7", "2-15"],
        0,
        "Adaptive-tick CPUs.",
    );
    choice(
        "rcu_nocbs",
        vec!["", "1-7", "2-15"],
        0,
        "Offload RCU callbacks from these CPUs.",
    );
    choice(
        "default_hugepagesz",
        vec!["2M", "1G"],
        0,
        "Default huge page size.",
    );
    choice(
        "random.trust_cpu",
        vec!["on", "off"],
        0,
        "Trust the CPU RNG for early entropy.",
    );
    choice(
        "tsc",
        vec!["default", "reliable", "unstable"],
        0,
        "TSC stability override.",
    );
    choice(
        "init_on_alloc",
        vec!["0", "1"],
        1,
        "Zero pages/slabs on allocation.",
    );
    choice(
        "init_on_free",
        vec!["0", "1"],
        0,
        "Zero pages/slabs on free.",
    );
    choice(
        "selinux",
        vec!["0", "1"],
        1,
        "Enable/disable SELinux at boot.",
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_version() {
        for v in [
            LinuxVersion::V2_6_13,
            LinuxVersion::V4_19,
            LinuxVersion::V6_0,
        ] {
            assert_eq!(boot_options(v).len(), v.boot_option_count());
        }
    }

    #[test]
    fn v6_has_231_boot_options_like_table1() {
        assert_eq!(boot_options(LinuxVersion::V6_0).len(), 231);
    }

    #[test]
    fn all_are_boot_stage_with_unique_names() {
        let opts = boot_options(LinuxVersion::V4_19);
        let mut names = std::collections::HashSet::new();
        for p in &opts {
            assert_eq!(p.stage, Stage::BootTime);
            assert!(names.insert(p.name.clone()), "duplicate {}", p.name);
            assert!(p.kind.admits(&p.default));
        }
    }

    #[test]
    fn deterministic_per_version() {
        let a = boot_options(LinuxVersion::V4_19);
        let b = boot_options(LinuxVersion::V4_19);
        assert_eq!(a, b);
    }

    #[test]
    fn curated_parameters_present() {
        let opts = boot_options(LinuxVersion::V4_19);
        for name in [
            "quiet",
            "mitigations",
            "isolcpus",
            "transparent_hugepage",
            "loglevel",
        ] {
            assert!(opts.iter().any(|p| p.name == name), "{name} missing");
        }
    }
}
