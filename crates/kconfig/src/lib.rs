//! `wf-kconfig`: a Kconfig-style compile-time configuration model.
//!
//! Linux's compile-time configuration is defined by the Kconfig language:
//! ~20 000 typed symbols with dependency expressions, `select` edges,
//! conditional defaults, and ranges (paper §2.1, Table 1). This crate
//! provides everything the Wayfinder reproduction needs from that world:
//!
//! * [`ast`] — symbols, types, dependency expressions, models;
//! * [`parser`] — a parser for the Kconfig-subset language;
//! * [`emit`] — the inverse: model → Kconfig text (round-trip tested);
//! * [`eval`] — assignments (`.config`s) and tristate expression
//!   evaluation with Kconfig's min/max semantics;
//! * [`solver`] — `defconfig` / `olddefconfig` / `randconfig` /
//!   validation, with `select` floors and dependency ceilings;
//! * [`gen`] — deterministic synthetic Linux models per kernel version,
//!   reproducing Fig. 1's option-count growth and Table 1's exact v6.0
//!   type census;
//! * [`cmdline`] — the boot-time (kernel command line) option population;
//! * [`space`] — conversion into searchable [`wf_configspace`] spaces.
//!
//! "Valid" here means KConfig-valid; the paper's observation that about a
//! third of such configurations still crash is modelled in `wf-ossim`.

pub mod ast;
pub mod cmdline;
pub mod emit;
pub mod eval;
pub mod gen;
pub mod parser;
pub mod solver;
pub mod space;

pub use ast::{Expr, KconfigModel, Symbol, SymbolType, TypeCensus};
pub use eval::{Assignment, SymValue};
pub use gen::{synthesize, LinuxVersion};
pub use parser::{parse, ParseError};
pub use solver::{Solver, Violation};
