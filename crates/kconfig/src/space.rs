//! Conversion of a Kconfig model into a searchable [`ConfigSpace`].
//!
//! The search algorithms operate on typed [`ConfigSpace`]s; this module
//! maps each Kconfig symbol to a compile-time parameter:
//!
//! * `bool`/`tristate` → the corresponding kinds;
//! * `int`/`hex` → ranged integers (log-scaled when the range spans ≥ 3
//!   orders of magnitude), using [`crate::solver::UNRANGED_INT`] when the
//!   symbol declares no range;
//! * `string` → a single-choice enum pinned to its default — §3.4: string
//!   parameters are not explored beyond automatically extractable values;
//! * promptless symbols → pinned to their default. They are derived
//!   symbols (set via `select`/`default`), not user choices, so varying
//!   them directly would produce configurations no user could write.
//!
//! Defaults come from the solver's `defconfig`, so conditional defaults
//! resolve the same way `make defconfig` would.

use crate::ast::{KconfigModel, SymbolType};
use crate::eval::SymValue;
use crate::solver::{Solver, UNRANGED_INT};
use wf_configspace::{ConfigSpace, ParamKind, ParamSpec, Stage, Tristate, Value};

/// Builds the compile-time configuration space of a Kconfig model.
///
/// # Examples
///
/// ```
/// use wf_kconfig::gen::{synthesize, LinuxVersion};
/// use wf_kconfig::space::compile_space;
///
/// let model = synthesize(LinuxVersion::V2_6_13);
/// let space = compile_space(&model);
/// assert_eq!(space.len(), model.len());
/// ```
pub fn compile_space(model: &KconfigModel) -> ConfigSpace {
    let solver = Solver::new(model);
    let defaults = solver.defconfig();
    let mut space = ConfigSpace::new();
    for (idx, sym) in model.symbols().iter().enumerate() {
        let kind = match sym.stype {
            SymbolType::Bool => ParamKind::Bool,
            SymbolType::Tristate => ParamKind::Tristate,
            SymbolType::Int | SymbolType::Hex => {
                let (lo, hi) = sym.range.unwrap_or(UNRANGED_INT);
                if sym.stype == SymbolType::Hex {
                    ParamKind::Hex { min: lo, max: hi }
                } else if lo >= 0 && (hi - lo) >= 1000 {
                    ParamKind::log_int(lo, hi)
                } else {
                    ParamKind::int(lo, hi)
                }
            }
            SymbolType::String => {
                let def = match defaults.get(&sym.name) {
                    Some(SymValue::Str(s)) => s.clone(),
                    _ => String::new(),
                };
                ParamKind::choices(vec![def])
            }
        };
        let default = match defaults.get(&sym.name) {
            Some(SymValue::Tri(t)) => match sym.stype {
                SymbolType::Bool => Value::Bool(*t == Tristate::Yes),
                _ => Value::Tristate(*t),
            },
            Some(SymValue::Int(v)) => {
                let (lo, hi) = solver.range_of(idx);
                Value::Int((*v).clamp(lo, hi))
            }
            Some(SymValue::Str(_)) => Value::Choice(0),
            None => kind.canonical_default(),
        };
        let mut spec = ParamSpec::new(sym.name.clone(), kind, Stage::CompileTime)
            .with_default(default)
            .with_doc(sym.help.clone());
        if sym.prompt.is_none() || sym.stype == SymbolType::String {
            spec = spec.pinned();
        }
        space.add(spec);
    }
    space
}

/// Builds the boot-time configuration space for a Linux version.
pub fn boot_space(version: crate::gen::LinuxVersion) -> ConfigSpace {
    let mut space = ConfigSpace::new();
    for spec in crate::cmdline::boot_options(version) {
        space.add(spec);
    }
    space
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Default, DefaultValue, Symbol};
    use crate::gen::{synthesize, LinuxVersion};

    #[test]
    fn space_census_matches_model_census() {
        let model = synthesize(LinuxVersion::V2_6_13);
        let space = compile_space(&model);
        let mc = model.type_census();
        let sc = space.census();
        assert_eq!(sc.compile_bool, mc.bool_);
        assert_eq!(sc.compile_tristate, mc.tristate);
        assert_eq!(sc.compile_string, mc.string);
        assert_eq!(sc.compile_hex, mc.hex);
        assert_eq!(sc.compile_int, mc.int);
        assert_eq!(sc.boot, 0);
        assert_eq!(sc.runtime, 0);
    }

    #[test]
    fn defaults_resolve_via_defconfig() {
        let mut m = KconfigModel::new();
        let mut a = Symbol::new("A", SymbolType::Bool);
        a.prompt = Some("A".into());
        a.defaults.push(Default {
            value: DefaultValue::Tri(Tristate::Yes),
            condition: None,
        });
        m.add(a);
        let mut b = Symbol::new("B", SymbolType::Int);
        b.prompt = Some("B".into());
        b.range = Some((1, 10));
        b.defaults.push(Default {
            value: DefaultValue::Int(7),
            condition: None,
        });
        m.add(b);
        let space = compile_space(&m);
        let d = space.default_config();
        assert_eq!(d.by_name(&space, "A"), Some(Value::Bool(true)));
        assert_eq!(d.by_name(&space, "B"), Some(Value::Int(7)));
    }

    #[test]
    fn promptless_and_string_symbols_are_pinned() {
        let mut m = KconfigModel::new();
        let hidden = Symbol::new("HIDDEN", SymbolType::Bool);
        m.add(hidden);
        let mut s = Symbol::new("CMDLINE", SymbolType::String);
        s.prompt = Some("Cmdline".into());
        m.add(s);
        let space = compile_space(&m);
        assert!(space.spec(space.index_of("HIDDEN").unwrap()).fixed);
        assert!(space.spec(space.index_of("CMDLINE").unwrap()).fixed);
    }

    #[test]
    fn wide_ranges_become_log_scaled() {
        let mut m = KconfigModel::new();
        let mut s = Symbol::new("BUF", SymbolType::Int);
        s.prompt = Some("Buffer".into());
        s.range = Some((0, 1 << 20));
        m.add(s);
        let space = compile_space(&m);
        match &space.spec(0).kind {
            ParamKind::Int { log_scale, .. } => assert!(log_scale),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn boot_space_counts_match() {
        let space = boot_space(LinuxVersion::V6_0);
        assert_eq!(space.census().boot, 231);
    }
}
