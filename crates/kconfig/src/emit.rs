//! Emission of a [`KconfigModel`] back to Kconfig text.
//!
//! The emitted text uses exactly the grammar subset the [`crate::parser`]
//! accepts, so `parse(emit(model))` reproduces the model (up to symbol
//! order, which emission groups by menu). The property tests in
//! `tests/roundtrip.rs` rely on this.

use crate::ast::{DefaultValue, KconfigModel, Symbol, SymbolType};
use std::fmt::Write as _;

/// Emits the model as Kconfig text.
///
/// Symbols are grouped by their menu path (in first-occurrence order); menu
/// blocks are opened and closed as the path changes.
pub fn emit(model: &KconfigModel) -> String {
    let mut out = String::new();
    // Group symbol indices by menu path, preserving first-occurrence order.
    let mut menu_order: Vec<&str> = Vec::new();
    for sym in model.symbols() {
        if !menu_order.contains(&sym.menu.as_str()) {
            menu_order.push(&sym.menu);
        }
    }

    let mut open: Vec<&str> = Vec::new();
    for menu in menu_order {
        let parts: Vec<&str> = if menu.is_empty() {
            Vec::new()
        } else {
            menu.split('/').collect()
        };
        // Close menus not shared with the next path, open the new ones.
        let common = open
            .iter()
            .zip(parts.iter())
            .take_while(|(a, b)| a == b)
            .count();
        for _ in common..open.len() {
            out.push_str("endmenu\n");
        }
        open.truncate(common);
        for part in &parts[common..] {
            let _ = writeln!(out, "menu \"{part}\"");
            open.push(part);
        }
        for sym in model.symbols().iter().filter(|s| s.menu == menu) {
            emit_symbol(&mut out, sym);
        }
    }
    for _ in 0..open.len() {
        out.push_str("endmenu\n");
    }
    out
}

fn emit_symbol(out: &mut String, sym: &Symbol) {
    let _ = writeln!(out, "config {}", sym.name);
    let type_kw = sym.stype.to_string();
    match &sym.prompt {
        Some(p) => {
            let _ = writeln!(out, "    {type_kw} \"{p}\"");
        }
        None => {
            let _ = writeln!(out, "    {type_kw}");
        }
    }
    if let Some(dep) = &sym.depends {
        let _ = writeln!(out, "    depends on {dep}");
    }
    for sel in &sym.selects {
        match &sel.condition {
            Some(c) => {
                let _ = writeln!(out, "    select {} if {c}", sel.target);
            }
            None => {
                let _ = writeln!(out, "    select {}", sel.target);
            }
        }
    }
    for d in &sym.defaults {
        let val = match &d.value {
            DefaultValue::Tri(t) => t.to_string(),
            DefaultValue::Int(v) if sym.stype == SymbolType::Hex => format!("{v:#x}"),
            DefaultValue::Int(v) => v.to_string(),
            DefaultValue::Str(s) => format!("\"{s}\""),
            DefaultValue::Sym(s) => s.clone(),
        };
        match &d.condition {
            Some(c) => {
                let _ = writeln!(out, "    default {val} if {c}");
            }
            None => {
                let _ = writeln!(out, "    default {val}");
            }
        }
    }
    if let Some((lo, hi)) = sym.range {
        if sym.stype == SymbolType::Hex {
            let _ = writeln!(out, "    range {lo:#x} {hi:#x}");
        } else {
            let _ = writeln!(out, "    range {lo} {hi}");
        }
    }
    if !sym.help.is_empty() {
        let _ = writeln!(out, "    help");
        let _ = writeln!(out, "      {}", sym.help);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Default, Expr, Select};
    use crate::parser::parse;
    use wf_configspace::Tristate;

    fn sample_model() -> KconfigModel {
        let mut m = KconfigModel::new();
        let mut net = Symbol::new("NET", SymbolType::Bool);
        net.menu = "Networking support".into();
        net.prompt = Some("Networking support".into());
        net.defaults.push(Default {
            value: DefaultValue::Tri(Tristate::Yes),
            condition: None,
        });
        net.help = "Core networking.".into();
        m.add(net);

        let mut inet = Symbol::new("INET", SymbolType::Tristate);
        inet.menu = "Networking support".into();
        inet.prompt = Some("TCP/IP networking".into());
        inet.depends = Some(Expr::Sym("NET".into()));
        inet.selects.push(Select {
            target: "CRYPTO".into(),
            condition: Some(Expr::Sym("NET".into())),
        });
        m.add(inet);

        let mut backlog = Symbol::new("BACKLOG", SymbolType::Int);
        backlog.menu = "Networking support".into();
        backlog.prompt = Some("Backlog".into());
        backlog.range = Some((16, 65536));
        backlog.defaults.push(Default {
            value: DefaultValue::Int(128),
            condition: Some(Expr::Sym("NET".into())),
        });
        m.add(backlog);

        let mut crypto = Symbol::new("CRYPTO", SymbolType::Tristate);
        crypto.prompt = Some("Crypto API".into());
        m.add(crypto);

        let mut start = Symbol::new("START_ADDR", SymbolType::Hex);
        start.prompt = Some("Start address".into());
        start.range = Some((0x1000, 0x10000));
        start.defaults.push(Default {
            value: DefaultValue::Int(0x2000),
            condition: None,
        });
        m.add(start);

        let mut name = Symbol::new("HOSTNAME", SymbolType::String);
        name.prompt = Some("Hostname".into());
        name.defaults.push(Default {
            value: DefaultValue::Str("(none)".into()),
            condition: None,
        });
        m.add(name);
        m
    }

    #[test]
    fn emitted_text_reparses_to_equivalent_model() {
        let m = sample_model();
        let text = emit(&m);
        let back = parse(&text).expect("emitted text parses");
        assert_eq!(back.len(), m.len());
        for sym in m.symbols() {
            let b = back.by_name(&sym.name).expect("symbol survives round-trip");
            assert_eq!(b.stype, sym.stype, "{}", sym.name);
            assert_eq!(b.prompt, sym.prompt, "{}", sym.name);
            assert_eq!(b.depends, sym.depends, "{}", sym.name);
            assert_eq!(b.selects, sym.selects, "{}", sym.name);
            assert_eq!(b.defaults, sym.defaults, "{}", sym.name);
            assert_eq!(b.range, sym.range, "{}", sym.name);
        }
    }

    #[test]
    fn hex_values_emit_in_hex() {
        let m = sample_model();
        let text = emit(&m);
        assert!(text.contains("range 0x1000 0x10000"));
        assert!(text.contains("default 0x2000"));
    }

    #[test]
    fn menus_open_and_close() {
        let m = sample_model();
        let text = emit(&m);
        assert_eq!(text.matches("menu \"").count(), 1);
        assert_eq!(text.matches("endmenu").count(), 1);
        // Menu closes before the menuless symbols.
        assert!(text.find("endmenu").unwrap() < text.find("config CRYPTO").unwrap());
    }
}
