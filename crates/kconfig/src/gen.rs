//! Deterministic synthetic Linux Kconfig models.
//!
//! The paper's experiments span Linux v2.6.13 → v6.0 (Fig. 1) and quote an
//! exact type census for v6.0 (Table 1: 7585 bool, 10034 tristate, 154
//! string, 94 hex, 3405 int compile-time options). Real kernel trees are not
//! available to this reproduction, so this module *synthesizes* a Kconfig
//! model per version with:
//!
//! * the same option-count growth curve as Fig. 1;
//! * exactly the Table 1 per-type census at v6.0 (proportionally scaled,
//!   largest-remainder rounded, for the other versions);
//! * a curated core of real, named kernel symbols (`SMP`, `MODULES`,
//!   `DEBUG_INFO`, `KASAN`, `NR_CPUS`, ...) that downstream models
//!   (footprint, crash rules) reference by name;
//! * realistic structure: subsystem menus, `depends on` chains rooted at
//!   subsystem gates, occasional `select`s, conditional defaults, and
//!   ranges on `int`/`hex` symbols.
//!
//! Generation is a pure function of the version: two calls produce
//! identical models, which keeps every experiment reproducible.

use crate::ast::{
    Default, DefaultValue, Expr, KconfigModel, Select, Symbol, SymbolType, TypeCensus,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wf_configspace::Tristate;

/// The Linux versions plotted in Fig. 1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(non_camel_case_types)]
pub enum LinuxVersion {
    /// v2.6.13 (2005).
    V2_6_13,
    /// v2.6.20 (2007).
    V2_6_20,
    /// v2.6.27 (2008).
    V2_6_27,
    /// v2.6.35 (2010).
    V2_6_35,
    /// v3.2 (2012).
    V3_2,
    /// v3.10 (2013).
    V3_10,
    /// v3.17 (2014).
    V3_17,
    /// v4.4 (2016).
    V4_4,
    /// v4.12 (2017).
    V4_12,
    /// v4.19 (2018) — the LTS kernel the paper's §4.1 experiments use.
    V4_19,
    /// v5.6 (2020).
    V5_6,
    /// v5.13 (2021).
    V5_13,
    /// v6.0 (2022) — the kernel behind Table 1.
    V6_0,
}

impl LinuxVersion {
    /// All versions in release order (the x-axis of Fig. 1).
    pub const ALL: [LinuxVersion; 13] = [
        LinuxVersion::V2_6_13,
        LinuxVersion::V2_6_20,
        LinuxVersion::V2_6_27,
        LinuxVersion::V2_6_35,
        LinuxVersion::V3_2,
        LinuxVersion::V3_10,
        LinuxVersion::V3_17,
        LinuxVersion::V4_4,
        LinuxVersion::V4_12,
        LinuxVersion::V4_19,
        LinuxVersion::V5_6,
        LinuxVersion::V5_13,
        LinuxVersion::V6_0,
    ];

    /// Human-readable label, e.g. `"v4.19"`.
    pub fn label(self) -> &'static str {
        match self {
            LinuxVersion::V2_6_13 => "v2.6.13",
            LinuxVersion::V2_6_20 => "v2.6.20",
            LinuxVersion::V2_6_27 => "v2.6.27",
            LinuxVersion::V2_6_35 => "v2.6.35",
            LinuxVersion::V3_2 => "v3.2",
            LinuxVersion::V3_10 => "v3.10",
            LinuxVersion::V3_17 => "v3.17",
            LinuxVersion::V4_4 => "v4.4",
            LinuxVersion::V4_12 => "v4.12",
            LinuxVersion::V4_19 => "v4.19",
            LinuxVersion::V5_6 => "v5.6",
            LinuxVersion::V5_13 => "v5.13",
            LinuxVersion::V6_0 => "v6.0",
        }
    }

    /// Total number of compile-time options in this version's model
    /// (the y-axis of Fig. 1; v6.0 equals the Table 1 total of 21 272).
    pub fn compile_option_count(self) -> usize {
        match self {
            LinuxVersion::V2_6_13 => 5338,
            LinuxVersion::V2_6_20 => 6282,
            LinuxVersion::V2_6_27 => 7701,
            LinuxVersion::V2_6_35 => 9006,
            LinuxVersion::V3_2 => 11019,
            LinuxVersion::V3_10 => 12616,
            LinuxVersion::V3_17 => 13795,
            LinuxVersion::V4_4 => 15263,
            LinuxVersion::V4_12 => 16528,
            LinuxVersion::V4_19 => 17556,
            LinuxVersion::V5_6 => 19161,
            LinuxVersion::V5_13 => 20234,
            LinuxVersion::V6_0 => 21272,
        }
    }

    /// Number of boot-time (kernel command line) options; v6.0 matches
    /// Table 1's 231.
    pub fn boot_option_count(self) -> usize {
        // Boot options grow far slower than compile options.
        let t = self.index() as f64 / 12.0;
        (96.0 + t * 135.0).round() as usize
    }

    /// Number of runtime options (writable /proc/sys and /sys files); v6.0
    /// matches Table 1's 13 328.
    pub fn runtime_option_count(self) -> usize {
        let t = self.index() as f64 / 12.0;
        (4200.0 + t * 9128.0).round() as usize
    }

    /// Stable seed for this version's deterministic generation.
    pub fn seed(self) -> u64 {
        0x5741_5946 ^ (self.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Position in [`LinuxVersion::ALL`].
    pub fn index(self) -> usize {
        LinuxVersion::ALL.iter().position(|v| *v == self).unwrap()
    }

    /// The per-type compile census this version's model will exhibit.
    ///
    /// v6.0 returns exactly the Table 1 numbers. Other versions scale the
    /// v6.0 shares to their total with largest-remainder rounding so the
    /// per-type counts always sum to [`LinuxVersion::compile_option_count`].
    pub fn compile_census(self) -> TypeCensus {
        const V6: TypeCensus = TypeCensus {
            bool_: 7585,
            tristate: 10034,
            string: 154,
            hex: 94,
            int: 3405,
        };
        if self == LinuxVersion::V6_0 {
            return V6;
        }
        let total = self.compile_option_count();
        let v6_total = V6.total() as f64;
        let shares = [
            V6.bool_ as f64 / v6_total,
            V6.tristate as f64 / v6_total,
            V6.string as f64 / v6_total,
            V6.hex as f64 / v6_total,
            V6.int as f64 / v6_total,
        ];
        let raw: Vec<f64> = shares.iter().map(|s| s * total as f64).collect();
        let mut counts: Vec<usize> = raw.iter().map(|r| r.floor() as usize).collect();
        let mut rem: Vec<(usize, f64)> = raw
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r - r.floor()))
            .collect();
        rem.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let mut deficit = total - counts.iter().sum::<usize>();
        for (i, _) in rem {
            if deficit == 0 {
                break;
            }
            counts[i] += 1;
            deficit -= 1;
        }
        TypeCensus {
            bool_: counts[0],
            tristate: counts[1],
            string: counts[2],
            hex: counts[3],
            int: counts[4],
        }
    }
}

impl std::fmt::Display for LinuxVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A subsystem of the synthetic kernel: menu title, gate symbol, name
/// prefix, and its share (percent) of the generated symbols.
struct Subsystem {
    menu: &'static str,
    gate: &'static str,
    prefix: &'static str,
    share: usize,
}

const SUBSYSTEMS: &[Subsystem] = &[
    Subsystem {
        menu: "General setup",
        gate: "EXPERT",
        prefix: "INIT",
        share: 3,
    },
    Subsystem {
        menu: "Processor type and features",
        gate: "SMP",
        prefix: "CPU",
        share: 5,
    },
    Subsystem {
        menu: "Power management and ACPI options",
        gate: "PM",
        prefix: "PM",
        share: 3,
    },
    Subsystem {
        menu: "Memory management options",
        gate: "MMU",
        prefix: "MM",
        share: 4,
    },
    Subsystem {
        menu: "Networking support",
        gate: "NET",
        prefix: "NET",
        share: 14,
    },
    Subsystem {
        menu: "Device drivers",
        gate: "PCI",
        prefix: "DRV",
        share: 30,
    },
    Subsystem {
        menu: "Sound card support",
        gate: "SND",
        prefix: "SND",
        share: 6,
    },
    Subsystem {
        menu: "Graphics support",
        gate: "DRM",
        prefix: "DRM",
        share: 7,
    },
    Subsystem {
        menu: "USB support",
        gate: "USB",
        prefix: "USB",
        share: 6,
    },
    Subsystem {
        menu: "File systems",
        gate: "BLOCK",
        prefix: "FS",
        share: 8,
    },
    Subsystem {
        menu: "Security options",
        gate: "SECURITY",
        prefix: "SEC",
        share: 3,
    },
    Subsystem {
        menu: "Cryptographic API",
        gate: "CRYPTO",
        prefix: "CRYPT",
        share: 5,
    },
    Subsystem {
        menu: "Library routines",
        gate: "LIBS",
        prefix: "LIB",
        share: 3,
    },
    Subsystem {
        menu: "Kernel hacking",
        gate: "DEBUG_KERNEL",
        prefix: "DBG",
        share: 3,
    },
];

/// Feature stems used to build plausible generated symbol names.
const STEMS: &[&str] = &[
    "CORE",
    "DEBUG",
    "TRACE",
    "STATS",
    "QUEUE",
    "CACHE",
    "DMA",
    "IRQ",
    "MSI",
    "OFFLOAD",
    "CSUM",
    "TSTAMP",
    "FILTER",
    "SCHED",
    "POLL",
    "NAPI",
    "RING",
    "BUF",
    "WDT",
    "EEPROM",
    "PHY",
    "MDIO",
    "VLAN",
    "TUNNEL",
    "HW",
    "FW",
    "HOTPLUG",
    "HUGE",
    "COMPACT",
    "JOURNAL",
    "XATTR",
    "ACL",
    "QUOTA",
    "ENCRYPT",
    "VERITY",
    "COMPRESS",
    "SNAPSHOT",
    "MIRROR",
    "RAID",
    "MULTIPATH",
    "BONDING",
    "FAILOVER",
    "BRIDGE",
    "LEGACY",
    "EXT",
    "V2",
    "ASYNC",
    "BATCH",
];

/// Synthesizes the Kconfig model for one Linux version.
///
/// Deterministic: the result depends only on `version`.
///
/// # Examples
///
/// ```
/// use wf_kconfig::gen::{synthesize, LinuxVersion};
///
/// let model = synthesize(LinuxVersion::V6_0);
/// assert_eq!(model.len(), 21_272);
/// assert_eq!(model.type_census().tristate, 10_034);
/// assert!(model.by_name("MODULES").is_some());
/// ```
pub fn synthesize(version: LinuxVersion) -> KconfigModel {
    let mut rng = StdRng::seed_from_u64(version.seed());
    let mut model = KconfigModel::new();

    curated_core(&mut model);
    let base = model.type_census();
    let target = version.compile_census();
    assert!(
        base.bool_ <= target.bool_
            && base.tristate <= target.tristate
            && base.string <= target.string
            && base.hex <= target.hex
            && base.int <= target.int,
        "curated core exceeds the census target for {version}"
    );

    // Exact per-type pool of the symbols still to generate, shuffled so the
    // types interleave across subsystems.
    let mut pool: Vec<SymbolType> = Vec::with_capacity(target.total() - base.total());
    pool.extend(std::iter::repeat_n(
        SymbolType::Bool,
        target.bool_ - base.bool_,
    ));
    pool.extend(std::iter::repeat_n(
        SymbolType::Tristate,
        target.tristate - base.tristate,
    ));
    pool.extend(std::iter::repeat_n(
        SymbolType::String,
        target.string - base.string,
    ));
    pool.extend(std::iter::repeat_n(SymbolType::Hex, target.hex - base.hex));
    pool.extend(std::iter::repeat_n(SymbolType::Int, target.int - base.int));
    shuffle(&mut pool, &mut rng);

    // Distribute the pool over subsystems by share (largest remainder).
    let n = pool.len();
    let share_total: usize = SUBSYSTEMS.iter().map(|s| s.share).sum();
    let mut alloc: Vec<usize> = SUBSYSTEMS
        .iter()
        .map(|s| n * s.share / share_total)
        .collect();
    let mut assigned: usize = alloc.iter().sum();
    let buckets = alloc.len();
    let mut i = 0;
    while assigned < n {
        alloc[i % buckets] += 1;
        assigned += 1;
        i += 1;
    }

    let mut pool_iter = pool.into_iter();
    for (sub, &count) in SUBSYSTEMS.iter().zip(alloc.iter()) {
        let mut recent: Vec<String> = Vec::new();
        for k in 0..count {
            let stype = pool_iter.next().expect("pool sized to allocation");
            let stem = STEMS[rng.random_range(0..STEMS.len())];
            let name = format!("{}_{}{}", sub.prefix, stem, k);
            let mut sym = Symbol::new(&name, stype);
            sym.menu = sub.menu.to_string();
            sym.prompt = (rng.random::<f64>() > 0.10).then(|| prompt_for(&name));

            // Dependency chain: subsystem gate, sometimes a recent sibling.
            let mut dep = Expr::Sym(sub.gate.to_string());
            if !recent.is_empty() && rng.random::<f64>() < 0.35 {
                let sibling = &recent[rng.random_range(0..recent.len())];
                dep = Expr::And(Box::new(dep), Box::new(Expr::Sym(sibling.clone())));
            }
            sym.depends = Some(dep);

            match stype {
                SymbolType::Bool | SymbolType::Tristate => {
                    let r: f64 = rng.random();
                    if r < 0.25 {
                        sym.defaults.push(Default {
                            value: DefaultValue::Tri(Tristate::Yes),
                            condition: None,
                        });
                    } else if r < 0.40 && stype == SymbolType::Tristate {
                        sym.defaults.push(Default {
                            value: DefaultValue::Tri(Tristate::Module),
                            condition: None,
                        });
                    }
                    if !recent.is_empty() && rng.random::<f64>() < 0.08 {
                        let target_sym = &recent[rng.random_range(0..recent.len())];
                        sym.selects.push(Select {
                            target: target_sym.clone(),
                            condition: None,
                        });
                    }
                    // Only enabled-by-default features seed sibling chains;
                    // this keeps dependency cascades realistic.
                    recent.push(name.clone());
                    if recent.len() > 12 {
                        recent.remove(0);
                    }
                }
                SymbolType::Int => {
                    let (lo, hi, def) = int_range(&mut rng);
                    sym.range = Some((lo, hi));
                    sym.defaults.push(Default {
                        value: DefaultValue::Int(def),
                        condition: None,
                    });
                }
                SymbolType::Hex => {
                    let hi = 1i64 << rng.random_range(8..32);
                    sym.range = Some((0, hi));
                    sym.defaults.push(Default {
                        value: DefaultValue::Int(hi / 2),
                        condition: None,
                    });
                }
                SymbolType::String => {
                    sym.defaults.push(Default {
                        value: DefaultValue::Str(String::new()),
                        condition: None,
                    });
                }
            }
            model.add(sym);
        }
    }

    assert_eq!(model.len(), version.compile_option_count());
    model
}

/// A plausible integer range and default for a generated `int` symbol.
fn int_range(rng: &mut StdRng) -> (i64, i64, i64) {
    match rng.random_range(0..4u8) {
        // Small tunable (queue depth, retry count, ...).
        0 => (0, 256, 16),
        // Shift-style value (log buffer sizes, hash table orders).
        1 => (4, 25, 14),
        // Buffer size in bytes/KiB.
        2 => (64, 1 << 20, 4096),
        // Timeout in ms.
        _ => (0, 60_000, 1000),
    }
}

/// A human prompt derived from a symbol name.
fn prompt_for(name: &str) -> String {
    let mut words: Vec<String> = name.split('_').map(|w| w.to_ascii_lowercase()).collect();
    if let Some(first) = words.first_mut() {
        let mut chars = first.chars();
        if let Some(c) = chars.next() {
            *first = c.to_ascii_uppercase().to_string() + chars.as_str();
        }
    }
    format!("{} support", words.join(" "))
}

/// Fisher–Yates shuffle (avoids pulling in `rand`'s slice extension trait).
fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

/// The curated, real-named core of the synthetic kernel.
///
/// These are the symbols the ground-truth models in `wf-ossim` reference by
/// name (footprint contributions, crash rules, performance effects), plus
/// the subsystem gates everything else depends on.
fn curated_core(model: &mut KconfigModel) {
    let mut add_bool = |name: &str, menu: &str, default_y: bool, help: &str| {
        let mut s = Symbol::new(name, SymbolType::Bool);
        s.menu = menu.into();
        s.prompt = Some(prompt_for(name));
        s.help = help.into();
        if default_y {
            s.defaults.push(Default {
                value: DefaultValue::Tri(Tristate::Yes),
                condition: None,
            });
        }
        model.add(s);
    };

    // Subsystem gates (all default y so defconfig exposes the full tree).
    for gate in [
        "EXPERT",
        "SMP",
        "PM",
        "MMU",
        "NET",
        "PCI",
        "SND",
        "DRM",
        "USB",
        "BLOCK",
        "SECURITY",
        "CRYPTO",
        "LIBS",
        "DEBUG_KERNEL",
    ] {
        add_bool(gate, "General setup", true, "Subsystem gate.");
    }

    // Core kernel features.
    add_bool(
        "64BIT",
        "Processor type and features",
        true,
        "64-bit kernel.",
    );
    add_bool(
        "NUMA",
        "Processor type and features",
        true,
        "NUMA memory allocation and scheduler support.",
    );
    add_bool(
        "PREEMPT",
        "Processor type and features",
        false,
        "Preemptible kernel (low-latency desktop).",
    );
    add_bool(
        "PREEMPT_VOLUNTARY",
        "Processor type and features",
        true,
        "Voluntary kernel preemption.",
    );
    add_bool(
        "HIGH_RES_TIMERS",
        "Processor type and features",
        true,
        "High resolution timer support.",
    );
    add_bool(
        "NO_HZ_IDLE",
        "Processor type and features",
        true,
        "Idle dynticks system.",
    );
    add_bool(
        "CPU_FREQ",
        "Power management and ACPI options",
        true,
        "CPU frequency scaling.",
    );
    add_bool(
        "CPU_IDLE",
        "Power management and ACPI options",
        true,
        "CPU idle PM support.",
    );

    // Memory management.
    add_bool(
        "SWAP",
        "Memory management options",
        true,
        "Support for paging of anonymous memory.",
    );
    add_bool(
        "SHMEM",
        "Memory management options",
        true,
        "Shared memory filesystem support.",
    );
    add_bool(
        "TRANSPARENT_HUGEPAGE",
        "Memory management options",
        true,
        "Transparent hugepage support.",
    );
    add_bool(
        "COMPACTION",
        "Memory management options",
        true,
        "Memory compaction.",
    );
    add_bool(
        "KSM",
        "Memory management options",
        false,
        "Kernel samepage merging.",
    );
    add_bool(
        "SLUB_DEBUG",
        "Memory management options",
        false,
        "SLUB debugging support.",
    );
    add_bool(
        "SLAB_FREELIST_RANDOM",
        "Memory management options",
        false,
        "Randomize slab freelist.",
    );

    // Networking core.
    add_bool("INET", "Networking support", true, "TCP/IP networking.");
    add_bool("IPV6", "Networking support", true, "The IPv6 protocol.");
    add_bool(
        "NETFILTER",
        "Networking support",
        true,
        "Network packet filtering framework.",
    );
    add_bool(
        "TCP_CONG_CUBIC",
        "Networking support",
        true,
        "CUBIC TCP congestion control.",
    );
    add_bool(
        "TCP_CONG_BBR",
        "Networking support",
        false,
        "BBR TCP congestion control.",
    );
    add_bool(
        "NET_RX_BUSY_POLL",
        "Networking support",
        true,
        "Busy poll for low-latency networking.",
    );
    add_bool(
        "XPS",
        "Networking support",
        true,
        "Transmit packet steering.",
    );
    add_bool(
        "RPS",
        "Networking support",
        true,
        "Receive packet steering.",
    );

    // Block / filesystems.
    add_bool(
        "EXT4_FS",
        "File systems",
        true,
        "The extended 4 (ext4) filesystem.",
    );
    add_bool(
        "BTRFS_FS",
        "File systems",
        false,
        "Btrfs filesystem support.",
    );
    add_bool("XFS_FS", "File systems", false, "XFS filesystem support.");
    add_bool(
        "TMPFS",
        "File systems",
        true,
        "Tmpfs virtual memory file system support.",
    );
    add_bool(
        "PROC_FS",
        "File systems",
        true,
        "/proc file system support.",
    );
    add_bool("SYSFS", "File systems", true, "Sysfs file system support.");
    add_bool(
        "BLK_DEV_IO_TRACE",
        "File systems",
        false,
        "Support for tracing block IO actions.",
    );

    // Drivers the benchmark VMs rely on.
    add_bool(
        "VIRTIO_NET",
        "Device drivers",
        true,
        "Virtio network driver.",
    );
    add_bool("VIRTIO_BLK", "Device drivers", true, "Virtio block driver.");
    add_bool(
        "E1000",
        "Device drivers",
        false,
        "Intel PRO/1000 gigabit ethernet support.",
    );
    add_bool(
        "SERIAL_8250",
        "Device drivers",
        true,
        "8250/16550 serial support.",
    );

    // Security.
    add_bool(
        "SECCOMP",
        "Security options",
        true,
        "Enable seccomp to safely execute untrusted bytecode.",
    );
    add_bool(
        "RANDOMIZE_BASE",
        "Security options",
        true,
        "Randomize the address of the kernel image (KASLR).",
    );
    add_bool(
        "STACKPROTECTOR",
        "Security options",
        true,
        "Stack protector buffer overflow detection.",
    );
    add_bool(
        "HARDENED_USERCOPY",
        "Security options",
        false,
        "Harden memory copies between kernel and userspace.",
    );

    // Observability / debugging (the classic footprint+perf offenders).
    add_bool(
        "PRINTK",
        "General setup",
        true,
        "Enable support for printk.",
    );
    add_bool(
        "PRINTK_TIME",
        "Kernel hacking",
        false,
        "Show timing information on printks.",
    );
    add_bool(
        "IKCONFIG",
        "General setup",
        false,
        "Kernel .config support.",
    );
    add_bool(
        "KALLSYMS",
        "General setup",
        true,
        "Load all symbols for debugging/ksymoops.",
    );
    add_bool(
        "DEBUG_INFO",
        "Kernel hacking",
        false,
        "Compile the kernel with debug info.",
    );
    add_bool(
        "KASAN",
        "Kernel hacking",
        false,
        "Kernel address sanitizer.",
    );
    add_bool(
        "UBSAN",
        "Kernel hacking",
        false,
        "Undefined behaviour sanity checker.",
    );
    add_bool(
        "KCOV",
        "Kernel hacking",
        false,
        "Code coverage for fuzzing.",
    );
    add_bool(
        "LOCKDEP",
        "Kernel hacking",
        false,
        "Lock dependency engine debugging.",
    );
    add_bool(
        "PROVE_LOCKING",
        "Kernel hacking",
        false,
        "Lock debugging: prove locking correctness.",
    );
    add_bool(
        "DEBUG_PAGEALLOC",
        "Kernel hacking",
        false,
        "Debug page memory allocations.",
    );
    add_bool("FTRACE", "Kernel hacking", true, "Kernel function tracer.");
    add_bool("KPROBES", "Kernel hacking", false, "Kernel dynamic probes.");
    add_bool(
        "BPF_SYSCALL",
        "General setup",
        true,
        "Enable bpf() system call.",
    );
    add_bool("EPOLL", "General setup", true, "Enable eventpoll support.");
    add_bool("AIO", "General setup", true, "Enable AIO support.");
    add_bool(
        "IO_URING",
        "General setup",
        true,
        "Enable IO uring support.",
    );
    add_bool("FUTEX", "General setup", true, "Enable futex support.");

    // MODULES is special-cased by the solver.
    {
        let mut s = Symbol::new("MODULES", SymbolType::Bool);
        s.menu = "General setup".into();
        s.prompt = Some("Enable loadable module support".into());
        s.defaults.push(Default {
            value: DefaultValue::Tri(Tristate::Yes),
            condition: None,
        });
        model.add(s);
    }

    // Curated int/hex/string symbols with real names.
    let mut add_int = |name: &str, menu: &str, range: (i64, i64), def: i64| {
        let mut s = Symbol::new(name, SymbolType::Int);
        s.menu = menu.into();
        s.prompt = Some(prompt_for(name));
        s.range = Some(range);
        s.defaults.push(Default {
            value: DefaultValue::Int(def),
            condition: None,
        });
        model.add(s);
    };
    add_int("NR_CPUS", "Processor type and features", (1, 512), 64);
    add_int("HZ", "Processor type and features", (100, 1000), 250);
    add_int("LOG_BUF_SHIFT", "General setup", (12, 25), 17);
    add_int("RCU_FANOUT", "General setup", (2, 64), 32);
    add_int(
        "DEFAULT_MMAP_MIN_ADDR",
        "Security options",
        (0, 65536),
        4096,
    );

    {
        let mut s = Symbol::new("PHYSICAL_START", SymbolType::Hex);
        s.menu = "Processor type and features".into();
        s.prompt = Some("Physical address where the kernel is loaded".into());
        s.range = Some((0x100000, 0x40000000));
        s.defaults.push(Default {
            value: DefaultValue::Int(0x1000000),
            condition: None,
        });
        model.add(s);
    }
    {
        let mut s = Symbol::new("CMDLINE", SymbolType::String);
        s.menu = "Processor type and features".into();
        s.prompt = Some("Built-in kernel command string".into());
        s.defaults.push(Default {
            value: DefaultValue::Str(String::new()),
            condition: None,
        });
        model.add(s);
    }
    {
        let mut s = Symbol::new("DEFAULT_HOSTNAME", SymbolType::String);
        s.menu = "General setup".into();
        s.prompt = Some("Default hostname".into());
        s.defaults.push(Default {
            value: DefaultValue::Str("(none)".into()),
            condition: None,
        });
        model.add(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn v6_census_matches_table1_exactly() {
        let c = LinuxVersion::V6_0.compile_census();
        assert_eq!(c.bool_, 7585);
        assert_eq!(c.tristate, 10034);
        assert_eq!(c.string, 154);
        assert_eq!(c.hex, 94);
        assert_eq!(c.int, 3405);
        assert_eq!(c.total(), 21272);
    }

    #[test]
    fn census_always_sums_to_total() {
        for v in LinuxVersion::ALL {
            assert_eq!(
                v.compile_census().total(),
                v.compile_option_count(),
                "census mismatch for {v}"
            );
        }
    }

    #[test]
    fn option_counts_grow_monotonically() {
        let counts: Vec<usize> = LinuxVersion::ALL
            .iter()
            .map(|v| v.compile_option_count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert!(LinuxVersion::ALL
            .windows(2)
            .all(|w| w[0].boot_option_count() <= w[1].boot_option_count()));
        assert!(LinuxVersion::ALL
            .windows(2)
            .all(|w| w[0].runtime_option_count() <= w[1].runtime_option_count()));
    }

    #[test]
    fn v6_boot_and_runtime_counts_match_table1() {
        assert_eq!(LinuxVersion::V6_0.boot_option_count(), 231);
        assert_eq!(LinuxVersion::V6_0.runtime_option_count(), 13328);
    }

    #[test]
    fn synthesized_model_matches_census() {
        let m = synthesize(LinuxVersion::V2_6_13);
        let c = m.type_census();
        assert_eq!(c, LinuxVersion::V2_6_13.compile_census());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize(LinuxVersion::V2_6_13);
        let b = synthesize(LinuxVersion::V2_6_13);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.symbol(i), b.symbol(i));
        }
    }

    #[test]
    fn curated_symbols_exist_in_every_version() {
        for v in [
            LinuxVersion::V2_6_13,
            LinuxVersion::V4_19,
            LinuxVersion::V6_0,
        ] {
            let m = synthesize(v);
            for name in [
                "MODULES",
                "SMP",
                "NET",
                "INET",
                "EXT4_FS",
                "DEBUG_INFO",
                "KASAN",
                "NR_CPUS",
                "HZ",
                "LOG_BUF_SHIFT",
                "VIRTIO_NET",
                "RANDOMIZE_BASE",
            ] {
                assert!(m.by_name(name).is_some(), "{name} missing in {v}");
            }
        }
    }

    #[test]
    fn defconfig_of_synthetic_model_is_valid() {
        let m = synthesize(LinuxVersion::V2_6_13);
        let s = Solver::new(&m);
        let a = s.defconfig();
        let v = s.validate(&a);
        assert!(v.is_empty(), "first violations: {:?}", &v[..v.len().min(5)]);
    }

    #[test]
    fn randconfig_of_synthetic_model_is_valid() {
        let m = synthesize(LinuxVersion::V2_6_13);
        let s = Solver::new(&m);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..3 {
            let a = s.randconfig(&mut rng);
            let v = s.validate(&a);
            assert!(v.is_empty(), "first violations: {:?}", &v[..v.len().min(5)]);
        }
    }

    #[test]
    fn generated_symbols_have_menus_and_deps() {
        let m = synthesize(LinuxVersion::V2_6_13);
        let with_deps = m.symbols().iter().filter(|s| s.depends.is_some()).count();
        let with_menu = m.symbols().iter().filter(|s| !s.menu.is_empty()).count();
        assert!(with_deps as f64 > m.len() as f64 * 0.9);
        assert_eq!(with_menu, m.len());
    }
}
