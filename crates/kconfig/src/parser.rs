//! Parser for the Kconfig-subset language.
//!
//! The supported grammar covers what the synthetic Linux model and the tests
//! need — the same constructs the real Linux `Kconfig` files use most:
//!
//! ```text
//! menu "Networking support"
//! config NET
//!     bool "Networking support"
//!     depends on A && (B || !C)
//!     select INET if FOO
//!     default y if BAR
//!     range 12 25          # int/hex only
//!     help
//!       Free-form help text, indented.
//! endmenu
//! ```
//!
//! Unsupported Kconfig features (`choice` blocks, `imply`, `visible if`,
//! macros) are rejected with an error rather than silently ignored.

use crate::ast::{Default, DefaultValue, Expr, KconfigModel, Select, Symbol, SymbolType};
use std::fmt;
use wf_configspace::Tristate;

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses Kconfig text into a model.
pub fn parse(input: &str) -> Result<KconfigModel, ParseError> {
    let mut model = KconfigModel::new();
    let mut menu_stack: Vec<String> = Vec::new();
    let mut current: Option<Symbol> = None;
    let mut lines = input.lines().enumerate().peekable();

    while let Some((lineno, raw)) = lines.next() {
        let lineno = lineno + 1;
        let line = strip_comment(raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };

        let (keyword, rest) = split_keyword(trimmed);
        match keyword {
            "menu" => {
                flush(&mut model, &mut current);
                let title = parse_quoted(rest)
                    .ok_or_else(|| err(format!("menu needs a quoted title, got {rest:?}")))?;
                menu_stack.push(title);
            }
            "endmenu" => {
                flush(&mut model, &mut current);
                menu_stack
                    .pop()
                    .ok_or_else(|| err("endmenu without matching menu".into()))?;
            }
            "config" | "menuconfig" => {
                flush(&mut model, &mut current);
                let name = rest.trim();
                if name.is_empty() || !name.chars().all(is_symbol_char) {
                    return Err(err(format!("invalid symbol name {name:?}")));
                }
                let mut sym = Symbol::new(name, SymbolType::Bool);
                sym.menu = menu_stack.join("/");
                // The type line follows; mark untyped via a sentinel until
                // we see it (Kconfig requires a type line).
                current = Some(sym);
            }
            "bool" | "tristate" | "int" | "hex" | "string" => {
                let sym = current
                    .as_mut()
                    .ok_or_else(|| err(format!("{keyword} outside a config block")))?;
                sym.stype = match keyword {
                    "bool" => SymbolType::Bool,
                    "tristate" => SymbolType::Tristate,
                    "int" => SymbolType::Int,
                    "hex" => SymbolType::Hex,
                    _ => SymbolType::String,
                };
                let rest = rest.trim();
                if !rest.is_empty() {
                    sym.prompt = Some(
                        parse_quoted(rest)
                            .ok_or_else(|| err(format!("prompt must be quoted: {rest:?}")))?,
                    );
                }
            }
            "depends" => {
                let sym = current
                    .as_mut()
                    .ok_or_else(|| err("depends outside a config block".into()))?;
                let rest = rest
                    .trim()
                    .strip_prefix("on")
                    .ok_or_else(|| err("expected `depends on`".into()))?;
                let e = parse_expr(rest.trim()).map_err(&err)?;
                sym.depends = Some(match sym.depends.take() {
                    Some(prev) => Expr::And(Box::new(prev), Box::new(e)),
                    None => e,
                });
            }
            "select" => {
                let sym = current
                    .as_mut()
                    .ok_or_else(|| err("select outside a config block".into()))?;
                let (target, cond) = split_if(rest.trim());
                if target.is_empty() || !target.chars().all(is_symbol_char) {
                    return Err(err(format!("invalid select target {target:?}")));
                }
                let condition = match cond {
                    Some(c) => Some(parse_expr(c).map_err(&err)?),
                    None => None,
                };
                sym.selects.push(Select {
                    target: target.to_string(),
                    condition,
                });
            }
            "default" => {
                let sym = current
                    .as_mut()
                    .ok_or_else(|| err("default outside a config block".into()))?;
                let (val, cond) = split_if(rest.trim());
                let value = parse_default_value(val, sym.stype)
                    .ok_or_else(|| err(format!("bad default {val:?} for {}", sym.stype)))?;
                let condition = match cond {
                    Some(c) => Some(parse_expr(c).map_err(&err)?),
                    None => None,
                };
                sym.defaults.push(Default { value, condition });
            }
            "range" => {
                let sym = current
                    .as_mut()
                    .ok_or_else(|| err("range outside a config block".into()))?;
                let mut parts = rest.split_whitespace();
                let lo = parts
                    .next()
                    .and_then(parse_int)
                    .ok_or_else(|| err("range needs two integers".into()))?;
                let hi = parts
                    .next()
                    .and_then(parse_int)
                    .ok_or_else(|| err("range needs two integers".into()))?;
                if lo > hi {
                    return Err(err(format!("empty range {lo} {hi}")));
                }
                sym.range = Some((lo, hi));
            }
            "help" => {
                let sym = current
                    .as_mut()
                    .ok_or_else(|| err("help outside a config block".into()))?;
                // Consume following indented lines as help text.
                let mut text = String::new();
                while let Some((_, next)) = lines.peek() {
                    if next.trim().is_empty() {
                        lines.next();
                        continue;
                    }
                    if next.starts_with([' ', '\t']) {
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str(next.trim());
                        lines.next();
                    } else {
                        break;
                    }
                }
                sym.help = text;
            }
            other => {
                return Err(err(format!("unsupported keyword {other:?}")));
            }
        }
    }
    flush(&mut model, &mut current);
    Ok(model)
}

fn flush(model: &mut KconfigModel, current: &mut Option<Symbol>) {
    if let Some(sym) = current.take() {
        model.add(sym);
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_keyword(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], &line[i..]),
        None => (line, ""),
    }
}

fn parse_quoted(s: &str) -> Option<String> {
    let s = s.trim();
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

fn is_symbol_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Splits `"<head> if <cond>"` into head and optional condition.
fn split_if(s: &str) -> (&str, Option<&str>) {
    // Find ` if ` outside quotes.
    let bytes = s.as_bytes();
    let mut in_str = false;
    let pat = b" if ";
    if s.len() >= pat.len() {
        for i in 0..=s.len() - pat.len() {
            if bytes[i] == b'"' {
                in_str = !in_str;
            }
            if !in_str && &bytes[i..i + pat.len()] == pat {
                return (s[..i].trim(), Some(s[i + pat.len()..].trim()));
            }
        }
    }
    (s.trim(), None)
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_default_value(s: &str, stype: SymbolType) -> Option<DefaultValue> {
    let s = s.trim();
    match stype {
        SymbolType::Bool | SymbolType::Tristate => {
            if let Some(t) = Tristate::parse(s) {
                Some(DefaultValue::Tri(t))
            } else if s.chars().all(is_symbol_char) && !s.is_empty() {
                Some(DefaultValue::Sym(s.to_string()))
            } else {
                None
            }
        }
        SymbolType::Int | SymbolType::Hex => {
            if let Some(v) = parse_int(s) {
                Some(DefaultValue::Int(v))
            } else if s.chars().all(is_symbol_char) && !s.is_empty() {
                Some(DefaultValue::Sym(s.to_string()))
            } else {
                None
            }
        }
        SymbolType::String => parse_quoted(s).map(DefaultValue::Str),
    }
}

/// Recursive-descent parser for dependency expressions.
///
/// Grammar: `or := and ('||' and)*`, `and := cmp ('&&' cmp)*`,
/// `cmp := unary (('='|'!=') unary)?`, `unary := '!' unary | primary`,
/// `primary := '(' or ')' | SYMBOL | 'y' | 'm' | 'n'`.
pub fn parse_expr(input: &str) -> Result<Expr, String> {
    let tokens = tokenize_expr(input)?;
    let mut pos = 0;
    let e = parse_or(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!(
            "trailing tokens after expression: {:?}",
            &tokens[pos..]
        ));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Sym(String),
    AndAnd,
    OrOr,
    Not,
    Eq,
    Neq,
    LParen,
    RParen,
}

fn tokenize_expr(s: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '&' => {
                chars.next();
                if chars.next() != Some('&') {
                    return Err("single & in expression".into());
                }
                out.push(Tok::AndAnd);
            }
            '|' => {
                chars.next();
                if chars.next() != Some('|') {
                    return Err("single | in expression".into());
                }
                out.push(Tok::OrOr);
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Tok::Neq);
                } else {
                    out.push(Tok::Not);
                }
            }
            '=' => {
                chars.next();
                out.push(Tok::Eq);
            }
            c if is_symbol_char(c) => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if is_symbol_char(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Sym(name));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

fn parse_or(toks: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    let mut left = parse_and(toks, pos)?;
    while toks.get(*pos) == Some(&Tok::OrOr) {
        *pos += 1;
        let right = parse_and(toks, pos)?;
        left = Expr::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_and(toks: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    let mut left = parse_cmp(toks, pos)?;
    while toks.get(*pos) == Some(&Tok::AndAnd) {
        *pos += 1;
        let right = parse_cmp(toks, pos)?;
        left = Expr::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_cmp(toks: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    let left = parse_unary(toks, pos)?;
    match toks.get(*pos) {
        Some(Tok::Eq) => {
            *pos += 1;
            let right = parse_unary(toks, pos)?;
            Ok(Expr::Eq(Box::new(left), Box::new(right)))
        }
        Some(Tok::Neq) => {
            *pos += 1;
            let right = parse_unary(toks, pos)?;
            Ok(Expr::Neq(Box::new(left), Box::new(right)))
        }
        _ => Ok(left),
    }
}

fn parse_unary(toks: &[Tok], pos: &mut usize) -> Result<Expr, String> {
    match toks.get(*pos) {
        Some(Tok::Not) => {
            *pos += 1;
            Ok(Expr::Not(Box::new(parse_unary(toks, pos)?)))
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let inner = parse_or(toks, pos)?;
            if toks.get(*pos) != Some(&Tok::RParen) {
                return Err("missing closing parenthesis".into());
            }
            *pos += 1;
            Ok(inner)
        }
        Some(Tok::Sym(s)) => {
            *pos += 1;
            // Bare y/m/n are literals, everything else a symbol reference.
            Ok(match Tristate::parse(s) {
                Some(t) if s.len() == 1 => Expr::Lit(t),
                _ => Expr::Sym(s.clone()),
            })
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
menu "Networking support"

config NET
	bool "Networking support"
	default y
	help
	  Enables the network subsystem.
	  Needed by all network applications.

config INET
	tristate "TCP/IP networking"
	depends on NET
	select NETDEVICES if NET
	default m

config LOG_BUF_SHIFT
	int "Kernel log buffer size"
	range 12 25
	default 17
	depends on NET && (INET || !EMBEDDED)

config PHYSICAL_START
	hex "Physical load address"
	default 0x1000000

config DEFAULT_HOSTNAME
	string "Default hostname"
	default "(none)"

config NETDEVICES
	bool
	default n

config EMBEDDED
	bool "Embedded system"

endmenu
"#;

    #[test]
    fn parses_sample_model() {
        let m = parse(SAMPLE).expect("parse");
        assert_eq!(m.len(), 7);
        let net = m.by_name("NET").unwrap();
        assert_eq!(net.stype, SymbolType::Bool);
        assert_eq!(net.prompt.as_deref(), Some("Networking support"));
        assert_eq!(net.menu, "Networking support");
        assert!(net.help.contains("network subsystem"));

        let inet = m.by_name("INET").unwrap();
        assert_eq!(inet.stype, SymbolType::Tristate);
        assert_eq!(inet.depends, Some(Expr::Sym("NET".into())));
        assert_eq!(inet.selects.len(), 1);
        assert_eq!(inet.selects[0].target, "NETDEVICES");
        assert!(inet.selects[0].condition.is_some());

        let buf = m.by_name("LOG_BUF_SHIFT").unwrap();
        assert_eq!(buf.range, Some((12, 25)));
        assert_eq!(buf.defaults.len(), 1);

        let phys = m.by_name("PHYSICAL_START").unwrap();
        assert_eq!(phys.defaults[0].value, DefaultValue::Int(0x1000000));

        let host = m.by_name("DEFAULT_HOSTNAME").unwrap();
        assert_eq!(host.defaults[0].value, DefaultValue::Str("(none)".into()));
    }

    #[test]
    fn parses_complex_expressions() {
        let e = parse_expr("A && (B || !C) && D!=y").unwrap();
        let mut names = Vec::new();
        e.referenced(&mut names);
        assert_eq!(names, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn literal_vs_symbol_disambiguation() {
        assert_eq!(parse_expr("y").unwrap(), Expr::Lit(Tristate::Yes));
        assert_eq!(parse_expr("NET").unwrap(), Expr::Sym("NET".into()));
        // A multi-char name starting with n is a symbol, not a literal.
        assert_eq!(parse_expr("nfs").unwrap(), Expr::Sym("nfs".into()));
    }

    #[test]
    fn rejects_unknown_keywords() {
        let err = parse("choice\n").unwrap_err();
        assert!(err.message.contains("unsupported keyword"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_unbalanced_endmenu() {
        let err = parse("endmenu\n").unwrap_err();
        assert!(err.message.contains("endmenu"));
    }

    #[test]
    fn rejects_bad_range() {
        let src = "config A\n\tint \"a\"\n\trange 10 2\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("empty range"));
    }

    #[test]
    fn comments_are_stripped() {
        let src = "# top comment\nconfig A # trailing\n\tbool \"prompt # not a comment\"\n";
        let m = parse(src).expect("parse");
        assert_eq!(
            m.by_name("A").unwrap().prompt.as_deref(),
            Some("prompt # not a comment")
        );
    }

    #[test]
    fn multiple_depends_lines_conjoin() {
        let src = "config A\n\tbool \"a\"\n\tdepends on B\n\tdepends on C\n";
        let m = parse(src).expect("parse");
        let d = m.by_name("A").unwrap().depends.clone().unwrap();
        assert_eq!(d.to_string(), "B && C");
    }
}
