//! Property tests: `parse(emit(model))` preserves the model, and solver
//! outputs are always valid.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::Tristate;
use wf_kconfig::ast::{Default, DefaultValue, Expr, KconfigModel, Select, Symbol, SymbolType};
use wf_kconfig::emit::emit;
use wf_kconfig::parser::parse;
use wf_kconfig::solver::Solver;

/// Strategy for a symbol name that cannot collide with expression literals.
fn sym_name() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9_]{2,10}".prop_map(|s| format!("S_{s}"))
}

fn sym_type() -> impl Strategy<Value = SymbolType> {
    prop_oneof![
        Just(SymbolType::Bool),
        Just(SymbolType::Tristate),
        Just(SymbolType::Int),
        Just(SymbolType::Hex),
        Just(SymbolType::String),
    ]
}

fn tristate() -> impl Strategy<Value = Tristate> {
    prop_oneof![
        Just(Tristate::No),
        Just(Tristate::Module),
        Just(Tristate::Yes)
    ]
}

/// A random model: unique names, dependencies/selects only on earlier
/// symbols (so they resolve), type-correct defaults and ranges.
fn model_strategy() -> impl Strategy<Value = KconfigModel> {
    proptest::collection::vec(
        (
            sym_name(),
            sym_type(),
            tristate(),
            0u8..4,
            any::<bool>(),
            1i64..1000,
        ),
        1..20,
    )
    .prop_map(|rows| {
        let mut m = KconfigModel::new();
        let mut names: Vec<String> = Vec::new();
        for (name, stype, tri, dep_mode, promptless, num) in rows {
            if m.by_name(&name).is_some() {
                continue;
            }
            let mut s = Symbol::new(&name, stype);
            if !promptless {
                s.prompt = Some(format!("{name} prompt"));
            }
            if !names.is_empty() {
                let target = names[(num as usize) % names.len()].clone();
                match dep_mode {
                    1 => s.depends = Some(Expr::Sym(target)),
                    2 => s.depends = Some(Expr::Not(Box::new(Expr::Sym(target)))),
                    3 if matches!(stype, SymbolType::Bool | SymbolType::Tristate) => {
                        s.selects.push(Select {
                            target,
                            condition: None,
                        })
                    }
                    _ => {}
                }
            }
            match stype {
                SymbolType::Bool => {
                    if tri != Tristate::Module {
                        s.defaults.push(Default {
                            value: DefaultValue::Tri(tri),
                            condition: None,
                        });
                    }
                }
                SymbolType::Tristate => s.defaults.push(Default {
                    value: DefaultValue::Tri(tri),
                    condition: None,
                }),
                SymbolType::Int | SymbolType::Hex => {
                    s.range = Some((0, num.max(1)));
                    s.defaults.push(Default {
                        value: DefaultValue::Int(num / 2),
                        condition: None,
                    });
                }
                SymbolType::String => s.defaults.push(Default {
                    value: DefaultValue::Str(format!("v{num}")),
                    condition: None,
                }),
            }
            names.push(name);
            m.add(s);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emit_parse_roundtrip(model in model_strategy()) {
        let text = emit(&model);
        let back = parse(&text).expect("emitted text must parse");
        prop_assert_eq!(back.len(), model.len());
        for sym in model.symbols() {
            let b = back.by_name(&sym.name).expect("symbol preserved");
            prop_assert_eq!(b.stype, sym.stype);
            prop_assert_eq!(&b.prompt, &sym.prompt);
            prop_assert_eq!(&b.depends, &sym.depends);
            prop_assert_eq!(&b.selects, &sym.selects);
            prop_assert_eq!(&b.defaults, &sym.defaults);
            prop_assert_eq!(b.range, sym.range);
        }
    }

    #[test]
    fn solver_outputs_always_validate(model in model_strategy(), seed in any::<u64>()) {
        let solver = Solver::new(&model);
        let d = solver.defconfig();
        prop_assert!(solver.validate(&d).is_empty(), "defconfig violations: {:?}", solver.validate(&d));
        let mut rng = StdRng::seed_from_u64(seed);
        let r = solver.randconfig(&mut rng);
        prop_assert!(solver.validate(&r).is_empty(), "randconfig violations: {:?}", solver.validate(&r));
    }
}
