//! Property-based tests for the configuration-space model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_configspace::{
    distance, ConfigSpace, Encoder, ParamKind, ParamSpec, Stage, Tristate, Value,
};

/// Strategy producing an arbitrary parameter kind.
fn kind_strategy() -> impl Strategy<Value = ParamKind> {
    prop_oneof![
        Just(ParamKind::Bool),
        Just(ParamKind::Tristate),
        (any::<i32>(), 1..10_000i64).prop_map(|(min, span)| {
            let min = min as i64 % 1000;
            ParamKind::int(min, min + span)
        }),
        (0..1000i64, 1..100_000i64).prop_map(|(min, span)| ParamKind::log_int(min, min + span)),
        prop::collection::vec("[a-z]{1,6}", 1..5).prop_map(|mut cs| {
            cs.dedup();
            ParamKind::Enum { choices: cs }
        }),
    ]
}

fn stage_strategy() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::CompileTime),
        Just(Stage::BootTime),
        Just(Stage::Runtime)
    ]
}

/// Strategy producing a whole configuration space of 1..20 parameters.
fn space_strategy() -> impl Strategy<Value = ConfigSpace> {
    prop::collection::vec((kind_strategy(), stage_strategy()), 1..20).prop_map(|specs| {
        let mut s = ConfigSpace::new();
        for (i, (kind, stage)) in specs.into_iter().enumerate() {
            s.add(ParamSpec::new(format!("p{i}"), kind, stage));
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every random sample respects its parameter domains.
    #[test]
    fn sampling_is_always_valid(space in space_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let c = space.sample(&mut rng);
            prop_assert!(space.violations(&c).is_empty());
        }
    }

    /// Encoding has stable dimensionality and stays inside [0, 1].
    #[test]
    fn encoding_is_bounded_and_stable(space in space_strategy(), seed in any::<u64>()) {
        let enc = Encoder::new(&space);
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = enc.dim();
        for _ in 0..16 {
            let v = enc.encode(&space, &space.sample(&mut rng));
            prop_assert_eq!(v.len(), dim);
            prop_assert!(v.iter().all(|f| (0.0..=1.0).contains(f)));
        }
    }

    /// Encoding is injective on value changes of a single parameter with
    /// cardinality > 1 (two different values encode differently).
    #[test]
    fn encoding_distinguishes_values(space in space_strategy(), seed in any::<u64>()) {
        let enc = Encoder::new(&space);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = space.sample(&mut rng);
        let mut b = a.clone();
        // Flip the first parameter deterministically to a different value.
        let spec = space.spec(0);
        let new = match (&spec.kind, a.get(0)) {
            (ParamKind::Bool, Value::Bool(x)) => Some(Value::Bool(!x)),
            (ParamKind::Tristate, Value::Tristate(t)) => Some(Value::Tristate(match t {
                Tristate::No => Tristate::Yes,
                _ => Tristate::No,
            })),
            (ParamKind::Int { min, max, .. }, Value::Int(v)) if min != max =>
                Some(Value::Int(if v == *max { *min } else { *max })),
            (ParamKind::Hex { min, max }, Value::Int(v)) if min != max =>
                Some(Value::Int(if v == *max { *min } else { *max })),
            (ParamKind::Enum { choices }, Value::Choice(c)) if choices.len() > 1 =>
                Some(Value::Choice((c + 1) % choices.len())),
            _ => None,
        };
        if let Some(nv) = new {
            b.set(0, nv);
            prop_assert_ne!(enc.encode(&space, &a), enc.encode(&space, &b));
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        }
    }

    /// The Eq. 2 dissimilarity is always within [0, 1] and evaluates to 0 on
    /// an already-explored point.
    #[test]
    fn dissimilarity_properties(
        xs in prop::collection::vec(prop::collection::vec(-10.0..10.0f64, 4), 1..8),
    ) {
        let candidate = xs[0].clone();
        let ds_self = distance::dissimilarity(&candidate, &xs);
        prop_assert!(ds_self.abs() < 1e-12);
        let probe = vec![11.0, 11.0, 11.0, 11.0];
        let ds = distance::dissimilarity(&probe, &xs);
        prop_assert!((0.0..=1.0).contains(&ds));
    }

    /// Stage fingerprints are invariant under changes confined to other
    /// stages.
    #[test]
    fn stage_fingerprint_isolation(space in space_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        // Build c = a with b's runtime values spliced in.
        let mut c = a.clone();
        for i in space.stage_indices(Stage::Runtime) {
            c.set(i, b.get(i));
        }
        let compile_boot = [Stage::CompileTime, Stage::BootTime];
        prop_assert_eq!(
            a.stage_fingerprint(&space, &compile_boot),
            c.stage_fingerprint(&space, &compile_boot)
        );
    }
}
